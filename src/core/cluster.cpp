#include "core/cluster.h"

#include <cassert>

#include "common/strings.h"

namespace heus::core {

using simos::Credentials;
using simos::root_credentials;

std::string Node::gpu_dev_path(std::uint32_t index) {
  return common::strformat("/dev/nvidia%u", index);
}

Node::Node(NodeId id, std::string hostname, HostId host,
           const simos::UserDb* users, common::SimClock* clock,
           unsigned gpus, std::size_t gpu_mem_bytes,
           vfs::FsPolicy fs_policy, vfs::FileSystem* shared_fs)
    : id_(id),
      hostname_(std::move(hostname)),
      host_(host),
      procs_(clock),
      procfs_(&procs_, simos::ProcMountOptions{}),
      local_fs_("local:" + hostname_, users, clock, fs_policy),
      gpus_(gpus, gpu_mem_bytes) {
  // Stock node-local namespace. All created by root at "boot".
  const Credentials root = root_credentials();
  (void)local_fs_.mkdir(root, "/tmp", 01777);
  (void)local_fs_.chmod(root, "/tmp", 01777);  // bypass root's umask
  (void)local_fs_.mkdir(root, "/dev", 0755);
  (void)local_fs_.mkdir(root, "/dev/shm", 01777);
  (void)local_fs_.chmod(root, "/dev/shm", 01777);
  (void)local_fs_.mkdir(root, "/scratch", 01777);
  (void)local_fs_.chmod(root, "/scratch", 01777);
  for (std::uint32_t g = 0; g < gpus; ++g) {
    (void)local_fs_.mknod_chardev(root, gpu_dev_path(g), 0666,
                                  vfs::DeviceRef{"nvidia", g});
  }
  mounts_.mount("/", &local_fs_);
  mounts_.mount("/home", shared_fs);
  mounts_.mount("/proj", shared_fs);
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), policy_(config_.policy) {
  trace_.set_clock(&clock_);
  network_ = std::make_unique<net::Network>(&clock_);
  network_->set_trace(&trace_);
  shared_fs_ = std::make_unique<vfs::FileSystem>("lustre:shared", &users_,
                                                 &clock_, policy_.fs);
  shared_fs_->set_trace(&trace_);
  const Credentials root = root_credentials();
  (void)shared_fs_->mkdir(root, "/home", 0755);
  (void)shared_fs_->mkdir(root, "/proj", 0755);

  // The hidepid-exempt supplemental group that seepid hands out.
  auto exempt = users_.create_system_group("proc-exempt");
  assert(exempt.ok());
  seepid_group_ = *exempt;
  seepid_ = std::make_unique<simos::SeepidService>(seepid_group_);

  // Nodes. Scheduler NodeIds must equal nodes_ vector indices; both are
  // assigned sequentially in the same order.
  sched::SchedulerConfig sched_cfg;
  sched_cfg.policy = policy_.sharing;
  sched_cfg.private_data = policy_.private_data;
  scheduler_ = std::make_unique<sched::Scheduler>(&clock_, sched_cfg);
  scheduler_->set_trace(&trace_);

  auto make_node = [&](const std::string& hostname, sched::NodeClass cls,
                       unsigned gpus, const std::string& partition) {
    const HostId host = network_->add_host(hostname);
    const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
    nodes_.push_back(std::make_unique<Node>(
        id, hostname, host, &users_, &clock_, gpus, config_.gpu_mem_bytes,
        policy_.fs, shared_fs_.get()));
    nodes_.back()->procfs().set_trace(&trace_);
    nodes_.back()->local_fs().set_trace(&trace_);
    sched::NodeInfo info;
    info.hostname = hostname;
    info.host = host;
    info.node_class = cls;
    info.partition = partition;
    info.cpus = config_.cpus_per_node;
    info.mem_mb = config_.mem_mb_per_node;
    info.gpus = gpus;
    const NodeId sched_id = scheduler_->add_node(info);
    assert(sched_id == id);
    (void)sched_id;
    return id;
  };

  for (unsigned i = 0; i < config_.compute_nodes; ++i) {
    compute_nodes_.push_back(make_node(
        common::strformat("compute-%u", i), sched::NodeClass::compute,
        config_.gpus_per_node, config_.partition));
  }
  for (unsigned i = 0; i < config_.login_nodes; ++i) {
    login_nodes_.push_back(make_node(common::strformat("login-%u", i),
                                     sched::NodeClass::login, 0,
                                     config_.partition));
  }
  for (unsigned i = 0; i < config_.debug_nodes; ++i) {
    debug_nodes_.push_back(make_node(common::strformat("debug-%u", i),
                                     sched::NodeClass::compute, 0,
                                     "debug"));
  }
  // The debug partition stays multi-user regardless of the cluster-wide
  // sharing policy (paper §IV-B).
  scheduler_->set_partition_policy("debug", sched::SharingPolicy::shared);

  rdma_ = std::make_unique<net::RdmaManager>(network_.get());
  rdma_->set_trace(&trace_);

  pam_ = std::make_unique<simos::PamSlurm>([this](Uid uid, NodeId n) {
    return scheduler_->user_has_job_on(uid, n);
  });
  pam_->set_trace(&trace_);
  for (NodeId n : login_nodes_) pam_->add_login_node(n);

  portal_host_ = network_->add_host("portal");
  portal_ = std::make_unique<portal::Gateway>(
      network_.get(), portal_host_, &users_, [this](Uid uid, HostId host) {
        for (const auto& n : nodes_) {
          if (n->host() == host) {
            return scheduler_->user_has_job_on(uid, n->id());
          }
        }
        return false;
      });
  portal_->set_trace(&trace_);

  monitor_ = std::make_unique<monitor::Monitor>(
      scheduler_.get(), &clock_, [this](const simos::Credentials& cred) {
        // Staff = the hidepid-exempt group seepid hands out (§IV-A).
        return cred.in_group(seepid_group_);
      });

  containers_.set_trace(&trace_);

  wire_prolog_epilog();
  apply_policy(policy_);
}

void Cluster::wire_prolog_epilog() {
  scheduler_->set_prolog([this](const sched::JobNodeContext& ctx)
                             -> Result<void> {
    // Fault injection: the prolog script fails before doing any work (the
    // scheduler rolls back and drains the node).
    if (fault_hooks_.prolog_fails && fault_hooks_.prolog_fails(ctx.node)) {
      return Errno::eio;
    }
    Node& nd = node(ctx.node);
    const Credentials root = root_credentials();

    // Bind gres GPUs: driver-level assignment plus, under the hardened
    // policy, /dev permission narrowing to the user's private group.
    for (GpuId g : ctx.gpus) {
      (void)nd.gpus().at(g.value()).assign(ctx.user);
      const std::string dev = Node::gpu_dev_path(g.value());
      if (policy_.gpu_dev_binding) {
        const simos::User* u = users_.find_user(ctx.user);
        (void)nd.local_fs().chown(root, dev, kRootUid);
        (void)nd.local_fs().chgrp(root, dev, u->private_group);
        (void)nd.local_fs().chmod(root, dev, 0660);
      }
    }

    // Materialise the job's tasks as processes so procfs/ident see them.
    auto cred = simos::login(users_, ctx.user);
    if (cred) {
      const sched::Job* job = scheduler_->find_job(ctx.job);
      simos::SpawnOptions opts;
      opts.job = ctx.job;
      opts.cwd = job->spec.working_dir.empty() ? "/" : job->spec.working_dir;
      const std::string cmd =
          job->spec.command.empty()
              ? common::strformat("slurm_task jobid=%llu",
                                  static_cast<unsigned long long>(
                                      ctx.job.value()))
              : job->spec.command;
      nd.procs().spawn(*cred, cmd, opts);
    }
    return ok_result();
  });

  scheduler_->set_epilog([this](const sched::JobNodeContext& ctx)
                             -> Result<void> {
    // Fault injection: the epilog script fails up front — nothing is
    // cleaned, and the scheduler holds the node in maintenance until a
    // later retry of this whole (idempotent) epilog succeeds. Residue
    // never meets the next tenant.
    if (fault_hooks_.epilog_fails && fault_hooks_.epilog_fails(ctx.node)) {
      return Errno::eio;
    }
    Node& nd = node(ctx.node);

    // Reap this job's task processes.
    for (Pid pid : nd.procs().pids_of(ctx.user)) {
      const simos::Process* p = nd.procs().find(pid);
      if (p != nullptr && p->job == ctx.job) (void)nd.procs().exit(pid);
    }

    // GPU teardown: optional scrub (charged to the simulated clock, since
    // the epilog really does take this long), release, and /dev reset. A
    // failed scrub leaves the device assigned and dirty — the epilog as a
    // whole fails, keeping the node in maintenance with the /dev node
    // still narrowed to the departing user's group.
    bool gpus_ok = true;
    for (GpuId g : ctx.gpus) {
      gpu::GpuDevice& dev = nd.gpus().at(g.value());
      if (fault_hooks_.scrub_fails &&
          fault_hooks_.scrub_fails(ctx.node, g)) {
        dev.note_scrub_failure();
        gpus_ok = false;
        continue;
      }
      if (dev.dirty()) {
        // The separation verdict on the residue itself: a scrub destroys
        // the channel (deny), a skipped scrub hands it to the next tenant
        // (allow).
        trace_.record(
            obs::DecisionPoint::gpu_scrub,
            policy_.gpu_epilog_scrub ? obs::Outcome::deny
                                     : obs::Outcome::allow,
            ctx.user, Gid{}, dev.residue_owner().value_or(Uid{}),
            obs::ChannelKind::gpu_residue,
            policy_.gpu_epilog_scrub ? obs::knob::gpu_epilog_scrub : nullptr,
            [&] { return Node::gpu_dev_path(g.value()) + " residue"; });
      }
      if (policy_.gpu_epilog_scrub) {
        clock_.advance(dev.scrub());
      }
      (void)dev.release();
      set_gpu_dev_mode_unassigned(nd, g.value());
    }
    if (!gpus_ok) return Errno::eio;

    // If this was the user's last job on the node, clean up any lingering
    // processes (ssh sessions adopted by pam_slurm included).
    bool user_has_other_job = false;
    for (JobId other : scheduler_->jobs_on(ctx.node)) {
      if (other == ctx.job) continue;
      const sched::Job* j = scheduler_->find_job(other);
      if (j != nullptr && j->user == ctx.user) {
        user_has_other_job = true;
        break;
      }
    }
    if (!user_has_other_job) {
      nd.procs().kill_all_of(ctx.user);
      // Their sockets die with their processes (the kernel would close
      // them as the epilog reaps).
      (void)network_->close_sockets_of(nd.host(), ctx.user);
    }
    return ok_result();
  });

  scheduler_->set_node_crash_hook([this](NodeId n) {
    Node& nd = node(n);
    // Power loss: every process on the node is gone and volatile device
    // memory is cleared; /dev entries return to the unassigned posture
    // when the node reboots. Every socket touching the host resets.
    (void)network_->reset_host(nd.host());
    for (Pid pid : nd.procs().all_pids()) (void)nd.procs().exit(pid);
    for (std::uint32_t g = 0; g < nd.gpus().size(); ++g) {
      gpu::GpuDevice& dev = nd.gpus().at(g);
      if (dev.assigned_to()) (void)dev.release();
      (void)dev.scrub();
      set_gpu_dev_mode_unassigned(nd, g);
    }
  });
}

void Cluster::set_gpu_dev_mode_unassigned(Node& nd, std::uint32_t index) {
  const Credentials root = root_credentials();
  const std::string dev = Node::gpu_dev_path(index);
  if (policy_.gpu_dev_binding) {
    // Unassigned GPUs are not usable (or visible as devices) at all.
    (void)nd.local_fs().chown(root, dev, kRootUid);
    (void)nd.local_fs().chgrp(root, dev, kRootGid);
    (void)nd.local_fs().chmod(root, dev, 0600);
  } else {
    // Stock driver install: world read/write device nodes.
    (void)nd.local_fs().chmod(root, dev, 0666);
  }
}

void Cluster::apply_policy(const SeparationPolicy& policy) {
  policy_ = policy;

  simos::ProcMountOptions proc_opts;
  proc_opts.hidepid = policy.hidepid;
  if (policy.hidepid_gid_exemption) proc_opts.exempt_gid = seepid_group_;

  for (auto& nd : nodes_) {
    nd->procfs().remount(proc_opts);
    nd->local_fs().set_policy(policy.fs);
    for (std::uint32_t g = 0; g < nd->gpus().size(); ++g) {
      if (!nd->gpus().at(g).assigned_to()) {
        set_gpu_dev_mode_unassigned(*nd, g);
      }
    }
  }
  shared_fs_->set_policy(policy.fs);

  scheduler_->set_policy(policy.sharing);
  scheduler_->set_partition_policy("debug", sched::SharingPolicy::shared);
  scheduler_->set_private_data(policy.private_data);
  pam_->set_enabled(policy.pam_slurm);

  ubf_ = std::make_unique<net::Ubf>(
      &users_, network_.get(),
      net::UbfOptions{1024, policy.ubf_group_peers});
  ubf_->set_clock(&clock_);
  ubf_->set_trace(&trace_);
  ubf_->set_degraded_mode(ubf_degraded_, ubf_backoff_);
  if (policy.ubf) {
    ubf_->attach();
  } else {
    network_->clear_hook();
  }
}

void Cluster::set_ubf_degraded(net::UbfDegradedMode mode,
                               common::BackoffPolicy backoff) {
  ubf_degraded_ = mode;
  ubf_backoff_ = backoff;
  ubf_->set_degraded_mode(mode, backoff);
}

Result<Uid> Cluster::add_user(const std::string& name) {
  auto uid = users_.create_user(name);
  if (!uid) return uid;
  const simos::User* user = users_.find_user(*uid);
  const Credentials root = root_credentials();
  if (auto r = shared_fs_->mkdir(root, user->home, 0700); !r) {
    return r.error();
  }
  if (policy_.root_owned_homes) {
    // Paper §IV-C: homes owned by root, group-owned by the UPG, 0770 —
    // the user works through the group bits and cannot chmod the top
    // level of their own home open.
    (void)shared_fs_->chgrp(root, user->home, user->private_group);
    (void)shared_fs_->chmod(root, user->home, 0770);
  } else {
    (void)shared_fs_->chown(root, user->home, *uid);
    (void)shared_fs_->chgrp(root, user->home, user->private_group);
    (void)shared_fs_->chmod(root, user->home, 0755);
  }
  return uid;
}

Result<Gid> Cluster::create_project(const std::string& name, Uid steward) {
  auto gid = users_.create_project_group(name, steward);
  if (!gid) return gid;
  const Credentials root = root_credentials();
  const std::string dir = "/proj/" + name;
  if (auto r = shared_fs_->mkdir(root, dir, 0770); !r) return r.error();
  (void)shared_fs_->chgrp(root, dir, *gid);
  (void)shared_fs_->chmod(root, dir, 02770);  // setgid keeps files in-group
  return gid;
}

Result<void> Cluster::add_to_project(Uid steward, Gid project, Uid member) {
  return users_.add_member(steward, project, member);
}

Result<Session> Cluster::login(Uid uid) {
  if (login_nodes_.empty()) return Errno::enodev;
  auto cred = simos::login(users_, uid);
  if (!cred) return cred.error();
  const NodeId n = login_nodes_.front();
  const Pid shell = node(n).procs().spawn(*cred, "-bash");
  return Session{*cred, n, shell};
}

Result<Session> Cluster::ssh(const Session& from, NodeId target) {
  if (target.value() >= nodes_.size()) return Errno::ehostunreach;
  if (auto r = pam_->authorize_ssh(from.cred, target); !r) return r.error();
  const Pid shell = node(target).procs().spawn(from.cred, "sshd: -bash");
  return Session{from.cred, target, shell};
}

void Cluster::logout(Session& session) {
  (void)node(session.node).procs().exit(session.shell);
  session.shell = Pid{};
}

Result<JobId> Cluster::submit(const Session& session, sched::JobSpec spec) {
  return scheduler_->submit(session.cred, std::move(spec));
}

vfs::FileSystem* Cluster::fs_at(NodeId n, const std::string& path) {
  if (n.value() >= nodes_.size()) return nullptr;
  return node(n).mounts().lookup(path);
}

}  // namespace heus::core
