// Sharded multi-threaded cluster engine (ISSUE 9 tentpole, ROADMAP 1).
//
// The engine runs a cluster workload as a sequence of BSP ticks over G
// node groups:
//
//   parallel intra-group phase   one WorkerPool task per group, each
//                                running under a net::ShardScope so any
//                                touch of another group's state asserts;
//   deterministic barrier        WorkerPool::wait_idle();
//   ordered cross-group phase    operations the parallel phase posted via
//                                post_cross() are drained on the
//                                coordinator thread in (group, seq)
//                                order — seq being the post order within
//                                the group, which is serial;
//   clock advance                per-bucket deferred latency charges are
//                                drained in bucket order and applied once.
//
// Determinism argument: the clock is frozen during the parallel phase
// (defer-charge mode), each group's operation stream is serial and
// touches only that group's bucket + hosts (ShardScope-asserted), each
// group's Rng is seeded from (seed, group), and everything with
// cross-group reach runs on the coordinator in a fixed order. Execution
// is therefore a function of (workload, G) — independent of the worker
// count and of thread interleaving. The shard-invariance tests pin this
// by digesting runs at 1/2/4/8 workers.
//
// Scheduler modes. Golden schedule replay (mode A) steps one global
// sched::Scheduler from set_serial_tick(), reproducing the pre-engine
// digests bit-for-bit at any worker count. Scaling runs (mode B) give
// each group its own Scheduler instance and step it from the group tick:
// Scheduler::step() reads but never advances the clock, and every
// Scheduler owns all of its state (including its lifecycle Driver), so
// per-group instances share nothing.
//
// NOTE: constructing the engine calls Network::enable_sharding(), which
// re-buckets UBF state on the next Ubf::attach() — when a UBF is already
// attached (Cluster), re-apply the policy after constructing the engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/network.h"
#include "obs/decision.h"

namespace heus::core {

/// Host -> node-group assignment handed to Network::enable_sharding().
struct ShardMap {
  std::uint32_t groups = 1;
  std::vector<std::uint32_t> host_group;  ///< by HostId value

  /// Contiguous blocks: hosts [k*H/G, (k+1)*H/G) form group k. Matches
  /// rack/partition-aligned clusters, where intra-group traffic dominates.
  [[nodiscard]] static ShardMap blocks(std::size_t hosts,
                                       std::uint32_t groups);
  /// Striped: host h joins group h % G.
  [[nodiscard]] static ShardMap round_robin(std::size_t hosts,
                                            std::uint32_t groups);
};

struct EngineConfig {
  unsigned workers = 1;      ///< WorkerPool size (threads), not groups
  std::uint64_t seed = 42;   ///< per-group Rngs are seeded (seed, group)
};

/// Tick accounting. Work is simulated nanoseconds (the network's latency
/// charges), so the model is machine-independent: `modeled_speedup()` is
/// what the parallel phase buys on an idealized `workers`-thread machine,
/// computed from the same per-bucket charges a serial run would make.
struct EngineStats {
  std::uint64_t ticks = 0;
  std::uint64_t intra_tasks = 0;  ///< group tasks submitted to the pool
  std::uint64_t cross_ops = 0;    ///< post_cross() operations drained
  /// Σ all charged work — what a 1-worker run spends.
  std::int64_t total_work_ns = 0;
  /// Σ per-tick [greedy least-loaded makespan of the groups' intra work
  /// over the pool's workers] + all serial-phase work.
  std::int64_t modeled_span_ns = 0;

  [[nodiscard]] double modeled_speedup() const {
    return modeled_span_ns > 0
               ? static_cast<double>(total_work_ns) /
                     static_cast<double>(modeled_span_ns)
               : 1.0;
  }
};

class ShardedEngine {
 public:
  /// Intra-group tick body: runs on a worker under ShardScope(group),
  /// with that group's persistent seeded Rng.
  using GroupFn = std::function<void(std::uint32_t group, common::Rng& rng)>;
  using SerialFn = std::function<void()>;

  /// Partitions `network` per `map` (the flow table must be empty) and
  /// spawns the worker pool. The network must outlive the engine.
  ShardedEngine(net::Network* network, common::SimClock* clock,
                const ShardMap& map, EngineConfig cfg = {});

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// The per-group parallel work executed each tick.
  void set_group_tick(GroupFn fn) { group_fn_ = std::move(fn); }
  /// Serial work executed each tick after the cross-group drain (mode A
  /// global scheduler step, audits, host teardown, …). Runs unscoped.
  void set_serial_tick(SerialFn fn) { serial_fn_ = std::move(fn); }

  /// Queue a cross-group operation from group `group`'s tick body. The
  /// coordinator runs it after the barrier, in (group, post-order) order.
  /// Lock-free by construction: each group appends only to its own outbox.
  void post_cross(std::uint32_t group, std::function<void()> op) {
    outbox_.at(group).push_back(std::move(op));
  }

  /// Run one BSP tick (see file header for the phase structure).
  void tick();

  [[nodiscard]] std::uint32_t groups() const { return groups_; }
  [[nodiscard]] unsigned workers() const { return pool_.worker_count(); }
  /// Group `g`'s persistent Rng — for serial-phase code that must draw
  /// from the same stream the group tick uses.
  [[nodiscard]] common::Rng& group_rng(std::uint32_t g) {
    return rngs_.at(g);
  }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const common::WorkerPool& pool() const { return pool_; }

 private:
  net::Network* network_;
  common::SimClock* clock_;
  std::uint32_t groups_;
  common::WorkerPool pool_;
  GroupFn group_fn_;
  SerialFn serial_fn_;
  std::vector<common::Rng> rngs_;
  /// Per-group cross-op queues; slot g is written only by group g's task.
  std::vector<std::vector<std::function<void()>>> outbox_;
  EngineStats stats_;
};

// ---- behaviour digests ----------------------------------------------------
//
// FNV-1a digests of engine-visible behaviour, for the shard-invariance
// tests: equal digests across worker counts prove the parallelism is
// behaviour-preserving; equal digests across group counts prove the
// workload itself is partition-independent (only true for workloads with
// no cross-group coupling).

/// Folds the network's merged stats, flow census and cross-user flow ids.
[[nodiscard]] std::uint64_t network_digest(const net::Network& nw);

/// Order-independent multiset digest of the trace's buffered decisions
/// (seq excluded — ring arrival order is scheduling-dependent; everything
/// else, including the sim-time stamp, is deterministic) combined with
/// the exact per-point counters.
[[nodiscard]] std::uint64_t decision_digest(const obs::DecisionTrace& trace);

}  // namespace heus::core
