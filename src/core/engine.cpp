#include "core/engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace heus::core {

namespace {

class Fnv {
 public:
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void fold_bytes(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= static_cast<unsigned char>(s[i]);
      h_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

ShardMap ShardMap::blocks(std::size_t hosts, std::uint32_t groups) {
  ShardMap m;
  m.groups = groups == 0 ? 1 : groups;
  m.host_group.resize(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    m.host_group[h] = static_cast<std::uint32_t>(
        std::min<std::size_t>(h * m.groups / std::max<std::size_t>(hosts, 1),
                              m.groups - 1));
  }
  return m;
}

ShardMap ShardMap::round_robin(std::size_t hosts, std::uint32_t groups) {
  ShardMap m;
  m.groups = groups == 0 ? 1 : groups;
  m.host_group.resize(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    m.host_group[h] = static_cast<std::uint32_t>(h % m.groups);
  }
  return m;
}

ShardedEngine::ShardedEngine(net::Network* network, common::SimClock* clock,
                             const ShardMap& map, EngineConfig cfg)
    : network_(network),
      clock_(clock),
      groups_(map.groups == 0 ? 1 : map.groups),
      pool_(cfg.workers),
      outbox_(groups_) {
  network_->enable_sharding(groups_, map.host_group);
  rngs_.reserve(groups_);
  for (std::uint32_t g = 0; g < groups_; ++g) {
    // Group streams must be decorrelated and a function of (seed, group)
    // only — never of worker identity. splitmix-style mix of the pair.
    rngs_.emplace_back(cfg.seed ^ (0x9e3779b97f4a7c15ULL * (g + 1)));
  }
}

void ShardedEngine::tick() {
  // The parallel phase runs with the clock frozen (deferred charges). A
  // fault model advances the clock from inside ident retries and fault
  // schedules, which would make time depend on interleaving — faulted
  // workloads belong to the serial single-worker path, not the engine.
  assert(network_->fault_model() == nullptr &&
         "sharded ticks require a fault-free network");
  network_->set_defer_charges(true);

  if (group_fn_) {
    for (std::uint32_t g = 0; g < groups_; ++g) {
      pool_.submit([this, g] {
        net::ShardScope scope(g);
        group_fn_(g, rngs_[g]);
      });
    }
    stats_.intra_tasks += groups_;
  }
  pool_.wait_idle();
  // A task that threw would have skipped part of its group's stream;
  // results after that point would be silently wrong, so fail loudly.
  assert(pool_.failed_tasks() == 0 && "a group tick task threw");

  // Work model: what this tick's intra-phase work costs on an idealized
  // `workers`-thread machine — greedy least-loaded assignment of the
  // per-group charges, in group order (deterministic).
  std::vector<std::int64_t> load(pool_.worker_count(), 0);
  std::int64_t intra_sum = 0;
  for (std::uint32_t g = 0; g < groups_; ++g) {
    const std::int64_t w = network_->charged_ns(g);
    intra_sum += w;
    *std::min_element(load.begin(), load.end()) += w;
  }
  const std::int64_t makespan = *std::max_element(load.begin(), load.end());

  // Ordered cross-group phase: (group, post-order) on this thread.
  for (auto& box : outbox_) {
    for (auto& op : box) {
      op();
      ++stats_.cross_ops;
    }
    box.clear();
  }
  if (serial_fn_) serial_fn_();

  // Everything charged this tick, parallel and serial phases alike, is
  // applied to the clock once, here — the only clock advance per tick.
  const std::int64_t total = network_->drain_charges();
  network_->set_defer_charges(false);
  if (total > 0) clock_->advance(total);

  ++stats_.ticks;
  stats_.total_work_ns += total;
  stats_.modeled_span_ns += makespan + (total - intra_sum);
}

std::uint64_t network_digest(const net::Network& nw) {
  Fnv d;
  const net::NetworkStats s = nw.stats();
  d.fold(s.connections_attempted);
  d.fold(s.connections_established);
  d.fold(s.connections_refused);
  d.fold(s.connections_dropped);
  d.fold(s.hook_invocations);
  d.fold(s.conntrack_hits);
  d.fold(s.packets_delivered);
  d.fold(s.ident_queries);
  d.fold(s.ident_timeouts);
  d.fold(s.partition_refusals);
  d.fold(s.packets_dropped);
  d.fold(s.flows_reset_identity_changed);
  d.fold(s.flows_expired);
  d.fold(s.gc_runs);
  d.fold(s.gc_entries_touched);
  d.fold(s.ephemeral_exhausted);
  d.fold(nw.flow_count());
  for (const FlowId f : nw.cross_user_flows()) d.fold(f.value());
  return d.value();
}

std::uint64_t decision_digest(const obs::DecisionTrace& trace) {
  // Per-record hashes combined by addition: a multiset digest, immune to
  // the ring's (interleaving-dependent) arrival order. seq is excluded
  // for the same reason; the sim-time stamp is included because the
  // engine advances the clock only at barriers, where it is exact.
  std::uint64_t multiset = 0;
  for (const obs::Decision& r : trace.snapshot()) {
    Fnv one;
    one.fold(static_cast<std::uint64_t>(r.time.ns));
    one.fold(static_cast<std::uint64_t>(r.point));
    one.fold(static_cast<std::uint64_t>(r.outcome));
    one.fold(r.subject.value());
    one.fold(r.subject_gid.value());
    one.fold(r.object_owner.value());
    one.fold(r.channel ? 1 + static_cast<std::uint64_t>(*r.channel) : 0);
    if (r.knob != nullptr) one.fold_bytes(r.knob, std::strlen(r.knob));
    one.fold(r.from_cache ? 1 : 0);
    one.fold_bytes(r.object.data(), r.object.size());
    multiset += one.value();
  }
  Fnv d;
  d.fold(multiset);
  d.fold(trace.total());
  for (const obs::DecisionPoint p : obs::kAllDecisionPoints) {
    d.fold(trace.counters(p).allowed);
    d.fold(trace.counters(p).denied);
  }
  return d.value();
}

}  // namespace heus::core
