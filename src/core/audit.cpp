#include "core/audit.h"

#include <algorithm>

#include "common/strings.h"

namespace heus::core {

using common::strformat;
using simos::Credentials;

std::size_t LeakageAuditor::open_count(
    const std::vector<ChannelReport>& reports) {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [](const ChannelReport& r) { return r.open; }));
}

std::size_t LeakageAuditor::unexpected_open_count(
    const std::vector<ChannelReport>& reports) {
  return static_cast<std::size_t>(std::count_if(
      reports.begin(), reports.end(), [](const ChannelReport& r) {
        return r.open && !is_documented_residual(r.kind);
      }));
}

std::string LeakageAuditor::to_markdown(
    const std::vector<ChannelReport>& reports) {
  std::string out =
      "| channel | status | documented residual | detail |\n"
      "|---|---|---|---|\n";
  for (const auto& r : reports) {
    out += strformat("| %s | %s | %s | %s |\n", to_string(r.kind),
                     r.open ? "**OPEN**" : "closed",
                     is_documented_residual(r.kind) ? "yes" : "no",
                     r.detail.c_str());
  }
  out += strformat(
      "\nopen: %zu / %zu (unexpected: %zu)\n", open_count(reports),
      reports.size(), unexpected_open_count(reports));
  return out;
}

std::vector<ChannelReport> LeakageAuditor::audit_pair(Uid victim,
                                                      Uid observer) {
  std::vector<ChannelReport> out;
  out.push_back(probe_procfs_list(victim, observer));
  out.push_back(probe_procfs_cmdline(victim, observer));
  out.push_back(probe_scheduler_queue(victim, observer));
  out.push_back(probe_scheduler_accounting(victim, observer));
  out.push_back(probe_scheduler_usage(victim, observer));
  out.push_back(probe_ssh_foreign_node(victim, observer));
  out.push_back(probe_fs_home(victim, observer));
  out.push_back(probe_fs_tmp(victim, observer, "/tmp",
                             ChannelKind::fs_tmp_content));
  out.push_back(probe_fs_tmp_names(victim, observer));
  out.push_back(probe_fs_tmp(victim, observer, "/dev/shm",
                             ChannelKind::fs_devshm_content));
  out.push_back(probe_fs_acl_grant(victim, observer));
  out.push_back(probe_tcp(victim, observer));
  out.push_back(probe_udp(victim, observer));
  out.push_back(probe_abstract_uds(victim, observer));
  out.push_back(probe_rdma_tcp(victim, observer));
  out.push_back(probe_rdma_cm(victim, observer));
  out.push_back(probe_portal(victim, observer));
  out.push_back(probe_gpu_residue(victim, observer));
  return out;
}

// ---------------------------------------------------------------------------
// §IV-A processes
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_procfs_list(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::procfs_process_list, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  Node& nd = cluster_->node(vs->node);
  for (Pid pid : nd.procfs().list(os->cred)) {
    auto st = nd.procfs().stat(os->cred, pid);
    if (st && st->uid == victim) {
      rep.open = true;
      rep.detail = strformat("victim pid %u listed", pid.value());
      break;
    }
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_procfs_cmdline(Uid victim,
                                                   Uid observer) {
  ChannelReport rep{ChannelKind::procfs_cmdline, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  Node& nd = cluster_->node(vs->node);
  const Pid pid = nd.procs().spawn(
      vs->cred, "python train.py --api-key=AUDIT-PROC-SECRET");
  auto details = nd.procfs().read_details(os->cred, pid);
  if (details && details->cmdline.find("AUDIT-PROC-SECRET") !=
                     std::string::npos) {
    rep.open = true;
    rep.detail = "command line (with embedded secret) readable";
  }
  (void)nd.procs().exit(pid);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

// ---------------------------------------------------------------------------
// §IV-B scheduler
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_scheduler_queue(Uid victim,
                                                    Uid observer) {
  ChannelReport rep{ChannelKind::scheduler_queue, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  sched::JobSpec spec;
  spec.name = "audit-sensitive-jobname";
  spec.command = "./proprietary_sim --input=/proj/secret";
  spec.duration_ns = 3600 * common::kSecond;
  auto job = cluster_->submit(*vs, spec);
  if (job) {
    for (const auto& view : cluster_->scheduler().list_jobs(os->cred)) {
      if (view.id == *job) {
        rep.open = true;
        rep.detail = "job name/command visible in squeue";
        break;
      }
    }
    (void)cluster_->scheduler().cancel(vs->cred, *job);
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_scheduler_accounting(Uid victim,
                                                         Uid observer) {
  ChannelReport rep{ChannelKind::scheduler_accounting, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  sched::JobSpec spec;
  spec.name = "audit-acct-job";
  spec.duration_ns = common::kSecond;
  auto job = cluster_->submit(*vs, spec);
  if (job) {
    cluster_->run_jobs();
    for (const auto& rec : cluster_->scheduler().accounting(os->cred)) {
      if (rec.id == *job) {
        rep.open = true;
        rep.detail = "victim's sacct record readable";
        break;
      }
    }
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_scheduler_usage(Uid victim,
                                                    Uid observer) {
  ChannelReport rep{ChannelKind::scheduler_usage, false, ""};
  auto os_cred = simos::login(cluster_->users(), observer);
  if (!os_cred) {
    rep.detail = "login failed";
    return rep;
  }
  auto usage = cluster_->scheduler().usage_by_user(*os_cred);
  if (usage.contains(victim)) {
    rep.open = true;
    rep.detail = "victim's aggregate usage visible in sreport";
  }
  return rep;
}

ChannelReport LeakageAuditor::probe_ssh_foreign_node(Uid victim,
                                                     Uid observer) {
  ChannelReport rep{ChannelKind::ssh_foreign_node, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  sched::JobSpec spec;
  spec.name = "audit-ssh-probe";
  spec.duration_ns = 3600 * common::kSecond;
  auto job = cluster_->submit(*vs, spec);
  if (job) {
    cluster_->scheduler().step();  // dispatch
    const sched::Job* j = cluster_->scheduler().find_job(*job);
    if (j != nullptr && j->state == sched::JobState::running &&
        !j->allocations.empty()) {
      const NodeId target = j->allocations.front().node;
      auto shell = cluster_->ssh(*os, target);
      if (shell) {
        rep.open = true;
        rep.detail = strformat("ssh into %s admitted",
                               cluster_->node(target).hostname().c_str());
        cluster_->logout(*shell);
      }
    }
    (void)cluster_->scheduler().cancel(vs->cred, *job);
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

// ---------------------------------------------------------------------------
// §IV-C filesystems
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_fs_home(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::fs_home_read, false, ""};
  auto v_cred = simos::login(cluster_->users(), victim);
  auto o_cred = simos::login(cluster_->users(), observer);
  if (!v_cred || !o_cred) {
    rep.detail = "login failed";
    return rep;
  }
  const simos::User* vu = cluster_->users().find_user(victim);
  const std::string file = vu->home + "/audit-secret.dat";
  vfs::FileSystem& fs = cluster_->shared_fs();
  (void)fs.write_file(*v_cred, file, "HOME-SECRET");
  // The accidental-misconfiguration scenario: the victim tries to open
  // everything up (mis-typed chmod). Under smask + root-owned homes both
  // steps are neutralised.
  (void)fs.chmod(*v_cred, vu->home, 0777);
  (void)fs.chmod(*v_cred, file, 0666);
  auto read = fs.read_file(*o_cred, file);
  if (read && read->find("HOME-SECRET") != std::string::npos) {
    rep.open = true;
    rep.detail = "world-chmod'ed home file readable by observer";
  }
  (void)fs.unlink(*v_cred, file);
  return rep;
}

ChannelReport LeakageAuditor::probe_fs_tmp(Uid victim, Uid observer,
                                           const char* base,
                                           ChannelKind kind) {
  ChannelReport rep{kind, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  vfs::FileSystem& fs = cluster_->node(vs->node).local_fs();
  const std::string file =
      strformat("%s/audit-%u.dat", base, victim.value());
  (void)fs.write_file(vs->cred, file, "TMP-SECRET");
  (void)fs.chmod(vs->cred, file, 0666);  // accidental world-readable
  auto read = fs.read_file(os->cred, file);
  if (read && read->find("TMP-SECRET") != std::string::npos) {
    rep.open = true;
    rep.detail = strformat("%s file content readable cross-user", base);
  }
  (void)fs.unlink(vs->cred, file);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_fs_tmp_names(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::fs_tmp_names, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  vfs::FileSystem& fs = cluster_->node(vs->node).local_fs();
  const std::string name =
      strformat("audit-projectname-leak-%u", victim.value());
  (void)fs.write_file(vs->cred, std::string("/tmp/") + name, "x");
  auto listing = fs.readdir(os->cred, "/tmp");
  if (listing) {
    for (const auto& e : *listing) {
      if (e.name == name) {
        rep.open = true;
        rep.detail = "file *name* visible in world-writable /tmp "
                     "(documented residual channel)";
        break;
      }
    }
  }
  (void)fs.unlink(vs->cred, std::string("/tmp/") + name);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_fs_acl_grant(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::fs_acl_user_grant, false, ""};
  auto v_cred = simos::login(cluster_->users(), victim);
  auto o_cred = simos::login(cluster_->users(), observer);
  if (!v_cred || !o_cred) {
    rep.detail = "login failed";
    return rep;
  }
  const simos::User* vu = cluster_->users().find_user(victim);
  vfs::FileSystem& fs = cluster_->shared_fs();
  const std::string file = vu->home + "/audit-acl.dat";
  (void)fs.write_file(*v_cred, file, "ACL-SECRET");
  // Direct user-to-user grant, bypassing any approved project group.
  auto grant = fs.acl_set(
      *v_cred, file,
      vfs::AclEntry{vfs::AclTag::named_user, observer, Gid{}, 4});
  // The observer additionally needs traversal into the home directory; a
  // cooperative victim would try to open that too.
  (void)fs.acl_set(
      *v_cred, vu->home,
      vfs::AclEntry{vfs::AclTag::named_user, observer, Gid{}, 5});
  if (grant) {
    auto read = fs.read_file(*o_cred, file);
    if (read && read->find("ACL-SECRET") != std::string::npos) {
      rep.open = true;
      rep.detail = "setfacl u:<observer>:r succeeded and file read";
    }
  } else {
    rep.detail = strformat("setfacl rejected (%s)",
                           std::string(errno_name(grant.error())).c_str());
  }
  (void)fs.unlink(*v_cred, file);
  (void)fs.acl_remove(*v_cred, vu->home, vfs::AclTag::named_user, observer,
                      Gid{});
  return rep;
}

// ---------------------------------------------------------------------------
// §IV-D network
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_tcp(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::tcp_cross_user, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  net::Network& nw = cluster_->network();
  const HostId vhost = cluster_->node(vs->node).host();
  const std::uint16_t port = 23456;
  (void)nw.listen(vhost, vs->cred, vs->shell, net::Proto::tcp, port);
  auto flow = nw.connect(cluster_->node(os->node).host(), os->cred,
                         os->shell, vhost, net::Proto::tcp, port);
  if (flow) {
    rep.open = true;
    rep.detail = "TCP connection to foreign service established";
    (void)nw.close(*flow);
  } else {
    rep.detail = "connection dropped";
  }
  (void)nw.close_listener(vhost, net::Proto::tcp, port);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_udp(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::udp_cross_user, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  net::Network& nw = cluster_->network();
  const HostId vhost = cluster_->node(vs->node).host();
  const std::uint16_t port = 23457;
  (void)nw.listen(vhost, vs->cred, vs->shell, net::Proto::udp, port);
  auto flow = nw.connect(cluster_->node(os->node).host(), os->cred,
                         os->shell, vhost, net::Proto::udp, port);
  if (flow) {
    rep.open = true;
    rep.detail = "UDP flow to foreign service established";
    (void)nw.close(*flow);
  } else {
    rep.detail = "flow dropped";
  }
  (void)nw.close_listener(vhost, net::Proto::udp, port);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_abstract_uds(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::abstract_uds, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  net::Network& nw = cluster_->network();
  const HostId host = cluster_->node(vs->node).host();
  const std::string name = strformat("@audit-%u", victim.value());
  (void)nw.unix_listen_abstract(host, vs->cred, name);
  auto peer = nw.unix_connect_abstract(host, os->cred, name);
  if (peer && *peer == victim) {
    rep.open = true;
    rep.detail = "abstract unix socket rendezvous succeeded "
                 "(documented residual channel)";
  }
  (void)nw.unix_close_abstract(host, name);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_rdma_tcp(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::rdma_tcp_setup, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  net::Network& nw = cluster_->network();
  const HostId vhost = cluster_->node(vs->node).host();
  const std::uint16_t port = 24000;
  (void)nw.listen(vhost, vs->cred, vs->shell, net::Proto::tcp, port);
  auto qp = cluster_->rdma().setup_via_tcp(
      cluster_->node(os->node).host(), os->cred, os->shell, vhost, port);
  if (qp) {
    rep.open = true;
    rep.detail = "QP established via TCP control channel";
    (void)cluster_->rdma().destroy(*qp);
  } else {
    rep.detail = "QP setup blocked at the TCP control channel";
  }
  (void)nw.close_listener(vhost, net::Proto::tcp, port);
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

ChannelReport LeakageAuditor::probe_rdma_cm(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::rdma_native_cm, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  auto qp = cluster_->rdma().setup_via_cm(
      cluster_->node(os->node).host(), os->cred,
      cluster_->node(vs->node).host(), victim);
  if (qp) {
    rep.open = true;
    rep.detail = "QP established via native IB CM — nothing inspected it "
                 "(documented residual channel)";
    (void)cluster_->rdma().destroy(*qp);
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

// ---------------------------------------------------------------------------
// §IV-E portal
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_portal(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::portal_foreign_app, false, ""};
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }
  sched::JobSpec spec;
  spec.name = "audit-jupyter";
  spec.interactive = true;
  spec.duration_ns = 3600 * common::kSecond;
  auto job = cluster_->submit(*vs, spec);
  if (job) {
    cluster_->scheduler().step();
    const sched::Job* j = cluster_->scheduler().find_job(*job);
    if (j != nullptr && j->state == sched::JobState::running) {
      const NodeId jn = j->allocations.front().node;
      auto app = cluster_->portal().register_app(
          vs->cred, Pid{}, *job, cluster_->node(jn).host(), 8888,
          "jupyter",
          [](const std::string&) { return std::string("NOTEBOOK-TOKEN"); });
      if (app) {
        auto token = cluster_->portal().login(os->cred);
        if (token) {
          auto resp =
              cluster_->portal().request(*token, *app, "GET / HTTP/1.1");
          if (resp && resp->find("NOTEBOOK-TOKEN") != std::string::npos) {
            rep.open = true;
            rep.detail = "foreign notebook served through the portal";
          } else {
            rep.detail = "portal forwarded hop denied";
          }
          (void)cluster_->portal().logout(*token);
        }
        (void)cluster_->portal().unregister_app(vs->cred, *app);
      }
    }
    (void)cluster_->scheduler().cancel(vs->cred, *job);
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

// ---------------------------------------------------------------------------
// §IV-F accelerators
// ---------------------------------------------------------------------------

ChannelReport LeakageAuditor::probe_gpu_residue(Uid victim, Uid observer) {
  ChannelReport rep{ChannelKind::gpu_residue, false, ""};
  if (cluster_->config().gpus_per_node == 0 ||
      cluster_->compute_nodes().empty()) {
    rep.detail = "skipped: cluster has no GPUs";
    return rep;
  }
  auto vs = cluster_->login(victim);
  auto os = cluster_->login(observer);
  if (!vs || !os) {
    rep.detail = "login failed";
    return rep;
  }

  // Victim job takes every GPU in the cluster, writes a secret into the
  // first one, and exits; the epilog scrubs (or not) per policy.
  const unsigned total_gpus =
      cluster_->config().gpus_per_node *
      static_cast<unsigned>(cluster_->compute_nodes().size());
  sched::JobSpec vspec;
  vspec.name = "audit-gpu-writer";
  vspec.num_tasks = total_gpus;
  vspec.gpus_per_task = 1;
  vspec.mem_mb_per_task = 512;
  vspec.duration_ns = 10 * common::kSecond;
  auto vjob = cluster_->submit(*vs, vspec);
  if (vjob) {
    cluster_->scheduler().step();
    const sched::Job* j = cluster_->scheduler().find_job(*vjob);
    if (j != nullptr && j->state == sched::JobState::running) {
      const NodeId jn = j->allocations.front().node;
      Node& nd = cluster_->node(jn);
      const GpuId g = j->allocations.front().gpus.front();
      auto dev = nd.local_fs().open_device(
          vs->cred, Node::gpu_dev_path(g.value()), vfs::Access::write);
      if (dev) {
        (void)nd.gpus().at(g.value()).write(victim, 0, "GPU-RESIDUE-SECRET");
      }
      // Let the job run out; epilog fires.
      cluster_->run_jobs();

      // Observer takes a GPU job; first-fit hands back the same device.
      sched::JobSpec ospec;
      ospec.name = "audit-gpu-reader";
      ospec.gpus_per_task = 1;
      ospec.mem_mb_per_task = 512;
      ospec.duration_ns = 10 * common::kSecond;
      auto ojob = cluster_->submit(*os, ospec);
      if (ojob) {
        cluster_->scheduler().step();
        const sched::Job* oj = cluster_->scheduler().find_job(*ojob);
        if (oj != nullptr && oj->state == sched::JobState::running) {
          const NodeId on = oj->allocations.front().node;
          Node& ond = cluster_->node(on);
          const GpuId og = oj->allocations.front().gpus.front();
          auto odev = ond.local_fs().open_device(
              os->cred, Node::gpu_dev_path(og.value()), vfs::Access::read);
          if (odev) {
            auto mem = ond.gpus().at(og.value()).read(observer, 0, 64);
            if (mem &&
                mem->find("GPU-RESIDUE-SECRET") != std::string::npos) {
              rep.open = true;
              rep.detail = "previous tenant's GPU memory readable";
            } else {
              rep.detail = "device memory scrubbed before reassignment";
            }
          } else {
            rep.detail = "device node not openable";
          }
        }
        cluster_->run_jobs();
      }
    }
  }
  cluster_->logout(*vs);
  cluster_->logout(*os);
  return rep;
}

// ---------------------------------------------------------------------------
// Blast radius (§V)
// ---------------------------------------------------------------------------

BlastRadius LeakageAuditor::blast_radius(Uid attacker,
                                         const std::vector<Uid>& victims) {
  BlastRadius out;
  out.victims_total = victims.size();

  net::Network& nw = cluster_->network();
  struct VictimAssets {
    Session session;
    std::uint16_t port;
    std::string tmp_file;
    std::string home_file;
    std::optional<JobId> job;
  };
  std::vector<VictimAssets> assets;

  // Population setup: every victim runs a service, owns files, has a job.
  std::uint16_t next_port = 40000;
  for (Uid v : victims) {
    auto session = cluster_->login(v);
    if (!session) continue;
    VictimAssets a{*session, next_port++, "", "", std::nullopt};
    const HostId host = cluster_->node(a.session.node).host();
    (void)nw.listen(host, a.session.cred, a.session.shell, net::Proto::tcp,
                    a.port);
    vfs::FileSystem& lfs = cluster_->node(a.session.node).local_fs();
    a.tmp_file = strformat("/tmp/victim-%u.dat", v.value());
    (void)lfs.write_file(a.session.cred, a.tmp_file, "victim-data");
    (void)lfs.chmod(a.session.cred, a.tmp_file, 0666);
    const simos::User* vu = cluster_->users().find_user(v);
    a.home_file = vu->home + "/results.csv";
    (void)cluster_->shared_fs().write_file(a.session.cred, a.home_file,
                                           "victim-results");
    sched::JobSpec spec;
    spec.name = strformat("victim-%u-job", v.value());
    spec.duration_ns = 3600 * common::kSecond;
    auto job = cluster_->submit(a.session, spec);
    if (job) a.job = *job;
    assets.push_back(std::move(a));
  }
  cluster_->scheduler().step();

  // The misbehaving/malicious code, running as `attacker`.
  auto as = cluster_->login(attacker);
  if (as) {
    Node& login_node = cluster_->node(as->node);
    // Observe processes.
    std::set<Uid> seen_proc_users;
    for (const auto& d : login_node.procfs().snapshot(as->cred)) {
      if (d.uid != attacker && d.uid != kRootUid) {
        seen_proc_users.insert(d.uid);
      }
    }
    out.processes_observed = seen_proc_users.size();

    // Observe the queue.
    std::set<Uid> seen_job_users;
    for (const auto& view : cluster_->scheduler().list_jobs(as->cred)) {
      if (view.user != attacker) seen_job_users.insert(view.user);
    }
    out.jobs_observed = seen_job_users.size();

    for (const auto& a : assets) {
      // Read files.
      vfs::FileSystem& lfs = cluster_->node(a.session.node).local_fs();
      if (lfs.read_file(as->cred, a.tmp_file)) ++out.files_read;
      if (cluster_->shared_fs().read_file(as->cred, a.home_file)) {
        ++out.files_read;
      }
      // Reach services.
      const HostId vhost = cluster_->node(a.session.node).host();
      auto flow = nw.connect(login_node.host(), as->cred, as->shell, vhost,
                             net::Proto::tcp, a.port);
      if (flow) {
        ++out.services_reached;
        (void)nw.close(*flow);
      }
      // Port-collision crosstalk: the attacker binds the victim's port
      // number on another host; a confused victim client connecting there
      // (mis-typed hostname) reaches the attacker unless the UBF drops it.
      const HostId squat_host =
          cluster_->node(cluster_->compute_nodes().front()).host();
      if (nw.listen(squat_host, as->cred, as->shell, net::Proto::tcp,
                    a.port)) {
        auto misdirected =
            nw.connect(vhost, a.session.cred, a.session.shell, squat_host,
                       net::Proto::tcp, a.port);
        if (misdirected) {
          ++out.port_collisions_won;
          (void)nw.close(*misdirected);
        }
        (void)nw.close_listener(squat_host, net::Proto::tcp, a.port);
      }
    }
    cluster_->logout(*as);
  }

  // Teardown.
  for (auto& a : assets) {
    const HostId host = cluster_->node(a.session.node).host();
    (void)nw.close_listener(host, net::Proto::tcp, a.port);
    vfs::FileSystem& lfs = cluster_->node(a.session.node).local_fs();
    (void)lfs.unlink(a.session.cred, a.tmp_file);
    (void)cluster_->shared_fs().unlink(a.session.cred, a.home_file);
    if (a.job) (void)cluster_->scheduler().cancel(a.session.cred, *a.job);
    cluster_->logout(a.session);
  }
  return out;
}

}  // namespace heus::core
