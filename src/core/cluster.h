// The integrated cluster: every substrate wired together under one
// SeparationPolicy. This is the library's primary public entry point —
// examples, tests, and experiments build a Cluster, pick a policy, and
// exercise user-level workflows against it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "container/runtime.h"
#include "core/policy.h"
#include "gpu/gpu.h"
#include "monitor/monitor.h"
#include "net/network.h"
#include "net/rdma.h"
#include "net/ubf.h"
#include "obs/decision.h"
#include "portal/gateway.h"
#include "sched/scheduler.h"
#include "simos/pam.h"
#include "simos/procfs.h"
#include "simos/process.h"
#include "simos/user_db.h"
#include "vfs/filesystem.h"

namespace heus::core {

struct ClusterConfig {
  unsigned compute_nodes = 8;
  unsigned login_nodes = 1;
  /// Interactive-debug nodes (partition "debug"): multi-user by design
  /// even under whole-node scheduling (§IV-B) — the paper's argument for
  /// keeping hidepid everywhere.
  unsigned debug_nodes = 0;
  unsigned cpus_per_node = 48;
  std::uint64_t mem_mb_per_node = 192 * 1024;
  unsigned gpus_per_node = 0;
  std::size_t gpu_mem_bytes = 1 << 20;  ///< small buffers keep tests fast
  std::string partition = "normal";
  SeparationPolicy policy{};
  std::uint64_t seed = 42;
};

/// An interactive login/SSH session: a shell process on some node.
struct Session {
  simos::Credentials cred;
  NodeId node{};
  Pid shell{};
};

/// Fault-injection hooks consulted by the cluster's prolog/epilog (see
/// src/fault/FaultInjector, which installs these). Each predicate answers
/// "does this attempt fail right now?", so flapping faults and one-shot
/// faults are both expressible. All default to healthy.
struct FaultHooks {
  std::function<bool(NodeId)> prolog_fails;
  std::function<bool(NodeId)> epilog_fails;
  std::function<bool(NodeId, GpuId)> scrub_fails;
};

/// One physical node: its process table, procfs view, local filesystem
/// (/tmp, /dev/shm, /dev), GPUs, and mount table (local + shared).
class Node {
 public:
  Node(NodeId id, std::string hostname, HostId host,
       const simos::UserDb* users, common::SimClock* clock,
       unsigned gpus, std::size_t gpu_mem_bytes, vfs::FsPolicy fs_policy,
       vfs::FileSystem* shared_fs);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] HostId host() const { return host_; }

  [[nodiscard]] simos::ProcessTable& procs() { return procs_; }
  [[nodiscard]] const simos::ProcessTable& procs() const { return procs_; }
  [[nodiscard]] simos::ProcFs& procfs() { return procfs_; }
  [[nodiscard]] const simos::ProcFs& procfs() const { return procfs_; }
  [[nodiscard]] vfs::FileSystem& local_fs() { return local_fs_; }
  [[nodiscard]] vfs::MountTable& mounts() { return mounts_; }
  [[nodiscard]] gpu::GpuSet& gpus() { return gpus_; }
  [[nodiscard]] const gpu::GpuSet& gpus() const { return gpus_; }

  /// The /dev path of GPU `index` on this node.
  [[nodiscard]] static std::string gpu_dev_path(std::uint32_t index);

 private:
  NodeId id_;
  std::string hostname_;
  HostId host_;
  simos::ProcessTable procs_;
  simos::ProcFs procfs_;
  vfs::FileSystem local_fs_;
  vfs::MountTable mounts_;
  gpu::GpuSet gpus_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  // Non-copyable, non-movable: subsystems hold stable pointers into it.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ---- policy ---------------------------------------------------------

  /// Reconfigure every subsystem to `policy`. Applies immediately (procfs
  /// remounts, UBF attach/detach, fs flags, scheduler settings). GPU /dev
  /// modes for *unallocated* devices are reset to match.
  void apply_policy(const SeparationPolicy& policy);
  [[nodiscard]] const SeparationPolicy& policy() const { return policy_; }

  /// UBF degraded-mode policy for ident failures (timeout/retry/backoff
  /// semantics; see net::UbfDegradedMode). Stored on the cluster so it
  /// survives apply_policy(), which rebuilds the UBF.
  void set_ubf_degraded(net::UbfDegradedMode mode,
                        common::BackoffPolicy backoff = {});

  // ---- fault injection -------------------------------------------------

  /// Install (or clear, with `{}`) the prolog/epilog/scrub fault hooks.
  void set_fault_hooks(FaultHooks hooks) { fault_hooks_ = std::move(hooks); }
  [[nodiscard]] const FaultHooks& fault_hooks() const { return fault_hooks_; }

  // ---- accounts -------------------------------------------------------

  /// Create a user: registry entry, UPG, and home directory (ownership per
  /// policy.root_owned_homes).
  Result<Uid> add_user(const std::string& name);

  /// Create an approved project group plus /proj/<name> (setgid, 2770).
  Result<Gid> create_project(const std::string& name, Uid steward);

  /// Steward adds a member (delegates to UserDb; steward check inside).
  Result<void> add_to_project(Uid steward, Gid project, Uid member);

  // ---- sessions -------------------------------------------------------

  /// Interactive login on a login node.
  Result<Session> login(Uid uid);
  /// SSH to an arbitrary node, gated by pam_slurm under the policy.
  Result<Session> ssh(const Session& from, NodeId target);
  void logout(Session& session);

  // ---- jobs -----------------------------------------------------------

  Result<JobId> submit(const Session& session, sched::JobSpec spec);
  /// Drive the simulation until the queue drains.
  void run_jobs() { scheduler_->run_until_drained(); }

  // ---- component access ------------------------------------------------

  [[nodiscard]] common::SimClock& clock() { return clock_; }
  [[nodiscard]] simos::UserDb& users() { return users_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] net::Ubf& ubf() { return *ubf_; }
  [[nodiscard]] net::RdmaManager& rdma() { return *rdma_; }
  [[nodiscard]] sched::Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] vfs::FileSystem& shared_fs() { return *shared_fs_; }
  [[nodiscard]] portal::Gateway& portal() { return *portal_; }
  [[nodiscard]] container::Runtime& containers() { return containers_; }
  [[nodiscard]] simos::SeepidService& seepid() { return *seepid_; }
  [[nodiscard]] simos::SmaskRelaxService& smask_relax() {
    return smask_relax_;
  }
  [[nodiscard]] simos::PamSlurm& pam() { return *pam_; }
  /// The unified decision spine: every enforcement point records its
  /// allow/deny verdicts here. Disabled by default (counters only);
  /// enable via trace().set_enabled(true).
  [[nodiscard]] obs::DecisionTrace& trace() { return trace_; }
  [[nodiscard]] const obs::DecisionTrace& trace() const { return trace_; }
  /// Load/hotspot telemetry; attribution gated on seepid membership.
  [[nodiscard]] monitor::Monitor& monitor() { return *monitor_; }

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id.value()); }
  [[nodiscard]] const Node& node(NodeId id) const {
    return *nodes_.at(id.value());
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<NodeId> compute_nodes() const {
    return compute_nodes_;
  }
  [[nodiscard]] std::vector<NodeId> login_nodes() const {
    return login_nodes_;
  }
  [[nodiscard]] std::vector<NodeId> debug_nodes() const {
    return debug_nodes_;
  }
  [[nodiscard]] HostId portal_host() const { return portal_host_; }

  /// Filesystem responsible for `path` as seen from `node` (mount table).
  [[nodiscard]] vfs::FileSystem* fs_at(NodeId node, const std::string& path);

  [[nodiscard]] const ClusterConfig& config() const { return config_; }

 private:
  void wire_prolog_epilog();
  void set_gpu_dev_mode_unassigned(Node& node, std::uint32_t index);

  ClusterConfig config_;
  SeparationPolicy policy_;
  common::SimClock clock_;
  simos::UserDb users_;
  // Declared before the subsystems that hold pointers into it, so it is
  // destroyed after all of them.
  obs::DecisionTrace trace_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<vfs::FileSystem> shared_fs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<NodeId> compute_nodes_;
  std::vector<NodeId> login_nodes_;
  std::vector<NodeId> debug_nodes_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<net::Ubf> ubf_;
  std::unique_ptr<net::RdmaManager> rdma_;
  std::unique_ptr<simos::SeepidService> seepid_;
  simos::SmaskRelaxService smask_relax_;
  std::unique_ptr<simos::PamSlurm> pam_;
  std::unique_ptr<portal::Gateway> portal_;
  std::unique_ptr<monitor::Monitor> monitor_;
  container::Runtime containers_;
  FaultHooks fault_hooks_;
  net::UbfDegradedMode ubf_degraded_ =
      net::UbfDegradedMode::retry_then_fail_closed;
  common::BackoffPolicy ubf_backoff_;
  HostId portal_host_{};
  Gid seepid_group_{};
};

}  // namespace heus::core
