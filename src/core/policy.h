// The paper's contribution, expressed as a single configuration object:
// the set of enforcement knobs that, together, give every user a
// "personal HPC" illusion on shared hardware.
//
// `hardened()` is the LLSC production configuration described in §IV;
// `baseline()` is a stock Linux + Slurm install. Every knob can be toggled
// independently, which is what the ablation experiments sweep.
#pragma once

#include "sched/scheduler.h"
#include "simos/procfs.h"
#include "vfs/filesystem.h"

namespace heus::core {

struct SeparationPolicy {
  // §IV-A processes
  simos::HidepidMode hidepid = simos::HidepidMode::off;
  bool hidepid_gid_exemption = false;  ///< gid= flag + seepid tool

  // §IV-B scheduler
  sched::PrivateData private_data = sched::PrivateData::none();
  sched::SharingPolicy sharing = sched::SharingPolicy::shared;
  bool pam_slurm = false;  ///< ssh only to nodes with a running job

  // §IV-C filesystems
  vfs::FsPolicy fs = vfs::FsPolicy::baseline();
  bool root_owned_homes = false;  ///< homes root-owned, group = UPG

  // §IV-D network
  bool ubf = false;              ///< user-based firewall attached
  bool ubf_group_peers = true;   ///< rule (b): egid project-group opt-in

  // §IV-F accelerators
  bool gpu_dev_binding = false;  ///< /dev/nvidiaN chgrp'ed to UPG on alloc
  bool gpu_epilog_scrub = false; ///< vendor scrub in the epilog

  /// Stock multi-tenant cluster: everything observable, nodes shared.
  [[nodiscard]] static SeparationPolicy baseline() { return {}; }

  /// The full LLSC configuration from the paper.
  [[nodiscard]] static SeparationPolicy hardened() {
    SeparationPolicy p;
    p.hidepid = simos::HidepidMode::invisible;
    p.hidepid_gid_exemption = true;
    p.private_data = sched::PrivateData::all();
    p.sharing = sched::SharingPolicy::user_whole_node;
    p.pam_slurm = true;
    p.fs = vfs::FsPolicy::hardened();
    p.root_owned_homes = true;
    p.ubf = true;
    p.ubf_group_peers = true;
    p.gpu_dev_binding = true;
    p.gpu_epilog_scrub = true;
    return p;
  }

  /// Knob-wise equality — what the ingest round-trip oracle asserts
  /// between a policy and its emit→parse image.
  [[nodiscard]] bool operator==(const SeparationPolicy&) const = default;
};

}  // namespace heus::core
