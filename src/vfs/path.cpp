#include "vfs/path.h"

namespace heus::vfs {

Result<std::vector<std::string>> split_path(std::string_view path) {
  if (path.empty() || path.front() != '/') return Errno::einval;
  std::vector<std::string> parts;
  std::size_t i = 1;
  while (i <= path.size()) {
    std::size_t j = path.find('/', i);
    if (j == std::string_view::npos) j = path.size();
    std::string_view comp = path.substr(i, j - i);
    if (!comp.empty() && comp != ".") {
      if (comp.size() > kMaxNameLen) return Errno::enametoolong;
      if (comp == "..") {
        if (!parts.empty()) parts.pop_back();
      } else {
        parts.emplace_back(comp);
      }
    }
    i = j + 1;
  }
  return parts;
}

std::string join_path(const std::vector<std::string>& parts) {
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& p : parts) {
    out += '/';
    out += p;
  }
  return out;
}

std::string dirname(std::string_view path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

std::string basename(std::string_view path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) return std::string(path);
  return std::string(path.substr(pos + 1));
}

}  // namespace heus::vfs
