// In-memory POSIX filesystem with the LLSC hardening semantics (§IV-C).
//
// Reproduced behaviours, each individually switchable so experiments can
// ablate them (see vfs::FsPolicy):
//
//  - Full discretionary access control: owner/group/other mode bits,
//    supplementary groups, setgid directories, sticky-bit deletion rules.
//  - POSIX ACL evaluation with the mask entry.
//  - The `smask` kernel patch: an immutable per-task security mask applied
//    to permission bits at *creation and chmod time* (unlike umask, which
//    applies only at creation and is user-controlled). With smask 007 an
//    unprivileged `chmod 777 f` yields mode 770.
//  - The ACL-restriction kernel patch: unprivileged setfacl may only grant
//    to groups the caller belongs to, and may not grant to other users.
//  - The Lustre smask patch: an unpatched filesystem ("honor_smask=false")
//    ignores smask at create time, modelling the pre-LU-4746 Lustre bug.
//  - Root-owned home directories so users cannot chmod their own top-level
//    home open (constructed by core::Cluster, enforced here by plain DAC).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "obs/decision.h"
#include "simos/credentials.h"
#include "simos/user_db.h"
#include "vfs/inode.h"
#include "vfs/path.h"

namespace heus::vfs {

/// Hardening knobs, per filesystem. `hardened()` is the paper's
/// configuration, `baseline()` a stock distro.
struct FsPolicy {
  /// Kernel smask patch installed: cred.smask is enforced at create/chmod.
  bool enforce_smask = true;
  /// Lustre LU-4746 patch: honor smask on this filesystem. Only meaningful
  /// when enforce_smask is true; false models unpatched Lustre, which read
  /// umask directly and missed the smask.
  bool honor_smask = true;
  /// ACL-restriction patch: grants limited to member groups, no named-user
  /// grants to other users.
  bool restrict_acl = true;

  [[nodiscard]] static FsPolicy hardened() { return {true, true, true}; }
  [[nodiscard]] static FsPolicy baseline() { return {false, false, false}; }

  [[nodiscard]] bool operator==(const FsPolicy&) const = default;
};

enum class Access : unsigned {
  read = kPermRead,
  write = kPermWrite,
  exec = kPermExec,
};

struct DirEntry {
  std::string name;
  FileKind kind;
};

/// One mounted filesystem instance (a node-local disk, or the shared
/// central filesystem). All operations take the caller's Credentials and
/// return POSIX errors; nothing here trusts the caller.
class FileSystem {
 public:
  /// `name` is a label for diagnostics ("local:node3", "lustre:shared").
  FileSystem(std::string name, const simos::UserDb* users,
             const common::SimClock* clock, FsPolicy policy = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FsPolicy& policy() const { return policy_; }
  void set_policy(FsPolicy p) { policy_ = p; }

  /// Route smask/ACL/home-ownership verdicts and cross-user reads through
  /// the cluster decision trace. Null (the default) disables recording.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Fault injection: while `probe` returns true the mount is unavailable
  /// and every path operation fails with EIO (a hung-Lustre-mount model —
  /// data neither readable nor writable, nothing corrupted). nullptr
  /// restores health.
  void set_outage_probe(std::function<bool()> probe) {
    outage_probe_ = std::move(probe);
  }
  [[nodiscard]] bool unavailable() const {
    return outage_probe_ && outage_probe_();
  }

  // ---- namespace operations -------------------------------------------

  Result<void> mkdir(const simos::Credentials& cred, const std::string& path,
                     unsigned mode);
  /// O_CREAT|O_EXCL file creation.
  Result<void> create(const simos::Credentials& cred,
                      const std::string& path, unsigned mode);
  Result<void> symlink(const simos::Credentials& cred,
                       const std::string& target, const std::string& path);
  /// mknod for character devices: root only.
  Result<void> mknod_chardev(const simos::Credentials& cred,
                             const std::string& path, unsigned mode,
                             DeviceRef device);
  /// Hard link: `newpath` becomes another name for the file at
  /// `existing`. Directories cannot be hard-linked (EPERM, as on Linux).
  Result<void> link(const simos::Credentials& cred,
                    const std::string& existing,
                    const std::string& newpath);
  Result<void> unlink(const simos::Credentials& cred,
                      const std::string& path);
  Result<void> rmdir(const simos::Credentials& cred, const std::string& path);
  Result<void> rename(const simos::Credentials& cred,
                      const std::string& from, const std::string& to);

  // ---- data operations -------------------------------------------------

  /// Create-or-truncate write (the common test/bench shorthand).
  Result<void> write_file(const simos::Credentials& cred,
                          const std::string& path, std::string data);
  Result<void> append_file(const simos::Credentials& cred,
                           const std::string& path, const std::string& data);
  Result<std::string> read_file(const simos::Credentials& cred,
                                const std::string& path);
  Result<std::vector<DirEntry>> readdir(const simos::Credentials& cred,
                                        const std::string& path);

  // ---- metadata operations ---------------------------------------------

  /// stat follows symlinks; requires search permission on the parents only.
  Result<Stat> stat(const simos::Credentials& cred, const std::string& path);
  Result<std::string> readlink(const simos::Credentials& cred,
                               const std::string& path);
  /// access(2)-style permission probe on the final object.
  Result<void> access(const simos::Credentials& cred, const std::string& path,
                      Access want);

  /// chmod, subject to smask when the policy enforces it (world bits are
  /// silently stripped, the documented semantics of the patch: it acts as
  /// a mask, like umask, not as a rejection).
  Result<void> chmod(const simos::Credentials& cred, const std::string& path,
                     unsigned mode);
  /// chown is root-only, as on stock Linux.
  Result<void> chown(const simos::Credentials& cred, const std::string& path,
                     Uid new_owner);
  /// chgrp: owner may move the file to a group they are a member of.
  Result<void> chgrp(const simos::Credentials& cred, const std::string& path,
                     Gid new_group);

  /// setfacl -m: add/replace an ACL entry, subject to the restriction
  /// patch when enabled.
  Result<void> acl_set(const simos::Credentials& cred,
                       const std::string& path, const AclEntry& entry);
  /// setfacl -x: drop an entry.
  Result<void> acl_remove(const simos::Credentials& cred,
                          const std::string& path, AclTag tag, Uid uid,
                          Gid gid);
  Result<Acl> acl_get(const simos::Credentials& cred,
                      const std::string& path);

  /// Default (inheritable) ACLs on directories: children created inside
  /// pick the default ACL up as their access ACL, and subdirectories also
  /// inherit it as their own default — the POSIX mechanism project
  /// directories use so collaborators' files stay group-accessible. The
  /// ACL-restriction patch applies to default entries identically.
  Result<void> acl_set_default(const simos::Credentials& cred,
                               const std::string& dir,
                               const AclEntry& entry);
  Result<void> acl_remove_default(const simos::Credentials& cred,
                                  const std::string& dir, AclTag tag,
                                  Uid uid, Gid gid);
  Result<Acl> acl_get_default(const simos::Credentials& cred,
                              const std::string& dir);

  /// Device lookup for the accelerator layer: resolves a chardev path and
  /// checks `want` access, returning the DeviceRef on success.
  Result<DeviceRef> open_device(const simos::Credentials& cred,
                                const std::string& path, Access want);

  // ---- quotas & capacity -------------------------------------------------
  // Extension beyond the paper (DESIGN.md §5 ablations): per-user byte
  // quotas and a filesystem capacity, so experiments can measure the
  // shared-storage flavour of "blast radius" (one user filling /tmp or
  // scratch). Usage is charged to the file *owner*; root is exempt.

  void set_capacity(std::optional<std::uint64_t> bytes) {
    capacity_ = bytes;
  }
  void set_user_quota(Uid uid, std::optional<std::uint64_t> bytes);
  [[nodiscard]] std::optional<std::uint64_t> user_quota(Uid uid) const;
  [[nodiscard]] std::uint64_t bytes_used_by(Uid uid) const;
  [[nodiscard]] std::uint64_t bytes_used_total() const {
    return total_used_;
  }

  // ---- bookkeeping -----------------------------------------------------

  [[nodiscard]] std::size_t inode_count() const { return inodes_.size(); }

  /// Walk the whole tree (for audits); visitor sees (path, inode).
  void for_each(const std::function<void(const std::string&, const Inode&)>&
                    visit) const;

 private:
  struct Resolved {
    InodeId parent;  ///< containing directory
    InodeId node;    ///< the object itself
    std::string leaf;
  };

  Inode& get(InodeId id) { return inodes_.at(id); }
  [[nodiscard]] const Inode& get(InodeId id) const { return inodes_.at(id); }

  InodeId alloc_inode(FileKind kind, unsigned mode,
                      const simos::Credentials& cred, InodeId parent);

  /// Decrement a link count, erasing the inode at zero.
  void drop_inode_ref(InodeId id);

  /// Quota/capacity admission for `delta` new bytes owned by `owner`.
  /// Negative deltas always succeed and refund. `enforce` is false for
  /// root-initiated writes.
  Result<void> charge_bytes(Uid owner, std::int64_t delta, bool enforce);

  /// The ACL-restriction patch's validation, shared by access and
  /// default ACL setters.
  [[nodiscard]] Result<void> check_acl_entry(const simos::Credentials& cred,
                                             const AclEntry& entry) const;

  /// Core DAC + ACL permission check against one inode.
  [[nodiscard]] bool permits(const simos::Credentials& cred,
                             const Inode& node, Access want) const;

  /// Walk to the parent directory of `path`, enforcing search (+x) on every
  /// directory along the way. Returns the parent inode id + leaf name.
  Result<std::pair<InodeId, std::string>> walk_parent(
      const simos::Credentials& cred, const std::string& path);

  /// Full resolution of `path` (follows symlinks when `follow`).
  Result<Resolved> resolve(const simos::Credentials& cred,
                           const std::string& path, bool follow,
                           std::size_t depth = 0);

  /// Effective mode for a newly created object under umask/smask.
  [[nodiscard]] unsigned creation_mode(const simos::Credentials& cred,
                                       unsigned requested) const;
  /// smask application for chmod.
  [[nodiscard]] unsigned chmod_mode(const simos::Credentials& cred,
                                    unsigned requested) const;

  /// Decision-trace helper for read-side verdicts (read/readdir/access/
  /// open_device): denials always, allows only when they cross users.
  void record_read(const simos::Credentials& cred, const std::string& path,
                   obs::DecisionPoint point, Uid object_owner,
                   bool allowed) const;

  /// Decision-trace helper for setfacl verdicts. `deny_knob` is nullptr
  /// on success, else the candidate attribution of the refusal.
  void record_acl_verdict(const simos::Credentials& cred,
                          const std::string& path, Uid object_owner,
                          const AclEntry& entry,
                          const char* deny_knob) const;

  /// Sticky-bit deletion rule shared by unlink/rmdir/rename.
  [[nodiscard]] Result<void> may_remove_entry(const simos::Credentials& cred,
                                              const Inode& dir,
                                              const Inode& victim) const;

  std::string name_;
  const simos::UserDb* users_;
  const common::SimClock* clock_;
  FsPolicy policy_;
  std::unordered_map<InodeId, Inode> inodes_;
  InodeId root_;
  std::uint64_t next_inode_ = 1;
  std::function<bool()> outage_probe_;
  obs::DecisionTrace* trace_ = nullptr;
  std::optional<std::uint64_t> capacity_;
  std::unordered_map<Uid, std::uint64_t> quota_limits_;
  std::unordered_map<Uid, std::uint64_t> quota_used_;
  std::uint64_t total_used_ = 0;
};

/// Prefix-based mount table: routes absolute paths to the filesystem
/// mounted at the longest matching prefix and rewrites the path to be
/// mount-relative... except that for simplicity and fidelity to how the
/// cluster uses it, mounts share the path namespace (the shared FS is
/// mounted at "/home" and "/proj" with those directories existing inside
/// it), so no rewriting is performed — the FS sees cluster-absolute paths.
class MountTable {
 public:
  /// Longest-prefix mount registration. `prefix` must be absolute.
  void mount(const std::string& prefix, FileSystem* fs);

  /// Filesystem responsible for `path`, or nullptr when nothing matches.
  [[nodiscard]] FileSystem* lookup(const std::string& path) const;

  [[nodiscard]] std::vector<std::pair<std::string, FileSystem*>> mounts()
      const;

 private:
  // Sorted longest-first at lookup time; the table is tiny.
  std::vector<std::pair<std::string, FileSystem*>> mounts_;
};

}  // namespace heus::vfs
