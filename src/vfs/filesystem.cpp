#include "vfs/filesystem.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace heus::vfs {

using simos::Credentials;

namespace {

/// Map a path to the taxonomy channel its content protection belongs to.
/// Only the canonical cross-user surfaces (§IV-C) have a channel; other
/// paths still get decisions, just unchannelled.
std::optional<obs::ChannelKind> channel_for_path(const std::string& path) {
  if (path == "/home" || common::starts_with(path, "/home/")) {
    return obs::ChannelKind::fs_home_read;
  }
  if (path == "/dev/shm" || common::starts_with(path, "/dev/shm/")) {
    return obs::ChannelKind::fs_devshm_content;
  }
  if (path == "/tmp" || common::starts_with(path, "/tmp/")) {
    return obs::ChannelKind::fs_tmp_content;
  }
  return std::nullopt;
}

bool is_world_writable_dir(const std::string& path) {
  return path == "/tmp" || path == "/dev/shm";
}

}  // namespace

void FileSystem::record_read(const Credentials& cred,
                             const std::string& path,
                             obs::DecisionPoint point, Uid object_owner,
                             bool allowed) const {
  if (trace_ == nullptr || cred.is_root()) return;
  // Denials are always worth a record; allows only when they cross users
  // (someone reading another user's data is the separation event).
  if (allowed &&
      (object_owner == cred.uid || object_owner == kRootUid)) {
    return;
  }
  trace_->record(point,
                 allowed ? obs::Outcome::allow : obs::Outcome::deny,
                 cred.uid, cred.egid, object_owner, channel_for_path(path),
                 nullptr, [&] { return path; });
}

FileSystem::FileSystem(std::string name, const simos::UserDb* users,
                       const common::SimClock* clock, FsPolicy policy)
    : name_(std::move(name)), users_(users), clock_(clock), policy_(policy) {
  const InodeId id{next_inode_++};
  Inode root;
  root.id = id;
  root.kind = FileKind::directory;
  root.mode = 0755;
  root.uid = kRootUid;
  root.gid = kRootGid;
  root.mtime = clock_->now();
  root.ctime = clock_->now();
  inodes_.emplace(id, std::move(root));
  root_ = id;
}

InodeId FileSystem::alloc_inode(FileKind kind, unsigned mode,
                                const Credentials& cred, InodeId parent) {
  const InodeId id{next_inode_++};
  const Inode& dir = get(parent);
  Inode node;
  node.id = id;
  node.kind = kind;
  node.mode = mode;
  node.uid = cred.uid;
  // BSD/Linux setgid-directory semantics: children inherit the directory's
  // group (project directories rely on this so collaborators' files stay
  // group-owned by the project group).
  if (dir.mode & kModeSetgid) {
    node.gid = dir.gid;
    if (kind == FileKind::directory) node.mode |= kModeSetgid;
  } else {
    node.gid = cred.egid;
  }
  node.mtime = clock_->now();
  node.ctime = clock_->now();
  // POSIX default-ACL inheritance: a directory's default ACL becomes the
  // child's access ACL; subdirectories also inherit it as their default.
  if (dir.default_acl && !dir.default_acl->empty()) {
    node.acl = dir.default_acl;
    if (kind == FileKind::directory) node.default_acl = dir.default_acl;
  }
  inodes_.emplace(id, std::move(node));
  return id;
}

void FileSystem::drop_inode_ref(InodeId id) {
  Inode& node = get(id);
  if (node.nlink > 1) {
    --node.nlink;
    node.ctime = clock_->now();
    return;
  }
  // Refund the owner's quota for the vanished payload.
  if (node.kind == FileKind::regular && !node.data.empty()) {
    (void)charge_bytes(node.uid,
                       -static_cast<std::int64_t>(node.data.size()),
                       /*enforce=*/false);
  }
  inodes_.erase(id);
}

Result<void> FileSystem::charge_bytes(Uid owner, std::int64_t delta,
                                      bool enforce) {
  if (delta == 0) return ok_result();
  if (delta < 0) {
    const auto refund = static_cast<std::uint64_t>(-delta);
    auto it = quota_used_.find(owner);
    if (it != quota_used_.end()) {
      it->second -= std::min(it->second, refund);
    }
    total_used_ -= std::min(total_used_, refund);
    return ok_result();
  }
  const auto grow = static_cast<std::uint64_t>(delta);
  if (enforce) {
    if (capacity_ && total_used_ + grow > *capacity_) {
      return Errno::enospc;
    }
    auto limit = quota_limits_.find(owner);
    if (limit != quota_limits_.end() &&
        quota_used_[owner] + grow > limit->second) {
      return Errno::edquot;
    }
  }
  quota_used_[owner] += grow;
  total_used_ += grow;
  return ok_result();
}

void FileSystem::set_user_quota(Uid uid,
                                std::optional<std::uint64_t> bytes) {
  if (bytes) {
    quota_limits_[uid] = *bytes;
  } else {
    quota_limits_.erase(uid);
  }
}

std::optional<std::uint64_t> FileSystem::user_quota(Uid uid) const {
  auto it = quota_limits_.find(uid);
  if (it == quota_limits_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t FileSystem::bytes_used_by(Uid uid) const {
  auto it = quota_used_.find(uid);
  return it == quota_used_.end() ? 0 : it->second;
}

unsigned FileSystem::creation_mode(const Credentials& cred,
                                   unsigned requested) const {
  unsigned mode = requested & kModePermMask;
  mode &= ~cred.umask;
  if (policy_.enforce_smask && policy_.honor_smask && !cred.is_root()) {
    mode &= ~cred.smask;
  }
  return mode;
}

unsigned FileSystem::chmod_mode(const Credentials& cred,
                                unsigned requested) const {
  unsigned mode = requested & kModePermMask;
  // The smask patch's distinguishing property: unlike umask it is applied
  // to chmod as well, so `chmod 777` under smask 007 lands at 770.
  if (policy_.enforce_smask && policy_.honor_smask && !cred.is_root()) {
    mode &= ~cred.smask;
  }
  return mode;
}

bool FileSystem::permits(const Credentials& cred, const Inode& node,
                         Access want) const {
  const auto bit = static_cast<unsigned>(want);
  if (cred.is_root()) {
    // Root bypasses read/write DAC; exec on a regular file still requires
    // some execute bit (as on Linux).
    if (want != Access::exec || node.is_dir()) return true;
    return (node.mode & 0111) != 0;
  }

  const unsigned owner_bits = (node.mode >> 6) & 7;
  const unsigned group_bits = (node.mode >> 3) & 7;
  const unsigned other_bits = node.mode & 7;

  if (!node.acl || node.acl->empty()) {
    if (cred.uid == node.uid) return (owner_bits & bit) != 0;
    if (cred.in_group(node.gid)) return (group_bits & bit) != 0;
    return (other_bits & bit) != 0;
  }

  // POSIX 1003.1e ACL evaluation. Without an explicit mask entry the mask
  // is unrestrictive (setfacl would have auto-computed it as the union of
  // all group-class entries, which never masks a granted bit away).
  const Acl& acl = *node.acl;
  const Perm mask = acl.mask().value_or(7);

  if (cred.uid == node.uid) return (owner_bits & bit) != 0;
  if (auto p = acl.named_user(cred.uid)) return (*p & mask & bit) != 0;

  // Group class: the request is granted if *any* matching group entry
  // grants it; if the process matches at least one group but none grants,
  // access falls through to denial (not to "other").
  bool matched_group = false;
  if (cred.in_group(node.gid)) {
    matched_group = true;
    if ((group_bits & mask & bit) != 0) return true;
  }
  for (const auto& e : acl.entries) {
    if (e.tag != AclTag::named_group) continue;
    if (!cred.in_group(e.gid)) continue;
    matched_group = true;
    if ((e.perm & mask & bit) != 0) return true;
  }
  if (matched_group) return false;

  return (other_bits & bit) != 0;
}

Result<FileSystem::Resolved> FileSystem::resolve(const Credentials& cred,
                                                 const std::string& path,
                                                 bool follow,
                                                 std::size_t depth) {
  if (unavailable()) return Errno::eio;  // mount outage (fault injection)
  if (depth > kMaxSymlinkDepth) return Errno::eloop;
  auto parts = split_path(path);
  if (!parts) return parts.error();

  InodeId cur = root_;
  InodeId parent = root_;
  std::string leaf = "/";
  for (std::size_t i = 0; i < parts->size(); ++i) {
    const Inode& dir = get(cur);
    if (!dir.is_dir()) return Errno::enotdir;
    if (!permits(cred, dir, Access::exec)) return Errno::eacces;
    auto it = dir.entries.find((*parts)[i]);
    if (it == dir.entries.end()) return Errno::enoent;
    parent = cur;
    cur = it->second;
    leaf = (*parts)[i];

    const Inode& node = get(cur);
    const bool last = (i + 1 == parts->size());
    if (node.kind == FileKind::symlink && (!last || follow)) {
      // Rebuild the remaining path against the link target and restart.
      std::string rest = node.symlink_target;
      for (std::size_t j = i + 1; j < parts->size(); ++j) {
        rest += '/';
        rest += (*parts)[j];
      }
      if (rest.empty() || rest.front() != '/') {
        // Relative target: interpret against the containing directory.
        std::vector<std::string> base(parts->begin(),
                                      parts->begin() +
                                          static_cast<std::ptrdiff_t>(i));
        rest = join_path(base) + (rest.empty() ? "" : "/" + rest);
      }
      return resolve(cred, rest, follow, depth + 1);
    }
  }
  return Resolved{parent, cur, leaf};
}

Result<std::pair<InodeId, std::string>> FileSystem::walk_parent(
    const Credentials& cred, const std::string& path) {
  auto parts = split_path(path);
  if (!parts) return parts.error();
  if (parts->empty()) return Errno::eexist;  // "/" itself
  const std::string leaf = parts->back();
  parts->pop_back();

  auto dir_res = resolve(cred, join_path(*parts), /*follow=*/true);
  if (!dir_res) return dir_res.error();
  const Inode& dir = get(dir_res->node);
  if (!dir.is_dir()) return Errno::enotdir;
  if (!permits(cred, dir, Access::exec)) return Errno::eacces;
  return std::make_pair(dir_res->node, leaf);
}

Result<void> FileSystem::mkdir(const Credentials& cred,
                               const std::string& path, unsigned mode) {
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  if (dir.entries.contains(parent->second)) return Errno::eexist;
  if (!permits(cred, dir, Access::write)) return Errno::eacces;
  const InodeId id = alloc_inode(FileKind::directory,
                                 creation_mode(cred, mode), cred,
                                 parent->first);
  dir.entries.emplace(parent->second, id);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::create(const Credentials& cred,
                                const std::string& path, unsigned mode) {
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  if (dir.entries.contains(parent->second)) return Errno::eexist;
  if (!permits(cred, dir, Access::write)) return Errno::eacces;
  const InodeId id = alloc_inode(FileKind::regular,
                                 creation_mode(cred, mode), cred,
                                 parent->first);
  dir.entries.emplace(parent->second, id);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::symlink(const Credentials& cred,
                                 const std::string& target,
                                 const std::string& path) {
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  if (dir.entries.contains(parent->second)) return Errno::eexist;
  if (!permits(cred, dir, Access::write)) return Errno::eacces;
  const InodeId id =
      alloc_inode(FileKind::symlink, 0777, cred, parent->first);
  get(id).symlink_target = target;
  dir.entries.emplace(parent->second, id);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::mknod_chardev(const Credentials& cred,
                                       const std::string& path,
                                       unsigned mode, DeviceRef device) {
  if (!cred.is_root()) return Errno::eperm;
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  if (dir.entries.contains(parent->second)) return Errno::eexist;
  const InodeId id = alloc_inode(FileKind::chardev, mode & kModePermMask,
                                 cred, parent->first);
  get(id).device = std::move(device);
  dir.entries.emplace(parent->second, id);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::may_remove_entry(const Credentials& cred,
                                          const Inode& dir,
                                          const Inode& victim) const {
  if (!permits(cred, dir, Access::write) ||
      !permits(cred, dir, Access::exec)) {
    return Errno::eacces;
  }
  // Sticky directories (e.g. /tmp mode 1777): only the file owner, the
  // directory owner, or root may remove an entry.
  if ((dir.mode & kModeSticky) && !cred.is_root() &&
      cred.uid != victim.uid && cred.uid != dir.uid) {
    return Errno::eperm;
  }
  return ok_result();
}

Result<void> FileSystem::unlink(const Credentials& cred,
                                const std::string& path) {
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  auto it = dir.entries.find(parent->second);
  if (it == dir.entries.end()) return Errno::enoent;
  Inode& victim = get(it->second);
  if (victim.is_dir()) return Errno::eisdir;
  if (auto r = may_remove_entry(cred, dir, victim); !r) return r;
  drop_inode_ref(it->second);
  dir.entries.erase(it);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::link(const Credentials& cred,
                              const std::string& existing,
                              const std::string& newpath) {
  auto src = resolve(cred, existing, /*follow=*/true);
  if (!src) return src.error();
  Inode& target = get(src->node);
  if (target.is_dir()) return Errno::eperm;  // no directory hard links

  auto parent = walk_parent(cred, newpath);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  if (dir.entries.contains(parent->second)) return Errno::eexist;
  if (!permits(cred, dir, Access::write)) return Errno::eacces;

  ++target.nlink;
  target.ctime = clock_->now();
  dir.entries.emplace(parent->second, src->node);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::rmdir(const Credentials& cred,
                               const std::string& path) {
  auto parent = walk_parent(cred, path);
  if (!parent) return parent.error();
  Inode& dir = get(parent->first);
  auto it = dir.entries.find(parent->second);
  if (it == dir.entries.end()) return Errno::enoent;
  Inode& victim = get(it->second);
  if (!victim.is_dir()) return Errno::enotdir;
  if (!victim.entries.empty()) return Errno::enotempty;
  if (auto r = may_remove_entry(cred, dir, victim); !r) return r;
  inodes_.erase(it->second);
  dir.entries.erase(it);
  dir.mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::rename(const Credentials& cred,
                                const std::string& from,
                                const std::string& to) {
  auto src = walk_parent(cred, from);
  if (!src) return src.error();
  Inode& src_dir = get(src->first);
  auto sit = src_dir.entries.find(src->second);
  if (sit == src_dir.entries.end()) return Errno::enoent;
  const InodeId moving = sit->second;
  if (auto r = may_remove_entry(cred, src_dir, get(moving)); !r) return r;

  auto dst = walk_parent(cred, to);
  if (!dst) return dst.error();
  Inode& dst_dir = get(dst->first);
  if (!permits(cred, dst_dir, Access::write)) return Errno::eacces;

  auto dit = dst_dir.entries.find(dst->second);
  if (dit != dst_dir.entries.end()) {
    // POSIX: if oldpath and newpath are existing links to the same inode,
    // rename does nothing and succeeds.
    if (dit->second == moving) return ok_result();
    Inode& existing = get(dit->second);
    if (existing.is_dir() && !existing.entries.empty()) {
      return Errno::enotempty;
    }
    if (existing.is_dir() != get(moving).is_dir()) {
      return existing.is_dir() ? Errno::eisdir : Errno::enotdir;
    }
    if (auto r = may_remove_entry(cred, dst_dir, existing); !r) return r;
    drop_inode_ref(dit->second);
    dst_dir.entries.erase(dit);
  }

  // Re-find: dst insertion may alias src_dir; maps stay valid, but the
  // iterator into src_dir does if they are the same inode — erase by key.
  get(src->first).entries.erase(src->second);
  get(dst->first).entries.emplace(dst->second, moving);
  get(src->first).mtime = clock_->now();
  get(dst->first).mtime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::write_file(const Credentials& cred,
                                    const std::string& path,
                                    std::string data) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (r) {
    Inode& node = get(r->node);
    if (node.is_dir()) return Errno::eisdir;
    if (node.kind == FileKind::chardev) return Errno::einval;
    if (!permits(cred, node, Access::write)) return Errno::eacces;
    const std::int64_t delta = static_cast<std::int64_t>(data.size()) -
                               static_cast<std::int64_t>(node.data.size());
    if (auto q = charge_bytes(node.uid, delta, !cred.is_root()); !q) {
      return q;
    }
    node.data = std::move(data);
    node.mtime = clock_->now();
    return ok_result();
  }
  if (r.error() != Errno::enoent) return r.error();
  if (auto c = create(cred, path, 0666); !c) return c;
  auto again = resolve(cred, path, /*follow=*/true);
  assert(again.ok());
  Inode& node = get(again->node);
  if (auto q = charge_bytes(node.uid,
                            static_cast<std::int64_t>(data.size()),
                            !cred.is_root());
      !q) {
    // Roll the empty file back out so a failed write leaves no debris.
    (void)unlink(cred, path);
    return q;
  }
  node.data = std::move(data);
  return ok_result();
}

Result<void> FileSystem::append_file(const Credentials& cred,
                                     const std::string& path,
                                     const std::string& data) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (node.is_dir()) return Errno::eisdir;
  if (!permits(cred, node, Access::write)) return Errno::eacces;
  if (auto q = charge_bytes(node.uid,
                            static_cast<std::int64_t>(data.size()),
                            !cred.is_root());
      !q) {
    return q;
  }
  node.data += data;
  node.mtime = clock_->now();
  return ok_result();
}

Result<std::string> FileSystem::read_file(const Credentials& cred,
                                          const std::string& path) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) {
    if (r.error() == Errno::eacces) {
      record_read(cred, path, obs::DecisionPoint::fs_access, kRootUid,
                  /*allowed=*/false);
    }
    return r.error();
  }
  const Inode& node = get(r->node);
  if (node.is_dir()) return Errno::eisdir;
  const bool allowed = permits(cred, node, Access::read);
  record_read(cred, path, obs::DecisionPoint::fs_access, node.uid, allowed);
  if (!allowed) return Errno::eacces;
  return node.data;
}

Result<std::vector<DirEntry>> FileSystem::readdir(const Credentials& cred,
                                                  const std::string& path) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) {
    if (r.error() == Errno::eacces) {
      record_read(cred, path, obs::DecisionPoint::fs_access, kRootUid,
                  /*allowed=*/false);
    }
    return r.error();
  }
  const Inode& dir = get(r->node);
  if (!dir.is_dir()) return Errno::enotdir;
  const bool allowed = permits(cred, dir, Access::read);
  if (!allowed) {
    record_read(cred, path, obs::DecisionPoint::fs_access, dir.uid,
                /*allowed=*/false);
    return Errno::eacces;
  }
  if (trace_ != nullptr && !cred.is_root() &&
      is_world_writable_dir(path)) {
    // Listing a world-writable directory exposes every user's file
    // *names* — the paper's documented fs-tmp-names residual.
    trace_->record(obs::DecisionPoint::fs_access, obs::Outcome::allow,
                   cred.uid, cred.egid, dir.uid,
                   obs::ChannelKind::fs_tmp_names, nullptr,
                   [&] { return path; });
  }
  std::vector<DirEntry> out;
  out.reserve(dir.entries.size());
  for (const auto& [name, id] : dir.entries) {
    out.push_back({name, get(id).kind});
  }
  return out;
}

Result<Stat> FileSystem::stat(const Credentials& cred,
                              const std::string& path) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  const Inode& node = get(r->node);
  return Stat{node.id,     node.kind,  node.mode,
              node.uid,    node.gid,   node.size(),
              node.mtime,  node.acl.has_value() && !node.acl->empty(),
              node.nlink};
}

Result<std::string> FileSystem::readlink(const Credentials& cred,
                                         const std::string& path) {
  auto r = resolve(cred, path, /*follow=*/false);
  if (!r) return r.error();
  const Inode& node = get(r->node);
  if (node.kind != FileKind::symlink) return Errno::einval;
  return node.symlink_target;
}

Result<void> FileSystem::access(const Credentials& cred,
                                const std::string& path, Access want) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) {
    if (r.error() == Errno::eacces) {
      record_read(cred, path, obs::DecisionPoint::fs_access, kRootUid,
                  /*allowed=*/false);
    }
    return r.error();
  }
  const Inode& node = get(r->node);
  const bool allowed = permits(cred, node, want);
  record_read(cred, path, obs::DecisionPoint::fs_access, node.uid, allowed);
  if (!allowed) return Errno::eacces;
  return ok_result();
}

Result<void> FileSystem::chmod(const Credentials& cred,
                               const std::string& path, unsigned mode) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!cred.is_root() && cred.uid != node.uid) {
    if (trace_ != nullptr && !cred.is_root()) {
      // Chmod-ing a root-owned home is exactly what the root-owned-homes
      // hardening forbids; any other foreign chmod is plain DAC.
      const bool root_home_block =
          node.uid == kRootUid &&
          channel_for_path(path) == obs::ChannelKind::fs_home_read;
      trace_->record(obs::DecisionPoint::fs_chmod, obs::Outcome::deny,
                     cred.uid, cred.egid, node.uid, channel_for_path(path),
                     root_home_block ? obs::knob::root_owned_homes : nullptr,
                     [&] { return path; });
    }
    return Errno::eperm;
  }
  unsigned effective = chmod_mode(cred, mode);
  if (trace_ != nullptr && !cred.is_root()) {
    const unsigned requested = mode & kModePermMask;
    if (effective != requested &&
        policy_.enforce_smask && policy_.honor_smask) {
      // The smask clamp silently stripped permission bits the caller
      // asked for — a deny of the world-visibility the chmod intended.
      trace_->record(obs::DecisionPoint::fs_chmod, obs::Outcome::deny,
                     cred.uid, cred.egid, node.uid, channel_for_path(path),
                     obs::knob::fs_enforce_smask, [&] { return path; });
    }
  }
  // Linux: a non-root chmod by someone outside the file's group clears
  // setgid (anti-privilege-smuggling rule).
  if (!cred.is_root() && !cred.in_group(node.gid)) {
    effective &= ~kModeSetgid;
  }
  node.mode = effective;
  node.ctime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::chown(const Credentials& cred,
                               const std::string& path, Uid new_owner) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  if (!cred.is_root()) return Errno::eperm;
  if (!users_->user_exists(new_owner)) return Errno::einval;
  Inode& node = get(r->node);
  // Quota accounting follows ownership.
  if (node.kind == FileKind::regular && !node.data.empty()) {
    const auto size = static_cast<std::int64_t>(node.data.size());
    (void)charge_bytes(node.uid, -size, /*enforce=*/false);
    (void)charge_bytes(new_owner, size, /*enforce=*/false);
  }
  node.uid = new_owner;
  node.ctime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::chgrp(const Credentials& cred,
                               const std::string& path, Gid new_group) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!users_->group_exists(new_group)) return Errno::einval;
  if (!cred.is_root()) {
    if (cred.uid != node.uid) return Errno::eperm;
    // Standard Linux rule, which the paper leans on: you can only hand a
    // file to a group you belong to.
    if (!cred.in_group(new_group) &&
        !users_->is_member(cred.uid, new_group)) {
      return Errno::eperm;
    }
    // chgrp by non-root clears setuid/setgid.
    node.mode &= ~(kModeSetuid | kModeSetgid);
  }
  node.gid = new_group;
  node.ctime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::check_acl_entry(const Credentials& cred,
                                         const AclEntry& entry) const {
  if (entry.perm > 7) return Errno::einval;
  if (policy_.restrict_acl && !cred.is_root()) {
    // LLSC ACL-restriction patch: ACLs must not become a bypass of the
    // approved-project-group sharing policy.
    switch (entry.tag) {
      case AclTag::named_user:
        // Granting to another individual user is sharing outside any
        // approved group — blocked. (Self-grants are pointless but legal.)
        if (entry.uid != cred.uid) return Errno::eperm;
        break;
      case AclTag::named_group:
        if (!cred.in_group(entry.gid) &&
            !users_->is_member(cred.uid, entry.gid)) {
          return Errno::eperm;
        }
        break;
      case AclTag::mask:
        break;
    }
  }
  if (entry.tag == AclTag::named_user && !users_->user_exists(entry.uid)) {
    return Errno::einval;
  }
  if (entry.tag == AclTag::named_group &&
      !users_->group_exists(entry.gid)) {
    return Errno::einval;
  }
  return ok_result();
}

void FileSystem::record_acl_verdict(const Credentials& cred,
                                    const std::string& path,
                                    Uid object_owner, const AclEntry& entry,
                                    const char* deny_knob) const {
  if (trace_ == nullptr || cred.is_root()) return;
  // The §IV-C channel is specifically a named-user grant to *another*
  // user (sharing outside any approved group). Self-grants, group and
  // mask entries are not separation events.
  if (entry.tag != AclTag::named_user || entry.uid == cred.uid) return;
  const bool allowed = deny_knob == nullptr;
  // Keep the attribution honest: the restrict-patch knob only applies
  // when the patch is actually on (the same refusal shape can be EINVAL),
  // and the root-owned-homes knob only when the object is a root-owned
  // home (any other non-owner setfacl is plain DAC).
  if (deny_knob == obs::knob::fs_restrict_acl && !policy_.restrict_acl) {
    deny_knob = nullptr;
  }
  if (deny_knob == obs::knob::root_owned_homes &&
      (object_owner != kRootUid ||
       channel_for_path(path) != obs::ChannelKind::fs_home_read)) {
    deny_knob = nullptr;
  }
  trace_->record(obs::DecisionPoint::fs_acl,
                 allowed ? obs::Outcome::allow : obs::Outcome::deny,
                 cred.uid, cred.egid, object_owner,
                 obs::ChannelKind::fs_acl_user_grant,
                 allowed ? nullptr : deny_knob, [&] {
                   return path + " +user:" +
                          std::to_string(entry.uid.value());
                 });
}

Result<void> FileSystem::acl_set(const Credentials& cred,
                                 const std::string& path,
                                 const AclEntry& entry) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!cred.is_root() && cred.uid != node.uid) {
    record_acl_verdict(cred, path, node.uid, entry,
                       obs::knob::root_owned_homes);
    return Errno::eperm;
  }
  if (auto check = check_acl_entry(cred, entry); !check) {
    record_acl_verdict(cred, path, node.uid, entry,
                       obs::knob::fs_restrict_acl);
    return check;
  }
  record_acl_verdict(cred, path, node.uid, entry, nullptr);

  if (!node.acl) node.acl.emplace();
  node.acl->upsert(entry);
  node.ctime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::acl_set_default(const Credentials& cred,
                                         const std::string& dir,
                                         const AclEntry& entry) {
  auto r = resolve(cred, dir, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!node.is_dir()) return Errno::enotdir;
  if (!cred.is_root() && cred.uid != node.uid) {
    record_acl_verdict(cred, dir, node.uid, entry,
                       obs::knob::root_owned_homes);
    return Errno::eperm;
  }
  if (auto check = check_acl_entry(cred, entry); !check) {
    record_acl_verdict(cred, dir, node.uid, entry,
                       obs::knob::fs_restrict_acl);
    return check;
  }
  record_acl_verdict(cred, dir, node.uid, entry, nullptr);

  if (!node.default_acl) node.default_acl.emplace();
  node.default_acl->upsert(entry);
  node.ctime = clock_->now();
  return ok_result();
}

Result<void> FileSystem::acl_remove_default(const Credentials& cred,
                                            const std::string& dir,
                                            AclTag tag, Uid uid, Gid gid) {
  auto r = resolve(cred, dir, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!node.is_dir()) return Errno::enotdir;
  if (!cred.is_root() && cred.uid != node.uid) return Errno::eperm;
  if (!node.default_acl || !node.default_acl->remove(tag, uid, gid)) {
    return Errno::enoent;
  }
  node.ctime = clock_->now();
  return ok_result();
}

Result<Acl> FileSystem::acl_get_default(const Credentials& cred,
                                        const std::string& dir) {
  auto r = resolve(cred, dir, /*follow=*/true);
  if (!r) return r.error();
  const Inode& node = get(r->node);
  if (!node.is_dir()) return Errno::enotdir;
  return node.default_acl.value_or(Acl{});
}

Result<void> FileSystem::acl_remove(const Credentials& cred,
                                    const std::string& path, AclTag tag,
                                    Uid uid, Gid gid) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  Inode& node = get(r->node);
  if (!cred.is_root() && cred.uid != node.uid) return Errno::eperm;
  if (!node.acl || !node.acl->remove(tag, uid, gid)) return Errno::enoent;
  node.ctime = clock_->now();
  return ok_result();
}

Result<Acl> FileSystem::acl_get(const Credentials& cred,
                                const std::string& path) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  const Inode& node = get(r->node);
  return node.acl.value_or(Acl{});
}

Result<DeviceRef> FileSystem::open_device(const Credentials& cred,
                                          const std::string& path,
                                          Access want) {
  auto r = resolve(cred, path, /*follow=*/true);
  if (!r) return r.error();
  const Inode& node = get(r->node);
  if (node.kind != FileKind::chardev) return Errno::enodev;
  const bool allowed = permits(cred, node, want);
  if (trace_ != nullptr && !cred.is_root() &&
      common::starts_with(path, "/dev/nvidia")) {
    // GPU device files are mode/group-gated per allocation (§IV-F): a
    // refusal is the dev-binding knob doing its job.
    trace_->record(obs::DecisionPoint::gpu_dev_access,
                   allowed ? obs::Outcome::allow : obs::Outcome::deny,
                   cred.uid, cred.egid, node.uid, std::nullopt,
                   allowed ? nullptr : obs::knob::gpu_dev_binding,
                   [&] { return path; });
  }
  if (!allowed) return Errno::eacces;
  return *node.device;
}

void FileSystem::for_each(
    const std::function<void(const std::string&, const Inode&)>& visit)
    const {
  // Iterative DFS to avoid recursion limits on deep trees.
  std::vector<std::pair<std::string, InodeId>> stack{{"/", root_}};
  while (!stack.empty()) {
    auto [path, id] = stack.back();
    stack.pop_back();
    const Inode& node = get(id);
    visit(path, node);
    if (node.is_dir()) {
      for (const auto& [name, child] : node.entries) {
        const std::string child_path =
            (path == "/") ? "/" + name : path + "/" + name;
        stack.emplace_back(child_path, child);
      }
    }
  }
}

void MountTable::mount(const std::string& prefix, FileSystem* fs) {
  assert(!prefix.empty() && prefix.front() == '/');
  mounts_.emplace_back(prefix, fs);
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

FileSystem* MountTable::lookup(const std::string& path) const {
  for (const auto& [prefix, fs] : mounts_) {
    if (prefix == "/") return fs;
    if (path == prefix ||
        (path.size() > prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0 &&
         path[prefix.size()] == '/')) {
      return fs;
    }
  }
  return nullptr;
}

std::vector<std::pair<std::string, FileSystem*>> MountTable::mounts() const {
  return mounts_;
}

}  // namespace heus::vfs
