// POSIX access control lists, plus the LLSC kernel-patch restriction
// (paper §IV-C): a user may only grant ACL access to groups they are a
// member of, and may not use ACLs to grant access to arbitrary other
// users — otherwise ACLs would be a trivial bypass of the
// user-private-group sharing policy.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"

namespace heus::vfs {

/// rwx permission triple packed as the low three bits (r=4, w=2, x=1).
using Perm = unsigned;
inline constexpr Perm kPermRead = 4;
inline constexpr Perm kPermWrite = 2;
inline constexpr Perm kPermExec = 1;

enum class AclTag {
  named_user,   ///< u:<uid>:<perm>
  named_group,  ///< g:<gid>:<perm>
  mask,         ///< m::<perm> — caps every named/group entry
};

struct AclEntry {
  AclTag tag;
  Uid uid{};   ///< valid when tag == named_user
  Gid gid{};   ///< valid when tag == named_group
  Perm perm = 0;
};

/// The extended (non-minimal) part of a POSIX ACL. Owner/group/other come
/// from the inode mode bits as usual.
struct Acl {
  std::vector<AclEntry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }

  /// The explicit mask entry if present. When absent the evaluator treats
  /// the mask as unrestrictive, matching setfacl's auto-computed mask
  /// (the union of all group-class entries).
  [[nodiscard]] std::optional<Perm> mask() const;

  [[nodiscard]] std::optional<Perm> named_user(Uid uid) const;
  [[nodiscard]] std::optional<Perm> named_group(Gid gid) const;

  /// Insert-or-replace an entry (by tag+id).
  void upsert(const AclEntry& entry);

  /// Remove an entry; returns false if it was not present.
  bool remove(AclTag tag, Uid uid, Gid gid);
};

}  // namespace heus::vfs
