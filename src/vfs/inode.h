// Inode model for the in-memory POSIX filesystem.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "vfs/acl.h"

namespace heus::vfs {

enum class FileKind { regular, directory, symlink, chardev };

/// Mode bit constants (octal, as everywhere in Unix).
inline constexpr unsigned kModeSetuid = 04000;
inline constexpr unsigned kModeSetgid = 02000;
inline constexpr unsigned kModeSticky = 01000;
inline constexpr unsigned kModePermMask = 07777;

/// Identifies a simulated device special file (e.g. GPU 3 on a node is
/// class "nvidia", index 3).
struct DeviceRef {
  std::string device_class;
  std::uint32_t index = 0;

  friend bool operator==(const DeviceRef&, const DeviceRef&) = default;
};

struct Inode {
  InodeId id{};
  FileKind kind = FileKind::regular;
  unsigned mode = 0644;  ///< low 12 bits: setuid/setgid/sticky + rwxrwxrwx
  Uid uid{};
  Gid gid{};
  common::SimTime mtime{};
  common::SimTime ctime{};

  std::string data;                        ///< regular file payload
  std::map<std::string, InodeId> entries;  ///< directory contents
  std::string symlink_target;              ///< symlink payload
  std::optional<DeviceRef> device;         ///< chardev payload
  std::optional<Acl> acl;                  ///< extended (access) ACL
  std::optional<Acl> default_acl;          ///< directories: inherited ACL
  unsigned nlink = 1;                      ///< hard-link count

  [[nodiscard]] bool is_dir() const { return kind == FileKind::directory; }
  [[nodiscard]] std::size_t size() const {
    return kind == FileKind::directory ? entries.size() : data.size();
  }
};

/// stat(2) result surface.
struct Stat {
  InodeId inode{};
  FileKind kind = FileKind::regular;
  unsigned mode = 0;
  Uid uid{};
  Gid gid{};
  std::size_t size = 0;
  common::SimTime mtime{};
  bool has_acl = false;
  unsigned nlink = 1;
};

}  // namespace heus::vfs
