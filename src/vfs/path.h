// Path handling for the simulated VFS. Paths are absolute, '/'-separated.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace heus::vfs {

inline constexpr std::size_t kMaxNameLen = 255;
inline constexpr std::size_t kMaxSymlinkDepth = 8;

/// Split an absolute path into components, normalising "." and empty
/// segments. ".." is resolved lexically (the simulated VFS has no
/// mount-crossing ".." subtleties to preserve). Returns EINVAL for
/// relative paths, ENAMETOOLONG for oversized components.
Result<std::vector<std::string>> split_path(std::string_view path);

/// Join components back into an absolute path ("/" for empty).
[[nodiscard]] std::string join_path(const std::vector<std::string>& parts);

/// Parent directory of an absolute path ("/a/b" -> "/a", "/a" -> "/").
[[nodiscard]] std::string dirname(std::string_view path);

/// Final component ("/a/b" -> "b", "/" -> "").
[[nodiscard]] std::string basename(std::string_view path);

}  // namespace heus::vfs
