#include "vfs/acl.h"

#include <algorithm>

namespace heus::vfs {

namespace {
bool same_subject(const AclEntry& e, AclTag tag, Uid uid, Gid gid) {
  if (e.tag != tag) return false;
  switch (tag) {
    case AclTag::named_user: return e.uid == uid;
    case AclTag::named_group: return e.gid == gid;
    case AclTag::mask: return true;
  }
  return false;
}
}  // namespace

std::optional<Perm> Acl::mask() const {
  for (const auto& e : entries) {
    if (e.tag == AclTag::mask) return e.perm;
  }
  return std::nullopt;
}

std::optional<Perm> Acl::named_user(Uid uid) const {
  for (const auto& e : entries) {
    if (e.tag == AclTag::named_user && e.uid == uid) return e.perm;
  }
  return std::nullopt;
}

std::optional<Perm> Acl::named_group(Gid gid) const {
  for (const auto& e : entries) {
    if (e.tag == AclTag::named_group && e.gid == gid) return e.perm;
  }
  return std::nullopt;
}

void Acl::upsert(const AclEntry& entry) {
  for (auto& e : entries) {
    if (same_subject(e, entry.tag, entry.uid, entry.gid)) {
      e.perm = entry.perm;
      return;
    }
  }
  entries.push_back(entry);
}

bool Acl::remove(AclTag tag, Uid uid, Gid gid) {
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const AclEntry& e) {
                           return same_subject(e, tag, uid, gid);
                         });
  if (it == entries.end()) return false;
  entries.erase(it);
  return true;
}

}  // namespace heus::vfs
