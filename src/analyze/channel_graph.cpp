#include "analyze/channel_graph.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "fed/breaker_lifecycle.h"
#include "net/flow_lifecycle.h"
#include "portal/session_lifecycle.h"
#include "sched/job_lifecycle.h"

namespace heus::analyze {

using core::SeparationPolicy;
using obs::ChannelKind;

const char* to_string(PrincipalClass cls) {
  switch (cls) {
    case PrincipalClass::unprivileged: return "unprivileged";
    case PrincipalClass::support_staff: return "support-staff";
    case PrincipalClass::operator_role: return "operator";
    case PrincipalClass::project_peer: return "project-peer";
  }
  return "?";
}

TopologyFacts facts_for(PrincipalClass cls, TopologyFacts base) {
  switch (cls) {
    case PrincipalClass::unprivileged:
      break;
    case PrincipalClass::support_staff:
      base.observer_support_staff = true;
      break;
    case PrincipalClass::operator_role:
      base.observer_operator = true;
      break;
    case PrincipalClass::project_peer:
      base.shared_service_group = true;
      break;
  }
  return base;
}

const char* to_string(Vantage v) {
  switch (v) {
    case Vantage::login_shell: return "login-shell";
    case Vantage::victim_node: return "victim-node";
    case Vantage::portal_session: return "portal-session";
    case Vantage::fed_gateway: return "fed-gateway";
    case Vantage::victim_service: return "victim-service";
    case Vantage::victim_files: return "victim-files";
    case Vantage::victim_process_info: return "victim-process-info";
    case Vantage::victim_sched_info: return "victim-sched-info";
    case Vantage::victim_gpu_residue: return "victim-gpu-residue";
  }
  return "?";
}

bool is_asset(Vantage v) {
  switch (v) {
    case Vantage::victim_service:
    case Vantage::victim_files:
    case Vantage::victim_process_info:
    case Vantage::victim_sched_info:
    case Vantage::victim_gpu_residue:
      return true;
    default:
      return false;
  }
}

const char* to_string(EdgeClass cls) {
  switch (cls) {
    case EdgeClass::open: return "open";
    case EdgeClass::residual: return "residual";
    case EdgeClass::structural: return "structural";
  }
  return "?";
}

namespace {

/// Co-location is a stance, not a leak: with nodes shared, the
/// adversary's own 1-task job lands beside the victim's.
bool coloc_present(const SeparationPolicy& p) {
  return p.sharing == sched::SharingPolicy::shared;
}

EdgeSpec chan(EdgeId id, const char* mechanism, const char* layer,
              Vantage from, Vantage to, ChannelKind channel,
              const lifecycle::MachineDef* lc = nullptr) {
  EdgeSpec e;
  e.id = id;
  e.mechanism = mechanism;
  e.layer = layer;
  e.from = from;
  e.to = to;
  e.channel = channel;
  e.lifecycle = lc;
  return e;
}

EdgeSpec structural(EdgeId id, const char* mechanism, const char* layer,
                    Vantage from, Vantage to,
                    bool (*present)(const SeparationPolicy&) = nullptr) {
  EdgeSpec e;
  e.id = id;
  e.mechanism = mechanism;
  e.layer = layer;
  e.from = from;
  e.to = to;
  e.structurally_present = present;
  return e;
}

std::vector<EdgeSpec> make_catalog() {
  using V = Vantage;
  const lifecycle::MachineDef* flow = &net::flow_machine();
  const lifecycle::MachineDef* job = &sched::job_machine();
  const lifecycle::MachineDef* session = &portal::session_machine();
  const lifecycle::MachineDef* breaker = &fed::breaker_machine();

  std::vector<EdgeSpec> out;
  // Footholds: reaching the victim's compute node.
  out.push_back(chan(EdgeId::ssh_gate, "ssh to victim's node", "simos",
                     V::login_shell, V::victim_node,
                     ChannelKind::ssh_foreign_node));
  out.push_back(structural(EdgeId::colocation, "co-scheduled job",
                           "sched", V::login_shell, V::victim_node,
                           &coloc_present));
  // Scheduler query surface.
  out.push_back(chan(EdgeId::sched_queue, "squeue", "sched",
                     V::login_shell, V::victim_sched_info,
                     ChannelKind::scheduler_queue));
  out.push_back(chan(EdgeId::sched_accounting, "sacct", "sched",
                     V::login_shell, V::victim_sched_info,
                     ChannelKind::scheduler_accounting));
  out.push_back(chan(EdgeId::sched_usage, "sreport", "sched",
                     V::login_shell, V::victim_sched_info,
                     ChannelKind::scheduler_usage));
  // Network reach to the victim's service.
  out.push_back(chan(EdgeId::tcp_direct, "tcp connect", "net",
                     V::login_shell, V::victim_service,
                     ChannelKind::tcp_cross_user, flow));
  out.push_back(chan(EdgeId::udp_direct, "udp flow", "net",
                     V::login_shell, V::victim_service,
                     ChannelKind::udp_cross_user, flow));
  out.push_back(chan(EdgeId::rdma_tcp, "rdma qp via tcp", "net",
                     V::login_shell, V::victim_service,
                     ChannelKind::rdma_tcp_setup));
  out.push_back(chan(EdgeId::rdma_cm, "rdma qp via ib cm", "net",
                     V::login_shell, V::victim_service,
                     ChannelKind::rdma_native_cm));
  out.push_back(chan(EdgeId::uds_login, "abstract uds", "net",
                     V::login_shell, V::victim_service,
                     ChannelKind::abstract_uds));
  // Portal chain.
  out.push_back(structural(EdgeId::portal_auth, "portal login",
                           "portal", V::login_shell,
                           V::portal_session));
  out.push_back(chan(EdgeId::portal_forward, "portal forward", "portal",
                     V::portal_session, V::victim_service,
                     ChannelKind::portal_foreign_app, session));
  // Filesystem surface from the login node.
  out.push_back(chan(EdgeId::home_read, "world-chmod'ed home file",
                     "vfs", V::login_shell, V::victim_files,
                     ChannelKind::fs_home_read));
  out.push_back(chan(EdgeId::acl_grant, "setfacl user grant", "vfs",
                     V::login_shell, V::victim_files,
                     ChannelKind::fs_acl_user_grant));
  out.push_back(chan(EdgeId::tmp_names, "/tmp file names", "vfs",
                     V::login_shell, V::victim_files,
                     ChannelKind::fs_tmp_names));
  out.push_back(chan(EdgeId::tmp_content_login, "/tmp content (login)",
                     "vfs", V::login_shell, V::victim_files,
                     ChannelKind::fs_tmp_content));
  out.push_back(chan(EdgeId::devshm_login, "/dev/shm content (login)",
                     "vfs", V::login_shell, V::victim_files,
                     ChannelKind::fs_devshm_content));
  // procfs surface from the login node.
  out.push_back(chan(EdgeId::procfs_list_login, "procfs list (login)",
                     "simos", V::login_shell, V::victim_process_info,
                     ChannelKind::procfs_process_list));
  out.push_back(chan(EdgeId::procfs_cmdline_login,
                     "procfs cmdline (login)", "simos", V::login_shell,
                     V::victim_process_info,
                     ChannelKind::procfs_cmdline));
  // The multi-hop payoff: the same local surfaces *from the victim's
  // node*, reachable only after ssh_gate or colocation.
  out.push_back(chan(EdgeId::tmp_content_node, "/tmp content (node)",
                     "vfs", V::victim_node, V::victim_files,
                     ChannelKind::fs_tmp_content));
  out.push_back(chan(EdgeId::devshm_node, "/dev/shm content (node)",
                     "vfs", V::victim_node, V::victim_files,
                     ChannelKind::fs_devshm_content));
  out.push_back(chan(EdgeId::procfs_list_node, "procfs list (node)",
                     "simos", V::victim_node, V::victim_process_info,
                     ChannelKind::procfs_process_list));
  out.push_back(chan(EdgeId::procfs_cmdline_node,
                     "procfs cmdline (node)", "simos", V::victim_node,
                     V::victim_process_info,
                     ChannelKind::procfs_cmdline));
  out.push_back(chan(EdgeId::uds_node, "abstract uds (node)", "net",
                     V::victim_node, V::victim_service,
                     ChannelKind::abstract_uds));
  // Accelerators.
  out.push_back(chan(EdgeId::gpu_residue, "stale gpu memory", "gpu",
                     V::login_shell, V::victim_gpu_residue,
                     ChannelKind::gpu_residue, job));
  // Federation: the WAN hop is structurally open on a healthy link (a
  // partition severs it dynamically — fed.fail_closed / fed.breaker);
  // the relayed operation is then admitted by the *enforcing* cluster's
  // own UBF/portal, exactly like a local flow.
  {
    EdgeSpec gw = structural(EdgeId::fed_gateway, "federation gateway",
                             "fed", Vantage::login_shell,
                             Vantage::fed_gateway);
    gw.cross_cluster = true;
    gw.wan_knob = obs::knob::fed_fail_closed;
    out.push_back(gw);
  }
  {
    EdgeSpec fc = chan(EdgeId::fed_connect, "federated connect", "fed",
                       Vantage::fed_gateway, Vantage::victim_service,
                       ChannelKind::tcp_cross_user, breaker);
    fc.cross_cluster = true;
    out.push_back(fc);
  }
  {
    EdgeSpec fp = chan(EdgeId::fed_portal, "federated portal forward",
                       "fed", Vantage::fed_gateway, Vantage::victim_service,
                       ChannelKind::portal_foreign_app, breaker);
    fp.cross_cluster = true;
    out.push_back(fp);
  }
  return out;
}

/// Presence of one catalogue entry under the enforcing policy.
bool edge_present(const StaticAnalyzer& analyzer, const EdgeSpec& spec,
                  const SeparationPolicy& enforcing) {
  if (spec.channel) {
    return is_crossable(analyzer.verdict(enforcing, *spec.channel));
  }
  if (spec.structurally_present != nullptr) {
    return spec.structurally_present(enforcing);
  }
  return true;
}

}  // namespace

std::span<const EdgeSpec> edge_catalog() {
  static const std::vector<EdgeSpec> kCatalog = make_catalog();
  return kCatalog;
}

const EdgeSpec* find_edge_spec(EdgeId id) {
  for (const EdgeSpec& e : edge_catalog()) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

ChannelGraph ChannelGraph::build(std::span<const ClusterSpec> clusters,
                                 PrincipalClass cls,
                                 TopologyFacts base_facts, bool attribute) {
  assert(!clusters.empty());
  ChannelGraph g;
  g.clusters_.assign(clusters.begin(), clusters.end());
  g.principal_ = cls;
  g.facts_ = facts_for(cls, base_facts);
  const StaticAnalyzer analyzer(g.facts_);

  g.nodes_.reserve(clusters.size() * kVantageCount);
  for (std::uint32_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t v = 0; v < kVantageCount; ++v) {
      g.nodes_.push_back(GraphNode{c, static_cast<Vantage>(v)});
    }
  }

  auto add_edge = [&](const EdgeSpec& spec, std::uint32_t from_cluster,
                      std::uint32_t to_cluster,
                      std::uint32_t enforcing) {
    GraphEdge e;
    e.from = g.node_index(from_cluster, spec.from);
    e.to = g.node_index(to_cluster, spec.to);
    e.spec = &spec;
    e.enforcing_cluster = enforcing;
    const SeparationPolicy& policy = g.clusters_[enforcing].policy;
    e.present = edge_present(analyzer, spec, policy);
    if (spec.channel) {
      const Verdict v = analyzer.verdict(policy, *spec.channel);
      e.cls = v == Verdict::residual ? EdgeClass::residual
              : v == Verdict::open   ? EdgeClass::open
                                     : EdgeClass::structural;
    } else {
      e.cls = EdgeClass::structural;
    }
    if (attribute) {
      for (const KnobSpec& k : knobs()) {
        const SeparationPolicy flipped = flip_knob(policy, k);
        if (edge_present(analyzer, spec, flipped) != e.present) {
          e.responsible_knobs.emplace_back(k.name);
        }
      }
    }
    g.edges_.push_back(std::move(e));
  };

  for (const EdgeSpec& spec : edge_catalog()) {
    if (!spec.cross_cluster) {
      for (std::uint32_t c = 0; c < clusters.size(); ++c) {
        add_edge(spec, c, c, c);
      }
      continue;
    }
    if (spec.from == Vantage::login_shell) {
      // The WAN hop itself: one instance per ordered (home, peer) pair.
      for (std::uint32_t i = 0; i < clusters.size(); ++i) {
        for (std::uint32_t j = 0; j < clusters.size(); ++j) {
          if (i != j) add_edge(spec, i, j, j);
        }
      }
    } else if (clusters.size() > 1) {
      // Relayed operations out of a peer's gateway: one instance per
      // enforcing cluster.
      for (std::uint32_t j = 0; j < clusters.size(); ++j) {
        add_edge(spec, j, j, j);
      }
    }
  }
  return g;
}

std::uint32_t ChannelGraph::node_index(std::uint32_t cluster,
                                       Vantage v) const {
  const std::uint32_t idx =
      cluster * static_cast<std::uint32_t>(kVantageCount) +
      static_cast<std::uint32_t>(v);
  assert(idx < nodes_.size());
  return idx;
}

std::vector<std::uint32_t> ChannelGraph::reachable() const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> queue{start_node()};
  seen[start_node()] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t at = queue[head];
    for (const GraphEdge& e : edges_) {
      if (!e.present || e.from != at || seen[e.to]) continue;
      seen[e.to] = true;
      queue.push_back(e.to);
    }
  }
  std::sort(queue.begin(), queue.end());
  return queue;
}

std::string ChannelGraph::node_label(std::uint32_t index) const {
  const GraphNode& n = node(index);
  return clusters_.at(n.cluster).name + "/" + to_string(n.vantage);
}

std::vector<obs::ChannelKind> reachable_openings(
    const lifecycle::MachineDef& def,
    const core::SeparationPolicy& policy) {
  const lifecycle::PolicyView view = view_of(policy);
  std::vector<bool> reachable(def.states.size(), false);
  reachable[def.initial] = true;
  std::vector<ChannelKind> opened;
  // Fixpoint over states: events are environment-driven, policy guards
  // pinned by `policy`, environment guards explored both ways — the
  // reachability checker's exploration rule. The shipped tables keep
  // rows for one (state, event) on distinct guard outcomes, so
  // first-match shadowing cannot hide a row from this walk (the
  // checker proves that separately).
  for (bool changed = true; changed;) {
    changed = false;
    for (const lifecycle::Transition& t : def.transitions) {
      if (!reachable[t.from]) continue;
      bool fires = true;
      if (t.guard != lifecycle::kNoGuard) {
        const lifecycle::Guard& guard = def.guards[t.guard];
        if (guard.kind == lifecycle::GuardKind::policy) {
          fires = guard.eval(view) == t.when;
        }
      }
      if (!fires) continue;
      if (!reachable[t.to]) {
        reachable[t.to] = true;
        changed = true;
      }
      for (std::uint8_t i = 0; i < t.opens_channels.count; ++i) {
        const ChannelKind kind = t.opens_channels.channel[i];
        if (std::find(opened.begin(), opened.end(), kind) ==
            opened.end()) {
          opened.push_back(kind);
          changed = true;
        }
      }
    }
  }
  std::sort(opened.begin(), opened.end());
  return opened;
}

}  // namespace heus::analyze
