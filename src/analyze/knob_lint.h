// Dead-knob lint (ISSUE 8 satellite): every knob string in
// src/obs/taxonomy.h must still be wired to BOTH ends of the
// attribution contract —
//
//  (a) the static side: the knob is in the policy-space registry (or is
//      a federation deployment knob) and flipping it changes some
//      analyzer verdict or ChannelGraph edge;
//  (b) the dynamic side: at least one Decision-recording enforcement
//      site names the knob, proven by a scripted census run against a
//      live hardened cluster pair (audit probes plus the enforcement
//      scenarios the audit alone does not reach: foreign /dev opens,
//      group-peer admits, whole-node placement refusals, partitioned
//      federation ops).
//
// A knob that fails either end is drift: either a misspelled/orphaned
// name, or enforcement that silently stopped attributing. Three knobs
// are documented exemptions — two on the enforcement side, whose
// effect is the *absence* of another knob's decision, and one on the
// static side, whose hardened surface the channel census does not
// model (see knob_lint.cpp). The lint runs inside `heus-lint --paths
// --gate`, so CI catches drift at the same place it proves the path
// closure.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace heus::analyze {

struct KnobEvidence {
  std::string knob;
  bool in_registry = false;   ///< policy-space KnobSpec exists
  bool fed_knob = false;      ///< federation deployment knob
  bool analyzer_referenced = false;  ///< flips a verdict or an edge
  bool analyzer_exempt = false;
  std::string analyzer_exemption_reason;
  std::vector<std::string> decision_points;  ///< census observations
  bool enforcement_exempt = false;
  std::string exemption_reason;
};

struct KnobLintReport {
  std::vector<KnobEvidence> knobs;
  std::vector<std::string> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Lint the shipped name list (obs::all_knob_names()).
[[nodiscard]] KnobLintReport knob_lint();

/// Lint an explicit name list — the mutation tests feed misspelled and
/// missing names through this.
[[nodiscard]] KnobLintReport knob_lint(
    std::span<const char* const> names);

[[nodiscard]] std::string knob_lint_to_markdown(
    const KnobLintReport& report);
[[nodiscard]] std::string knob_lint_to_json(const KnobLintReport& report);

}  // namespace heus::analyze
