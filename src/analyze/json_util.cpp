#include "analyze/json_util.h"

#include <cstdio>
#include <fstream>

#include "common/strings.h"

namespace heus::analyze {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += common::strformat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(items[i]) + "\"";
  }
  return out + "]";
}

bool JsonSink::parse(const std::string& arg) {
  if (arg == "--json") {
    enabled_ = true;
    path_.clear();
    return true;
  }
  if (arg.rfind("--json=", 0) == 0) {
    enabled_ = true;
    path_ = arg.substr(7);
    return true;
  }
  return false;
}

bool JsonSink::write(const std::string& json) const {
  if (!enabled_) return true;
  if (path_.empty()) {
    std::fputs(json.c_str(), stdout);
    if (!json.empty() && json.back() != '\n') std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path_);
  if (!out) return false;
  out << json;
  if (!json.empty() && json.back() != '\n') out << '\n';
  return out.good();
}

}  // namespace heus::analyze
