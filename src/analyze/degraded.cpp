#include "analyze/degraded.h"

#include "analyze/policy_space.h"
#include "common/strings.h"

namespace heus::analyze {

const char* to_string(DegradedBehavior b) {
  switch (b) {
    case DegradedBehavior::already_crossable: return "already-crossable";
    case DegradedBehavior::locally_enforced: return "locally-enforced";
    case DegradedBehavior::fail_closed_dependent:
      return "fail-closed-dependent";
  }
  return "?";
}

std::size_t DegradedReport::count(DegradedBehavior b) const {
  std::size_t n = 0;
  for (const DegradedFinding& f : findings) {
    if (f.behavior == b) ++n;
  }
  return n;
}

DegradedReport degraded_census(const StaticAnalyzer& analyzer,
                               const core::SeparationPolicy& policy) {
  DegradedReport report;
  report.policy = policy;

  // The enforcement that an ident outage suspends: the UBF's allow path.
  // With the responder down, a fail-closed UBF admits nothing — which
  // keeps channels closed — so the question "what would open if that
  // stand-in were gone" is answered by the verdict with ubf at baseline.
  const KnobSpec* ubf = find_knob("ubf");
  core::SeparationPolicy without_ubf = policy;
  if (ubf != nullptr) ubf->set(without_ubf, false);

  for (core::ChannelKind kind : core::kAllChannels) {
    DegradedFinding f;
    f.kind = kind;
    const Verdict healthy = analyzer.verdict(policy, kind);
    if (is_crossable(healthy)) {
      f.behavior = DegradedBehavior::already_crossable;
      f.note = healthy == Verdict::residual
                   ? "documented residual; faults change nothing"
                   : "open even when healthy; fix the policy first";
    } else if (is_crossable(analyzer.verdict(without_ubf, kind))) {
      f.behavior = DegradedBehavior::fail_closed_dependent;
      f.note =
          "closed by the UBF ident path; under ident/network faults it "
          "stays closed only by dropping flows (availability casualty)";
    } else {
      f.behavior = DegradedBehavior::locally_enforced;
      f.note =
          "closed by state the enforcer holds locally; ident/network "
          "faults cannot reopen or degrade it";
    }
    report.findings.push_back(std::move(f));
  }

  // Federation remote operations (src/fed): each one crosses the WAN
  // link, so link faults suspend it like ident outages suspend the UBF.
  // Whether a denial there still buys separation depends on the same
  // knob: with ubf off, the enforcing cluster admits cross-user flows
  // even when healthy, and the link's fail-closed funnel only costs
  // availability.
  const bool ubf_on = ubf == nullptr || ubf->is_hardened(policy);
  auto fed_row = [&report](const char* op, bool separating,
                           const char* closed_note, const char* open_note) {
    FedDegradedFinding f;
    f.operation = op;
    f.behavior = separating ? DegradedBehavior::fail_closed_dependent
                            : DegradedBehavior::already_crossable;
    f.note = separating ? closed_note : open_note;
    report.federation.push_back(std::move(f));
  };
  fed_row("remote-ident", true,
          "identity verified with the home cluster per operation; on "
          "partition the retry budget then the breaker deny (knobs "
          "fed.fail_closed / fed.breaker), never a relayed claim",
          "");
  fed_row("federated-connect", ubf_on,
          "verification plus the peer's own UBF, both remote-query "
          "paths; an open breaker fast-fails before any link traffic",
          "peer's ubf is off: cross-user flows are admitted even when "
          "the link is healthy; fix the policy before the WAN posture "
          "matters");
  fed_row("portal-forward", ubf_on,
          "forwarded hop re-checks app ownership on the serving "
          "cluster; link faults deny the forward, they cannot skip the "
          "ownership check",
          "peer's ubf is off: the forwarded hop's cross-user deny "
          "evaporates with it");
  fed_row("dtn-transfer", true,
          "each filesystem half runs under its own cluster's DAC "
          "(locally enforced); only the link move fails closed, and "
          "the staging buffer drains on every exit path",
          "");
  return report;
}

std::string to_markdown(const DegradedReport& report) {
  std::string out;
  out += "# Degraded-mode channel census\n\n";
  out += "Policy: " + describe_policy(report.policy) + "\n\n";
  out += common::strformat(
      "Channels: %zu locally-enforced, %zu fail-closed-dependent, %zu "
      "already-crossable\n\n",
      report.count(DegradedBehavior::locally_enforced),
      report.count(DegradedBehavior::fail_closed_dependent),
      report.count(DegradedBehavior::already_crossable));
  out += "| channel | § | behavior under faults | note |\n";
  out += "|---|---|---|---|\n";
  for (const DegradedFinding& f : report.findings) {
    out += common::strformat("| %s | %s | %s | %s |\n",
                             core::to_string(f.kind),
                             core::channel_section(f.kind),
                             to_string(f.behavior), f.note.c_str());
  }
  out +=
      "\nfail-closed-dependent channels never leak under faults — the UBF "
      "drops what it cannot attribute — but every drop is a legitimate-"
      "traffic casualty; they are where fault rate buys availability "
      "loss (bench E18).\n";

  out += "\n## Federation remote operations (WAN link faults)\n\n";
  out += "| operation | behavior under link faults | note |\n";
  out += "|---|---|---|\n";
  for (const FedDegradedFinding& f : report.federation) {
    out += common::strformat("| %s | %s | %s |\n", f.operation.c_str(),
                             to_string(f.behavior), f.note.c_str());
  }
  out +=
      "\nEvery federated operation crosses the link behind bounded "
      "retries and a per-peer circuit breaker; partitions convert into "
      "typed denials with fed_admission Decisions, never into relayed "
      "unverified identities (bench E23).\n";
  return out;
}

}  // namespace heus::analyze
