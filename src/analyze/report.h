// Report rendering for AnalysisReport: markdown (the security-review
// artifact, in the style of LeakageAuditor::to_markdown) and JSON (the
// machine-readable pre-submit-gate output heus-lint emits).
#pragma once

#include <string>

#include "analyze/analyzer.h"

namespace heus::analyze {

/// Markdown census table plus per-channel hardening suggestions.
[[nodiscard]] std::string to_markdown(const AnalysisReport& report);

/// Stable JSON document: policy knobs, facts, per-channel findings with
/// explanations/responsible knobs/minimal hardening, and summary counts.
[[nodiscard]] std::string to_json(const AnalysisReport& report);

}  // namespace heus::analyze
