#include "analyze/reachability.h"

#include <algorithm>
#include <map>
#include <set>

#include "analyze/json_util.h"
#include "analyze/policy_space.h"
#include "common/strings.h"
#include "container/entry_lifecycle.h"
#include "fed/breaker_lifecycle.h"
#include "net/flow_lifecycle.h"
#include "portal/session_lifecycle.h"
#include "sched/job_lifecycle.h"
#include "xfer/transfer_lifecycle.h"

namespace heus::analyze {

using common::strformat;
using lifecycle::Guard;
using lifecycle::GuardKind;
using lifecycle::kNoGuard;
using lifecycle::MachineDef;
using lifecycle::Transition;

lifecycle::PolicyView view_of(const core::SeparationPolicy& p) {
  lifecycle::PolicyView v;
  v.hidepid = static_cast<std::uint8_t>(p.hidepid);
  v.hidepid_gid_exemption = p.hidepid_gid_exemption;
  v.private_data_jobs = p.private_data.jobs;
  v.private_data_accounting = p.private_data.accounting;
  v.private_data_usage = p.private_data.usage;
  v.sharing = static_cast<std::uint8_t>(p.sharing);
  v.pam_slurm = p.pam_slurm;
  v.fs_enforce_smask = p.fs.enforce_smask;
  v.fs_honor_smask = p.fs.honor_smask;
  v.fs_restrict_acl = p.fs.restrict_acl;
  v.root_owned_homes = p.root_owned_homes;
  v.ubf = p.ubf;
  v.ubf_group_peers = p.ubf_group_peers;
  v.gpu_dev_binding = p.gpu_dev_binding;
  v.gpu_epilog_scrub = p.gpu_epilog_scrub;
  return v;
}

std::span<const MachineDef* const> lifecycle_machines() {
  static const MachineDef* const kMachines[] = {
      &net::flow_machine(),        &sched::job_machine(),
      &xfer::transfer_machine(),   &portal::session_machine(),
      &container::entry_machine(), &fed::breaker_machine(),
  };
  return kMachines;
}

const char* to_string(ReachFindingKind kind) {
  switch (kind) {
    case ReachFindingKind::bad_guard: return "bad-guard";
    case ReachFindingKind::unknown_knob: return "unknown-knob";
    case ReachFindingKind::guard_knob_mismatch: return "guard-knob-mismatch";
    case ReachFindingKind::shadowed_transition: return "shadowed-transition";
    case ReachFindingKind::unreachable_state: return "unreachable-state";
    case ReachFindingKind::dead_transition: return "dead-transition";
    case ReachFindingKind::separation_opening: return "separation-opening";
  }
  return "?";
}

namespace {

/// Per-machine working set for one check_all() sweep.
struct MachineScan {
  const MachineDef* def = nullptr;
  std::vector<std::size_t> policy_guards;  ///< guard indices, kind==policy
  std::vector<std::size_t> env_guards;     ///< guard indices, kind==env
  std::vector<std::size_t> env_slot;       ///< guard index -> env bit (or ~0)
  std::vector<obs::ChannelKind> annotated; ///< distinct opened channels
  /// Guards the structural pass disqualified; skipped by the agreement
  /// rule so one malformed guard yields one finding, not thousands.
  std::vector<bool> guard_bad;

  // Sweep accumulators.
  std::vector<bool> fired;    ///< row ever selected, any policy/env
  std::vector<bool> reached;  ///< state ever reached, any policy/env
  std::uint64_t triples = 0;
  std::set<std::uint64_t> signatures;

  // Guard/knob agreement: per policy guard, outcome seen per knob token
  // (-1 unset), plus the set of outcomes seen overall.
  std::vector<std::map<std::string, int>> outcome_by_token;
  std::vector<std::set<bool>> outcomes_seen;
  std::vector<bool> mismatch_reported;

  // separation_opening dedup: (row index << 8) | channel.
  std::set<std::uint64_t> openings_reported;
};

void structural_pass(MachineScan& scan, std::vector<ReachFinding>& findings) {
  const MachineDef& def = *scan.def;
  scan.guard_bad.assign(def.guards.size(), false);
  for (std::size_t g = 0; g < def.guards.size(); ++g) {
    const Guard& guard = def.guards[g];
    if (guard.kind == GuardKind::policy) {
      if (guard.eval == nullptr || guard.knob == nullptr) {
        scan.guard_bad[g] = true;
        findings.push_back(
            {ReachFindingKind::bad_guard, def.name,
             strformat("policy guard `%s` lacks %s", guard.name,
                       guard.eval == nullptr ? "a predicate" : "a knob"),
             guard.knob != nullptr ? guard.knob : "", "", -1, -1});
      } else if (find_knob(guard.knob) == nullptr) {
        scan.guard_bad[g] = true;
        findings.push_back(
            {ReachFindingKind::unknown_knob, def.name,
             strformat("policy guard `%s` names unknown knob `%s`",
                       guard.name, guard.knob),
             guard.knob, "", -1, -1});
      } else {
        scan.policy_guards.push_back(g);
      }
    } else {
      if (guard.eval != nullptr || guard.knob != nullptr) {
        scan.guard_bad[g] = true;
        findings.push_back(
            {ReachFindingKind::bad_guard, def.name,
             strformat("environment guard `%s` carries %s", guard.name,
                       guard.eval != nullptr ? "a policy predicate"
                                             : "a knob"),
             guard.knob != nullptr ? guard.knob : "", "", -1, -1});
      }
      scan.env_slot.resize(def.guards.size(), ~std::size_t{0});
      scan.env_slot[g] = scan.env_guards.size();
      scan.env_guards.push_back(g);
    }
  }
  scan.env_slot.resize(def.guards.size(), ~std::size_t{0});

  // Shadowing: group rows by (from, event); for every guard-outcome
  // assignment over the guards the group consults, find the first match.
  // A row no assignment selects can never fire, whatever the policy.
  for (std::size_t i = 0; i < def.transitions.size(); ++i) {
    const Transition& row = def.transitions[i];
    std::vector<std::size_t> group;  // row indices, table order
    std::vector<std::size_t> consulted;
    for (std::size_t j = 0; j < def.transitions.size(); ++j) {
      const Transition& t = def.transitions[j];
      if (t.from != row.from || t.event != row.event) continue;
      group.push_back(j);
      if (t.guard != kNoGuard &&
          std::find(consulted.begin(), consulted.end(),
                    static_cast<std::size_t>(t.guard)) == consulted.end()) {
        consulted.push_back(t.guard);
      }
    }
    if (group.front() == i) continue;  // report once, at later rows only
    bool selectable = false;
    for (std::uint32_t bits = 0; bits < (1u << consulted.size()); ++bits) {
      auto outcome = [&](const Guard& g) {
        const std::size_t gi = static_cast<std::size_t>(&g - def.guards.data());
        for (std::size_t k = 0; k < consulted.size(); ++k) {
          if (consulted[k] == gi) return ((bits >> k) & 1u) != 0;
        }
        return false;
      };
      const Transition* hit =
          lifecycle::resolve(def, row.from, row.event, outcome);
      if (hit == &row) {
        selectable = true;
        break;
      }
    }
    if (!selectable) {
      findings.push_back(
          {ReachFindingKind::shadowed_transition, def.name,
           strformat("row %zu (%s) is shadowed by an earlier row for the "
                     "same (state, event)",
                     i, lifecycle::describe(def, row).c_str()),
           "", "", static_cast<int>(i), -1});
    }
  }

  for (const Transition& t : def.transitions) {
    for (std::uint8_t c = 0; c < t.opens_channels.count; ++c) {
      const obs::ChannelKind ch = t.opens_channels.channel[c];
      if (std::find(scan.annotated.begin(), scan.annotated.end(), ch) ==
          scan.annotated.end()) {
        scan.annotated.push_back(ch);
      }
    }
  }

  scan.fired.assign(def.transitions.size(), false);
  scan.reached.assign(def.states.size(), false);
  scan.outcome_by_token.resize(def.guards.size());
  scan.outcomes_seen.resize(def.guards.size());
  scan.mismatch_reported.assign(def.guards.size(), false);
}

void sweep_policy(MachineScan& scan, const core::SeparationPolicy& policy,
                  const lifecycle::PolicyView& view,
                  const StaticAnalyzer& analyzer,
                  std::vector<ReachFinding>& findings) {
  const MachineDef& def = *scan.def;

  // Pin the policy guards; check each against its declared knob.
  std::vector<bool> pinned(def.guards.size(), false);
  for (const std::size_t g : scan.policy_guards) {
    const Guard& guard = def.guards[g];
    const bool outcome = guard.eval(view);
    pinned[g] = outcome;
    if (scan.mismatch_reported[g]) continue;
    const KnobSpec* spec = find_knob(guard.knob);
    const std::string token = knob_value(policy, *spec);
    auto [it, inserted] =
        scan.outcome_by_token[g].try_emplace(token, outcome ? 1 : 0);
    if (!inserted && it->second != (outcome ? 1 : 0)) {
      scan.mismatch_reported[g] = true;
      findings.push_back(
          {ReachFindingKind::guard_knob_mismatch, def.name,
           strformat("policy guard `%s` changes outcome while `%s=%s` is "
                     "fixed — it depends on some other knob",
                     guard.name, guard.knob, token.c_str()),
           guard.knob, describe_policy(policy), -1, -1});
    }
    scan.outcomes_seen[g].insert(outcome);
  }

  // Exhaustive walk: BFS over states; per state × event, try every
  // environment-guard assignment (policy guards stay pinned).
  const std::size_t env_count = scan.env_guards.size();
  std::vector<bool> fired_here(def.transitions.size(), false);
  std::vector<bool> seen(def.states.size(), false);
  std::vector<lifecycle::StateId> frontier{def.initial};
  seen[def.initial] = true;
  std::uint64_t signature = 0;
  for (std::size_t k = 0; k < scan.policy_guards.size(); ++k) {
    signature |= static_cast<std::uint64_t>(pinned[scan.policy_guards[k]])
                 << k;
  }
  while (!frontier.empty()) {
    const lifecycle::StateId s = frontier.back();
    frontier.pop_back();
    scan.reached[s] = true;
    for (std::size_t e = 0; e < def.events.size(); ++e) {
      for (std::uint32_t env = 0; env < (1u << env_count); ++env) {
        auto outcome = [&](const Guard& g) {
          const std::size_t gi =
              static_cast<std::size_t>(&g - def.guards.data());
          if (def.guards[gi].kind == GuardKind::policy) {
            return static_cast<bool>(pinned[gi]);
          }
          return ((env >> scan.env_slot[gi]) & 1u) != 0;
        };
        const Transition* t = lifecycle::resolve(
            def, s, static_cast<lifecycle::EventId>(e), outcome);
        if (t == nullptr) continue;
        const std::size_t idx =
            static_cast<std::size_t>(t - def.transitions.data());
        scan.fired[idx] = true;
        if (!fired_here[idx]) {
          fired_here[idx] = true;
          ++scan.triples;
        }
        if (!seen[t->to]) {
          seen[t->to] = true;
          frontier.push_back(t->to);
        }
        for (std::uint8_t c = 0; c < t->opens_channels.count; ++c) {
          const obs::ChannelKind ch = t->opens_channels.channel[c];
          if (analyzer.verdict(policy, ch) != Verdict::closed) continue;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(idx) << 8) |
              static_cast<std::uint64_t>(ch);
          if (!scan.openings_reported.insert(key).second) continue;
          std::string knob =
              t->guard != kNoGuard && def.guards[t->guard].knob != nullptr
                  ? def.guards[t->guard].knob
                  : "";
          if (knob.empty()) {
            const AnalysisReport rep = analyzer.analyze(policy);
            const auto& resp = rep.finding(ch).responsible_knobs;
            if (!resp.empty()) knob = common::join(resp, ", ");
          }
          findings.push_back(
              {ReachFindingKind::separation_opening, def.name,
               strformat("reachable transition %s opens `%s` while the "
                         "analyzer holds it closed",
                         lifecycle::describe(def, *t).c_str(),
                         obs::to_string(ch)),
               knob, describe_policy(policy), static_cast<int>(idx), -1});
        }
      }
    }
  }
  for (std::size_t k = 0; k < scan.annotated.size(); ++k) {
    signature |= static_cast<std::uint64_t>(
                     analyzer.verdict(policy, scan.annotated[k]))
                 << (scan.policy_guards.size() + 2 * k);
  }
  scan.signatures.insert(signature);
}

void finish_machine(MachineScan& scan, std::vector<ReachFinding>& findings) {
  const MachineDef& def = *scan.def;
  for (const std::size_t g : scan.policy_guards) {
    if (scan.mismatch_reported[g]) continue;
    if (scan.outcomes_seen[g].size() < 2) {
      findings.push_back(
          {ReachFindingKind::guard_knob_mismatch, def.name,
           strformat("policy guard `%s` never varies with its declared "
                     "knob `%s` over the whole lattice",
                     def.guards[g].name, def.guards[g].knob),
           def.guards[g].knob, "", -1, -1});
    }
  }
  for (std::size_t s = 0; s < def.states.size(); ++s) {
    if (scan.reached[s]) continue;
    findings.push_back({ReachFindingKind::unreachable_state, def.name,
                        strformat("state `%s` is unreachable from `%s` "
                                  "under every policy and environment",
                                  def.state_name(
                                      static_cast<lifecycle::StateId>(s)),
                                  def.state_name(def.initial)),
                        "", "", -1, static_cast<int>(s)});
  }
  for (std::size_t i = 0; i < def.transitions.size(); ++i) {
    if (scan.fired[i]) continue;
    // Shadowed rows are already reported with the sharper diagnosis.
    bool already = false;
    for (const ReachFinding& f : findings) {
      if (f.kind == ReachFindingKind::shadowed_transition &&
          f.machine == def.name && f.transition_index == static_cast<int>(i)) {
        already = true;
        break;
      }
    }
    if (already) continue;
    findings.push_back(
        {ReachFindingKind::dead_transition, def.name,
         strformat("row %zu (%s) never fires under any policy or "
                   "environment",
                   i, lifecycle::describe(def, def.transitions[i]).c_str()),
         "", "", static_cast<int>(i), -1});
  }
}

}  // namespace

ReachReport ReachabilityChecker::check_all(
    std::span<const MachineDef* const> machines) const {
  ReachReport report;
  report.policies = policy_space_size();
  std::vector<MachineScan> scans(machines.size());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    scans[m].def = machines[m];
    structural_pass(scans[m], report.findings);
  }
  for (std::size_t i = 0; i < report.policies; ++i) {
    const core::SeparationPolicy policy = policy_at(i);
    const lifecycle::PolicyView view = view_of(policy);
    for (MachineScan& scan : scans) {
      sweep_policy(scan, policy, view, analyzer_, report.findings);
    }
  }
  for (MachineScan& scan : scans) {
    finish_machine(scan, report.findings);
    report.machines.push_back({scan.def->name, scan.def->states.size(),
                               scan.def->transitions.size(), scan.triples,
                               scan.signatures.size()});
  }
  return report;
}

ReachReport ReachabilityChecker::check(const MachineDef& def) const {
  const MachineDef* const one[] = {&def};
  return check_all(one);
}

std::string reach_to_markdown(const ReachReport& report) {
  std::string out = "# Lifecycle reachability analysis\n\n";
  out += strformat(
      "Exhaustive sweep: %zu machines x %zu policies (full knob "
      "lattice), environment guards explored both ways.\n\n",
      report.machines.size(), report.policies);
  out +=
      "| machine | states | transitions | fired triples | signature "
      "classes |\n|---|---|---|---|---|\n";
  for (const MachineStats& m : report.machines) {
    out += strformat("| %s | %zu | %zu | %llu | %zu |\n", m.machine.c_str(),
                     m.states, m.transitions,
                     static_cast<unsigned long long>(m.triples),
                     m.signature_classes);
  }
  if (report.findings.empty()) {
    out +=
        "\nNo findings: every state is reachable, every row can fire, "
        "every policy guard agrees with its declared knob, and no "
        "reachable transition opens a channel the analyzer holds "
        "closed.\n";
    return out;
  }
  out += strformat("\n## Findings (%zu)\n\n", report.findings.size());
  for (const ReachFinding& f : report.findings) {
    out += strformat("- **%s** `%s`: %s", to_string(f.kind),
                     f.machine.c_str(), f.detail.c_str());
    if (!f.knob.empty()) {
      out += strformat(" [knob: %s]", f.knob.c_str());
    }
    if (!f.example_policy.empty()) {
      out += strformat("\n  - witness: `%s`", f.example_policy.c_str());
    }
    out += "\n";
  }
  return out;
}

std::string reach_to_json(const ReachReport& report) {
  std::string out = "{\n";
  out += strformat("  \"policies\": %zu,\n", report.policies);
  out += strformat("  \"clean\": %s,\n", report.clean() ? "true" : "false");
  out += "  \"machines\": [\n";
  for (std::size_t i = 0; i < report.machines.size(); ++i) {
    const MachineStats& m = report.machines[i];
    out += strformat(
        "    {\"name\": \"%s\", \"states\": %zu, \"transitions\": %zu, "
        "\"triples\": %llu, \"signature_classes\": %zu}%s\n",
        json_escape(m.machine).c_str(), m.states, m.transitions,
        static_cast<unsigned long long>(m.triples), m.signature_classes,
        i + 1 < report.machines.size() ? "," : "");
  }
  out += "  ],\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const ReachFinding& f = report.findings[i];
    out += strformat(
        "    {\"kind\": \"%s\", \"machine\": \"%s\", \"detail\": \"%s\", "
        "\"knob\": \"%s\", \"witness\": \"%s\", \"transition\": %d, "
        "\"state\": %d}%s\n",
        to_string(f.kind), json_escape(f.machine).c_str(),
        json_escape(f.detail).c_str(), json_escape(f.knob).c_str(),
        json_escape(f.example_policy).c_str(), f.transition_index, f.state,
        i + 1 < report.findings.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace heus::analyze
