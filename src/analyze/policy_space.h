// The knob lattice of core::SeparationPolicy, reified.
//
// Every analysis the static analyzer performs — naming the knob(s)
// responsible for a verdict, computing a minimal hardening set, sweeping
// policy space for the differential cross-check — needs a uniform way to
// enumerate, read, flip and parse the policy's knobs. This header is that
// registry: one KnobSpec per independent knob, in a stable documented
// order, plus the sweep generators built on top of it.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/policy.h"

namespace heus::analyze {

/// One independently-settable knob of a SeparationPolicy. Two-valued for
/// bools; enum knobs (hidepid, sharing) expose their baseline/hardened
/// endpoints and treat intermediate values as "not hardened".
struct KnobSpec {
  const char* name;  ///< stable identifier, e.g. "fs.enforce_smask"
  const char* description;
  /// True iff the knob sits at its hardened() value.
  bool (*is_hardened)(const core::SeparationPolicy&);
  /// Set the knob to its hardened (true) or baseline (false) value.
  void (*set)(core::SeparationPolicy&, bool hardened);
};

/// The full registry, in paper-section order (§IV-A … §IV-F).
[[nodiscard]] const std::vector<KnobSpec>& knobs();

/// Registry lookup by name; nullptr when unknown.
[[nodiscard]] const KnobSpec* find_knob(const std::string& name);

/// Toggle one knob between its baseline and hardened endpoint: a knob at
/// its hardened value goes to baseline, anything else goes to hardened.
[[nodiscard]] core::SeparationPolicy flip_knob(core::SeparationPolicy p,
                                               const KnobSpec& knob);

/// A policy with a human-readable label, for sweeps and reports.
struct NamedPolicy {
  std::string name;
  core::SeparationPolicy policy;
};

/// Every single-knob ablation of `base`: one policy per registry knob,
/// with that knob flipped (baseline<->hardened endpoint).
[[nodiscard]] std::vector<NamedPolicy> single_knob_ablations(
    const std::string& base_name, const core::SeparationPolicy& base);

/// A uniformly random point of the knob lattice. Enum knobs draw from all
/// of their values (hidepid additionally samples restrict_contents=1;
/// sharing samples exclusive_job), so sweeps exercise the intermediate
/// settings too.
[[nodiscard]] core::SeparationPolicy random_policy(common::Rng& rng);

/// The standard differential-sweep corpus: baseline, hardened, every
/// single-knob ablation of each, plus `random_count` seeded random
/// policies. This is the corpus both the cross-check test and the
/// explanation-soundness property test iterate.
[[nodiscard]] std::vector<NamedPolicy> differential_sweep(
    std::size_t random_count, std::uint64_t seed);

/// The value of one registry knob as a parseable token: "off"/"restrict"/
/// "invisible" for hidepid, "shared"/"exclusive"/"user-whole-node" for
/// sharing, "0"/"1" for booleans. Every returned token is accepted back by
/// set_knob_from_string, which is what lets the intent-policy emitter and
/// the drift reporter speak the same vocabulary.
[[nodiscard]] std::string knob_value(const core::SeparationPolicy& p,
                                     const KnobSpec& knob);

/// All `name -> value` assignments of `p`, registry order. The uniform
/// view drift analysis diffs node-by-node.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
knob_assignments(const core::SeparationPolicy& p);

/// Size of the full knob lattice (every enum value of hidepid and sharing
/// times every boolean assignment): the domain of the exhaustive
/// round-trip oracle.
[[nodiscard]] std::size_t policy_space_size();

/// The `index`-th point of the lattice, in a fixed documented order.
/// policy_at(i) for i in [0, policy_space_size()) enumerates every policy
/// exactly once. Asserts on out-of-range indices.
[[nodiscard]] core::SeparationPolicy policy_at(std::size_t index);

/// Set one knob from a CLI-style string. Accepted values: bools take
/// 0/1/true/false/on/off; "hidepid" additionally takes off/restrict/
/// invisible or 0/1/2; "sharing" takes shared/exclusive/user-whole-node.
/// Returns false (policy untouched) for an unknown knob or value.
[[nodiscard]] bool set_knob_from_string(core::SeparationPolicy& p,
                                        const std::string& name,
                                        const std::string& value);

/// Render the full knob assignment of `p` ("ubf=1 fs.enforce_smask=0 …"),
/// for report headers and test-failure diagnostics.
[[nodiscard]] std::string describe_policy(const core::SeparationPolicy& p);

}  // namespace heus::analyze
