// Transitive escalation-path analysis over the ChannelGraph (ISSUE 8
// tentpole, the closure half).
//
// Enumerates every simple path from the adversary's start vantage
// (login shell, cluster 0) to a victim asset, purely statically:
// per-hop presence comes from the graph (i.e. from the StaticAnalyzer
// verdicts, the structural predicates and the lifecycle tables), and
// each hop carries the registry knobs that would sever it. On top of
// the enumeration sit the three report products the `heus-lint --paths`
// gate runs on:
//
//  - a minimal cut: the smallest registry-knob set whose hardening
//    severs every escalation path (the multi-hop generalisation of the
//    per-channel minimal_hardening sets from PR 2);
//  - a full 73,728-point lattice sweep proving the hardened policy
//    admits zero escalation paths (and quantifying everything else);
//  - a mutation sweep: every single-knob ablation of hardened, with
//    the exact re-opened path and hop named for each flagged knob.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analyze/channel_graph.h"
#include "analyze/knob_lint.h"

namespace heus::analyze {

/// One simple path from the start vantage to an asset, as indices into
/// ChannelGraph::edges().
struct AttackPath {
  std::vector<std::uint32_t> edges;
  bool has_open_hop = false;   ///< some hop is EdgeClass::open
  bool cross_cluster = false;  ///< some hop crosses the WAN
};

/// Sweep statistics over the full policy lattice (2-cluster
/// homogeneous instantiation per point).
struct LatticeSweep {
  std::size_t policies = 0;
  std::size_t behaviour_classes = 0;  ///< distinct presence signatures
  std::size_t policies_with_escalation = 0;
  std::size_t hardened_escalation_paths = 0;
  std::size_t max_escalation_paths = 0;
  std::string worst_policy;  ///< describe_policy() of a max witness
};

/// One single-knob ablation of hardened, and what it re-opens.
struct MutationFinding {
  std::string knob;
  std::size_t escalation_paths = 0;  ///< 0: defense-in-depth knob
  std::string witness;               ///< first re-opened path, rendered
  int reopened_hop = -1;  ///< hop index absent under pure hardened
  std::string reopened_mechanism;
  std::vector<std::string> hop_knobs;  ///< per-hop responsible knobs
};

struct PathReport {
  ChannelGraph graph;
  std::vector<AttackPath> escalation;  ///< >= 1 open hop: gate failures
  std::vector<AttackPath> residual;    ///< documented residuals only
  std::vector<std::string> minimal_cut;
  bool swept = false;
  LatticeSweep sweep;
  std::vector<MutationFinding> mutations;

  /// Gate rule: the reviewed deployment admits no escalation path, and
  /// (when swept) neither does the hardened lattice point.
  [[nodiscard]] bool gate_ok() const {
    return escalation.empty() &&
           (!swept || sweep.hardened_escalation_paths == 0);
  }
};

class PathAnalyzer {
 public:
  explicit PathAnalyzer(TopologyFacts facts = {},
                        PrincipalClass cls = PrincipalClass::unprivileged)
      : facts_(facts), principal_(cls) {}

  [[nodiscard]] const TopologyFacts& facts() const { return facts_; }
  [[nodiscard]] PrincipalClass principal() const { return principal_; }

  /// Every simple path start -> asset over present edges (DFS, catalog
  /// order, deterministic). With `include_absent`, walks the full
  /// catalogue shape instead — the oracle's potential-path universe.
  [[nodiscard]] static std::vector<AttackPath> enumerate(
      const ChannelGraph& graph, bool include_absent = false);

  /// Graph + path census for an explicit member list.
  [[nodiscard]] PathReport analyze(
      std::span<const ClusterSpec> clusters) const;

  /// Smallest registry-knob set whose hardening (applied to every
  /// member) severs all of `escalation`. Exhaustive for cuts of size
  /// <= 3, greedy set-cover with redundancy pruning above that.
  [[nodiscard]] std::vector<std::string> minimal_cut(
      std::span<const ClusterSpec> clusters,
      const std::vector<AttackPath>& escalation,
      const ChannelGraph& graph) const;

  /// Escalation-path count over the whole lattice (homogeneous
  /// 2-cluster instantiation per point), memoized on the presence
  /// signature — the lattice collapses to a few behaviour classes.
  [[nodiscard]] LatticeSweep sweep() const;

  /// Every single-knob ablation of hardened, flagged with the exact
  /// re-opened path and hop.
  [[nodiscard]] std::vector<MutationFinding> mutation_sweep() const;

  /// The `heus-lint --paths` product: 2-cluster homogeneous analysis
  /// of `policy` plus the lattice and mutation sweeps.
  [[nodiscard]] PathReport full_report(
      const core::SeparationPolicy& policy) const;

 private:
  [[nodiscard]] std::size_t escalation_count(
      std::span<const ClusterSpec> clusters) const;

  TopologyFacts facts_;
  PrincipalClass principal_ = PrincipalClass::unprivileged;
};

/// "c0/login-shell --[tcp connect]--> c0/victim-service" rendering.
[[nodiscard]] std::string path_label(const ChannelGraph& graph,
                                     const AttackPath& path);

/// Review artifact (optionally folding in the dead-knob lint section).
[[nodiscard]] std::string paths_to_markdown(
    const PathReport& report, const KnobLintReport* lint = nullptr);

/// Machine-readable gate output (heus-lint --paths --format json).
[[nodiscard]] std::string paths_to_json(
    const PathReport& report, const KnobLintReport* lint = nullptr);

}  // namespace heus::analyze
