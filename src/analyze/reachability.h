// Exhaustive reachability model checker over the lifecycle tables
// (ISSUE 6 tentpole, the static half).
//
// The tables in src/lifecycle (network flow, job, transfer, portal
// session, container entry) annotate exactly which transitions open a
// cross-user channel without an enforcement decision. This checker
// closes the loop with the per-channel StaticAnalyzer: for every point
// of the policy lattice it walks the reachable (state, event,
// guard-outcome) triples of each table — policy guards pinned by the
// policy, environment guards explored both ways — and proves that no
// reachable transition sequence opens a channel the analyzer holds
// closed under that policy. On the way it enforces the table hygiene
// rules the runtime Driver assumes:
//
//  - every policy guard names a registry knob and its predicate is a
//    function of that knob's value alone (the transition/knob
//    agreement rule, DESIGN.md §3);
//  - no transition row is shadowed: first-match resolution can select
//    every row under some (state, event, guard-outcome) combination;
//  - every state is reachable and every transition fires under some
//    policy/environment — dead rows are drift between table and code.
//
// The sweep is exact, not sampled: all policy_space_size() points (the
// full 73,728-policy lattice). Per machine it also reports the number
// of *policy-guard signature* classes — distinct (guard outcomes,
// annotated-channel verdicts) vectors — which documents how small the
// quotient the exhaustive walk actually distinguishes is.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "lifecycle/machine.h"

namespace heus::analyze {

/// Project a SeparationPolicy into the flat view lifecycle guards
/// consume. Field encodings match knob_value() token-for-token.
[[nodiscard]] lifecycle::PolicyView view_of(const core::SeparationPolicy& p);

/// The six shipped lifecycle tables, stable order: flow, job,
/// transfer, portal-session, container-entry, fed-breaker.
[[nodiscard]] std::span<const lifecycle::MachineDef* const>
lifecycle_machines();

enum class ReachFindingKind {
  bad_guard,          ///< malformed guard (policy w/o eval, env w/ eval)
  unknown_knob,       ///< policy guard names no registry knob
  guard_knob_mismatch,///< eval is not a function of the declared knob
  shadowed_transition,///< first-match resolution can never select row
  unreachable_state,  ///< no policy/env path reaches the state
  dead_transition,    ///< row never fires under any policy/env
  separation_opening, ///< reachable opening while analyzer says closed
};

[[nodiscard]] const char* to_string(ReachFindingKind kind);

struct ReachFinding {
  ReachFindingKind kind{};
  std::string machine;       ///< MachineDef::name
  std::string detail;        ///< prose: row/state/guard and why
  std::string knob;          ///< responsible knob, when one is known
  std::string example_policy;///< describe_policy() of a witness policy
  int transition_index = -1; ///< row index, when the finding has one
  int state = -1;            ///< state id, for unreachable_state
};

struct MachineStats {
  std::string machine;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::uint64_t triples = 0;  ///< distinct fired (state,event,outcome)×policy
  std::size_t signature_classes = 0;  ///< exact-equivalence quotient size
};

struct ReachReport {
  std::size_t policies = 0;  ///< lattice points swept (policy_space_size())
  std::vector<MachineStats> machines;
  std::vector<ReachFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] std::uint64_t triples_total() const {
    std::uint64_t n = 0;
    for (const MachineStats& m : machines) n += m.triples;
    return n;
  }
};

/// The checker. Stateless apart from the analyzer it cross-examines;
/// check() may be called with any MachineDef (the mutation tests build
/// deliberately-broken copies of the shipped tables).
class ReachabilityChecker {
 public:
  explicit ReachabilityChecker(TopologyFacts facts = {})
      : analyzer_(facts) {}

  [[nodiscard]] const StaticAnalyzer& analyzer() const { return analyzer_; }

  /// Sweep one table over the full policy lattice.
  [[nodiscard]] ReachReport check(const lifecycle::MachineDef& def) const;

  /// Sweep several tables in one lattice pass.
  [[nodiscard]] ReachReport check_all(
      std::span<const lifecycle::MachineDef* const> machines) const;

  /// The six shipped tables.
  [[nodiscard]] ReachReport check_shipped() const {
    return check_all(lifecycle_machines());
  }

 private:
  StaticAnalyzer analyzer_;
};

/// Review artifact: per-machine census table plus findings, markdown.
[[nodiscard]] std::string reach_to_markdown(const ReachReport& report);

/// Machine-readable gate output (heus-lint --reach --format json).
[[nodiscard]] std::string reach_to_json(const ReachReport& report);

}  // namespace heus::analyze
