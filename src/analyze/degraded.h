// Degraded-mode census: which channel closures depend on fail-closed
// behavior under faults.
//
// The fault-injection engine (src/fault) demonstrates dynamically that
// faults never OPEN a channel: a UBF that cannot attribute a flow drops
// it, a failed epilog holds its node, a dead portal forwards nothing.
// This module is the static counterpart a reviewer wants before an
// incident, answering for each closed channel: is it closed by a local
// mechanism that keeps working when the ident/network plane degrades
// (DAC bits, hidepid, PrivateData — evaluated against state the enforcer
// already holds), or is it closed only because a runtime-query mechanism
// FAILS CLOSED when its backend is unreachable? The latter set is exactly
// where faults convert into availability loss — legitimate traffic
// dropped — and the census is what `heus-lint --degraded` prints.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "core/policy.h"

namespace heus::analyze {

enum class DegradedBehavior {
  /// Crossable even when healthy — faults have nothing left to open.
  already_crossable,
  /// Closed by a mechanism that consults no failable runtime backend:
  /// unaffected by ident outages, partitions, or backend downtime.
  locally_enforced,
  /// Closed only because the ident-query path (UBF and everything routed
  /// through it, e.g. the portal's forwarded hop) fails closed when its
  /// responder times out: under ident/network faults this channel stays
  /// closed at the price of dropping legitimate flows too.
  fail_closed_dependent,
};

[[nodiscard]] const char* to_string(DegradedBehavior b);

struct DegradedFinding {
  core::ChannelKind kind{};
  DegradedBehavior behavior = DegradedBehavior::locally_enforced;
  std::string note;
};

/// One federated remote operation's posture when the WAN link degrades
/// (src/fed). Cross-cluster admission consults the peer over the link
/// the way the UBF consults the ident responder, so link faults suspend
/// it the same way: the fail-closed funnel — bounded retries, then the
/// per-peer circuit breaker — stands in for the verification it can no
/// longer perform, denying with a typed errno and a fed_admission
/// Decision instead of admitting an unverified claim.
struct FedDegradedFinding {
  std::string operation;
  DegradedBehavior behavior = DegradedBehavior::fail_closed_dependent;
  std::string note;
};

struct DegradedReport {
  core::SeparationPolicy policy;
  std::vector<DegradedFinding> findings;  ///< kAllChannels order
  /// Federation remote-operation census (empty only if federation rows
  /// are ever made conditional; today always populated).
  std::vector<FedDegradedFinding> federation;

  [[nodiscard]] std::size_t count(DegradedBehavior b) const;
};

/// The census: for each channel closed under `policy`, re-run the static
/// verdict with the UBF knob at baseline (the enforcement that evaporates
/// when ident queries cannot complete — fail-closed is what stands in for
/// it). A verdict that flips to crossable marks the channel
/// fail_closed_dependent.
[[nodiscard]] DegradedReport degraded_census(
    const StaticAnalyzer& analyzer, const core::SeparationPolicy& policy);

[[nodiscard]] std::string to_markdown(const DegradedReport& report);

}  // namespace heus::analyze
