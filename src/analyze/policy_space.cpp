#include "analyze/policy_space.h"

#include <cassert>
#include <string_view>

#include "common/strings.h"
#include "obs/taxonomy.h"

namespace heus::analyze {

using core::SeparationPolicy;
namespace knob = obs::knob;

namespace {

// Shorthand for the registry table below.
using P = SeparationPolicy;

const std::vector<KnobSpec>& registry() {
  static const std::vector<KnobSpec> specs = {
      // §IV-A processes
      {knob::hidepid, "mount /proc with hidepid=2 (foreign pids invisible)",
       [](const P& p) { return p.hidepid == simos::HidepidMode::invisible; },
       [](P& p, bool h) {
         p.hidepid =
             h ? simos::HidepidMode::invisible : simos::HidepidMode::off;
       }},
      {knob::hidepid_gid_exemption,
       "gid= mount flag: seepid staff group exempt from hidepid",
       [](const P& p) { return p.hidepid_gid_exemption; },
       [](P& p, bool h) { p.hidepid_gid_exemption = h; }},
      // §IV-B scheduler
      {knob::private_data_jobs, "squeue shows only the caller's jobs",
       [](const P& p) { return p.private_data.jobs; },
       [](P& p, bool h) { p.private_data.jobs = h; }},
      {knob::private_data_accounting, "sacct shows only the caller's records",
       [](const P& p) { return p.private_data.accounting; },
       [](P& p, bool h) { p.private_data.accounting = h; }},
      {knob::private_data_usage, "sreport shows only the caller's usage",
       [](const P& p) { return p.private_data.usage; },
       [](P& p, bool h) { p.private_data.usage = h; }},
      {knob::sharing, "user-based whole-node scheduling",
       [](const P& p) {
         return p.sharing == sched::SharingPolicy::user_whole_node;
       },
       [](P& p, bool h) {
         p.sharing = h ? sched::SharingPolicy::user_whole_node
                       : sched::SharingPolicy::shared;
       }},
      {knob::pam_slurm, "ssh only to nodes where the user has a running job",
       [](const P& p) { return p.pam_slurm; },
       [](P& p, bool h) { p.pam_slurm = h; }},
      // §IV-C filesystems
      {knob::fs_enforce_smask, "kernel smask patch installed",
       [](const P& p) { return p.fs.enforce_smask; },
       [](P& p, bool h) { p.fs.enforce_smask = h; }},
      {knob::fs_honor_smask, "Lustre LU-4746 patch: filesystem honors smask",
       [](const P& p) { return p.fs.honor_smask; },
       [](P& p, bool h) { p.fs.honor_smask = h; }},
      {knob::fs_restrict_acl,
       "setfacl restricted to member groups, no named-user grants",
       [](const P& p) { return p.fs.restrict_acl; },
       [](P& p, bool h) { p.fs.restrict_acl = h; }},
      {knob::root_owned_homes, "homes root-owned, group = UPG, mode 0770",
       [](const P& p) { return p.root_owned_homes; },
       [](P& p, bool h) { p.root_owned_homes = h; }},
      // §IV-D network
      {knob::ubf, "user-based firewall attached to the nfqueue hook",
       [](const P& p) { return p.ubf; },
       [](P& p, bool h) { p.ubf = h; }},
      {knob::ubf_group_peers, "UBF rule (b): egid project-group peers allowed",
       [](const P& p) { return p.ubf_group_peers; },
       [](P& p, bool h) { p.ubf_group_peers = h; }},
      // §IV-F accelerators
      {knob::gpu_dev_binding, "/dev/nvidiaN chgrp'ed to the user's UPG on alloc",
       [](const P& p) { return p.gpu_dev_binding; },
       [](P& p, bool h) { p.gpu_dev_binding = h; }},
      {knob::gpu_epilog_scrub, "vendor memory scrub in the job epilog",
       [](const P& p) { return p.gpu_epilog_scrub; },
       [](P& p, bool h) { p.gpu_epilog_scrub = h; }},
  };
  return specs;
}

}  // namespace

const std::vector<KnobSpec>& knobs() { return registry(); }

const KnobSpec* find_knob(const std::string& name) {
  for (const KnobSpec& k : registry()) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

SeparationPolicy flip_knob(SeparationPolicy p, const KnobSpec& knob) {
  knob.set(p, !knob.is_hardened(p));
  return p;
}

std::vector<NamedPolicy> single_knob_ablations(
    const std::string& base_name, const SeparationPolicy& base) {
  std::vector<NamedPolicy> out;
  out.reserve(registry().size());
  for (const KnobSpec& k : registry()) {
    out.push_back({base_name + "~" + k.name, flip_knob(base, k)});
  }
  return out;
}

SeparationPolicy random_policy(common::Rng& rng) {
  SeparationPolicy p;
  p.hidepid = static_cast<simos::HidepidMode>(rng.bounded(3));
  p.hidepid_gid_exemption = rng.chance(0.5);
  p.private_data.jobs = rng.chance(0.5);
  p.private_data.accounting = rng.chance(0.5);
  p.private_data.usage = rng.chance(0.5);
  switch (rng.bounded(3)) {
    case 0: p.sharing = sched::SharingPolicy::shared; break;
    case 1: p.sharing = sched::SharingPolicy::exclusive_job; break;
    default: p.sharing = sched::SharingPolicy::user_whole_node; break;
  }
  p.pam_slurm = rng.chance(0.5);
  p.fs.enforce_smask = rng.chance(0.5);
  p.fs.honor_smask = rng.chance(0.5);
  p.fs.restrict_acl = rng.chance(0.5);
  p.root_owned_homes = rng.chance(0.5);
  p.ubf = rng.chance(0.5);
  p.ubf_group_peers = rng.chance(0.5);
  p.gpu_dev_binding = rng.chance(0.5);
  p.gpu_epilog_scrub = rng.chance(0.5);
  return p;
}

std::vector<NamedPolicy> differential_sweep(std::size_t random_count,
                                            std::uint64_t seed) {
  std::vector<NamedPolicy> out;
  out.push_back({"baseline", SeparationPolicy::baseline()});
  out.push_back({"hardened", SeparationPolicy::hardened()});
  for (auto& np :
       single_knob_ablations("baseline", SeparationPolicy::baseline())) {
    out.push_back(std::move(np));
  }
  for (auto& np :
       single_knob_ablations("hardened", SeparationPolicy::hardened())) {
    out.push_back(std::move(np));
  }
  common::Rng rng(seed);
  for (std::size_t i = 0; i < random_count; ++i) {
    out.push_back(
        {common::strformat("random-%zu", i), random_policy(rng)});
  }
  return out;
}

std::string knob_value(const SeparationPolicy& p, const KnobSpec& knob) {
  if (std::string_view(knob.name) == knob::hidepid) {
    switch (p.hidepid) {
      case simos::HidepidMode::off: return "off";
      case simos::HidepidMode::restrict_contents: return "restrict";
      case simos::HidepidMode::invisible: return "invisible";
    }
    return "?";
  }
  if (std::string_view(knob.name) == knob::sharing) {
    return sched::to_string(p.sharing);
  }
  return knob.is_hardened(p) ? "1" : "0";
}

std::vector<std::pair<std::string, std::string>> knob_assignments(
    const SeparationPolicy& p) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(registry().size());
  for (const KnobSpec& k : registry()) {
    out.emplace_back(k.name, knob_value(p, k));
  }
  return out;
}

std::size_t policy_space_size() {
  // Two 3-valued enum knobs; every other registry knob is boolean.
  return 3 * 3 * (std::size_t{1} << (registry().size() - 2));
}

SeparationPolicy policy_at(std::size_t index) {
  assert(index < policy_space_size());
  SeparationPolicy p;
  p.hidepid = static_cast<simos::HidepidMode>(index % 3);
  index /= 3;
  switch (index % 3) {
    case 0: p.sharing = sched::SharingPolicy::shared; break;
    case 1: p.sharing = sched::SharingPolicy::exclusive_job; break;
    default: p.sharing = sched::SharingPolicy::user_whole_node; break;
  }
  index /= 3;
  for (const KnobSpec& k : registry()) {
    const std::string_view name = k.name;
    if (name == knob::hidepid || name == knob::sharing) continue;
    k.set(p, (index & 1) != 0);
    index >>= 1;
  }
  return p;
}

bool set_knob_from_string(SeparationPolicy& p, const std::string& name,
                          const std::string& value) {
  const KnobSpec* knob = find_knob(name);
  if (knob == nullptr) return false;
  if (name == knob::hidepid) {
    if (value == "off" || value == "0") {
      p.hidepid = simos::HidepidMode::off;
    } else if (value == "restrict" || value == "1") {
      p.hidepid = simos::HidepidMode::restrict_contents;
    } else if (value == "invisible" || value == "2") {
      p.hidepid = simos::HidepidMode::invisible;
    } else {
      return false;
    }
    return true;
  }
  if (name == knob::sharing) {
    if (value == "shared") {
      p.sharing = sched::SharingPolicy::shared;
    } else if (value == "exclusive") {
      p.sharing = sched::SharingPolicy::exclusive_job;
    } else if (value == "user-whole-node") {
      p.sharing = sched::SharingPolicy::user_whole_node;
    } else {
      return false;
    }
    return true;
  }
  if (value == "1" || value == "true" || value == "on") {
    knob->set(p, true);
    return true;
  }
  if (value == "0" || value == "false" || value == "off") {
    knob->set(p, false);
    return true;
  }
  return false;
}

std::string describe_policy(const SeparationPolicy& p) {
  std::vector<std::string> parts;
  parts.push_back(common::strformat(
      "hidepid=%d", static_cast<int>(p.hidepid)));
  parts.push_back(common::strformat("hidepid_gid_exemption=%d",
                                    p.hidepid_gid_exemption ? 1 : 0));
  parts.push_back(common::strformat("private_data.jobs=%d",
                                    p.private_data.jobs ? 1 : 0));
  parts.push_back(common::strformat("private_data.accounting=%d",
                                    p.private_data.accounting ? 1 : 0));
  parts.push_back(common::strformat("private_data.usage=%d",
                                    p.private_data.usage ? 1 : 0));
  parts.push_back(
      common::strformat("sharing=%s", sched::to_string(p.sharing)));
  parts.push_back(common::strformat("pam_slurm=%d", p.pam_slurm ? 1 : 0));
  parts.push_back(common::strformat("fs.enforce_smask=%d",
                                    p.fs.enforce_smask ? 1 : 0));
  parts.push_back(common::strformat("fs.honor_smask=%d",
                                    p.fs.honor_smask ? 1 : 0));
  parts.push_back(common::strformat("fs.restrict_acl=%d",
                                    p.fs.restrict_acl ? 1 : 0));
  parts.push_back(common::strformat("root_owned_homes=%d",
                                    p.root_owned_homes ? 1 : 0));
  parts.push_back(common::strformat("ubf=%d", p.ubf ? 1 : 0));
  parts.push_back(common::strformat("ubf_group_peers=%d",
                                    p.ubf_group_peers ? 1 : 0));
  parts.push_back(common::strformat("gpu_dev_binding=%d",
                                    p.gpu_dev_binding ? 1 : 0));
  parts.push_back(common::strformat("gpu_epilog_scrub=%d",
                                    p.gpu_epilog_scrub ? 1 : 0));
  return common::join(parts, " ");
}

}  // namespace heus::analyze
