// Typed capability graph over the per-channel verdicts (ISSUE 8
// tentpole, the graph half).
//
// The StaticAnalyzer answers "is this single channel crossable"; real
// compromises chain channels across subsystem boundaries and, since
// src/fed, across clusters. This module gives those chains a shape:
// nodes are (cluster, vantage) pairs — where an adversary of a given
// principal class can *stand* — and edges are the catalogued mechanisms
// that move them (or their eyes) from one vantage to another. Edge
// presence is derived from three existing sources of truth, never
// restated:
//
//  - channel edges take the StaticAnalyzer verdict for their
//    ChannelKind under the *enforcing* cluster's policy;
//  - structural edges (co-location, portal login, the federation
//    gateway) take a pure predicate of the enforcing policy;
//  - lifecycle-tagged edges carry a pointer to the MachineDef whose
//    `opens()` rows admit them, so the opens() <-> graph agreement
//    property test can hold the two catalogues together.
//
// The PathAnalyzer (path_analyzer.h) walks this graph transitively; the
// PathOracle (path_oracle.h) executes the same edges against a live
// 2-cluster Federation and holds the graph to step-by-step agreement.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/reachability.h"
#include "core/policy.h"
#include "lifecycle/machine.h"
#include "obs/taxonomy.h"

namespace heus::analyze {

/// Who the adversary is relative to the victim — the graph-level
/// projection of TopologyFacts' observer_* switches.
enum class PrincipalClass {
  unprivileged,   ///< unrelated user, no special membership
  support_staff,  ///< seepid staff (hidepid gid= exemption)
  operator_role,  ///< Slurm Operator (PrivateData-exempt)
  project_peer,   ///< shares the victim service's project group
};

[[nodiscard]] const char* to_string(PrincipalClass cls);

/// Project a principal class onto base topology facts (only the class's
/// own switches are overridden; everything else passes through).
[[nodiscard]] TopologyFacts facts_for(PrincipalClass cls,
                                      TopologyFacts base);

/// Where an adversary (or their line of sight) can stand. The first
/// four are footholds; the victim_* vantages are the assets a path
/// terminates at.
enum class Vantage : std::uint8_t {
  login_shell,          ///< shell on a login node (the start vantage)
  victim_node,          ///< shell on the victim's compute node
  portal_session,       ///< authenticated portal session
  fed_gateway,          ///< federation gateway of a *peer* cluster
  victim_service,       ///< victim's listening service reached
  victim_files,         ///< victim file content or names read
  victim_process_info,  ///< victim pids / command lines observed
  victim_sched_info,    ///< victim queue/accounting/usage rows read
  victim_gpu_residue,   ///< victim's stale GPU memory read
};

inline constexpr std::size_t kVantageCount = 9;

[[nodiscard]] const char* to_string(Vantage v);

/// True for the victim_* vantages paths terminate at.
[[nodiscard]] bool is_asset(Vantage v);

/// Stable identity of a catalogue entry; the dynamic oracle dispatches
/// its per-edge executors on this.
enum class EdgeId : std::uint8_t {
  ssh_gate,
  colocation,
  sched_queue,
  sched_accounting,
  sched_usage,
  tcp_direct,
  udp_direct,
  rdma_tcp,
  rdma_cm,
  uds_login,
  portal_auth,
  portal_forward,
  home_read,
  acl_grant,
  tmp_names,
  tmp_content_login,
  devshm_login,
  procfs_list_login,
  procfs_cmdline_login,
  tmp_content_node,
  devshm_node,
  procfs_list_node,
  procfs_cmdline_node,
  uds_node,
  gpu_residue,
  fed_gateway,
  fed_connect,
  fed_portal,
};

enum class EdgeClass {
  open,        ///< crossable via a channel the paper does not excuse
  residual,    ///< crossable via a documented structural residual (§V)
  structural,  ///< not a leak by itself: a stance change (login, ssh, …)
};

[[nodiscard]] const char* to_string(EdgeClass cls);

/// One catalogued mechanism. Exactly one of `channel` /
/// `structurally_present` decides presence; `lifecycle` ties the edge
/// to the MachineDef whose opens() rows admit it (nullptr otherwise).
struct EdgeSpec {
  EdgeId id{};
  const char* mechanism = "";  ///< short label for reports
  const char* layer = "";      ///< "simos", "sched", "vfs", "net", …
  Vantage from{};
  Vantage to{};
  bool cross_cluster = false;
  std::optional<obs::ChannelKind> channel;
  bool (*structurally_present)(const core::SeparationPolicy&) = nullptr;
  /// Knob attributed when the edge is severed *dynamically* rather than
  /// by a registry knob (WAN partition on the federation gateway).
  const char* wan_knob = nullptr;
  const lifecycle::MachineDef* lifecycle = nullptr;
};

/// The full mechanism catalogue, stable order. Same-cluster entries are
/// instantiated once per cluster; cross-cluster entries once per
/// ordered cluster pair (fed_gateway) or per enforcing cluster
/// (fed_connect / fed_portal).
[[nodiscard]] std::span<const EdgeSpec> edge_catalog();

/// Catalogue lookup by id; never nullptr for a valid EdgeId.
[[nodiscard]] const EdgeSpec* find_edge_spec(EdgeId id);

/// One federation member as the graph sees it.
struct ClusterSpec {
  std::string name;
  core::SeparationPolicy policy;
};

struct GraphNode {
  std::uint32_t cluster = 0;
  Vantage vantage{};
};

struct GraphEdge {
  std::uint32_t from = 0;  ///< node index
  std::uint32_t to = 0;    ///< node index
  const EdgeSpec* spec = nullptr;
  std::uint32_t enforcing_cluster = 0;
  bool present = false;
  EdgeClass cls = EdgeClass::structural;
  /// Registry knobs individually load-bearing for presence: flipping
  /// any one of them on the enforcing cluster toggles the edge.
  std::vector<std::string> responsible_knobs;
};

/// The instantiated graph for one (clusters, principal class) question.
class ChannelGraph {
 public:
  /// Instantiate the catalogue over `clusters`. With `attribute` false
  /// the per-edge responsible-knob search is skipped (lattice sweeps
  /// only need presence).
  [[nodiscard]] static ChannelGraph build(
      std::span<const ClusterSpec> clusters,
      PrincipalClass cls = PrincipalClass::unprivileged,
      TopologyFacts base_facts = {}, bool attribute = true);

  [[nodiscard]] const std::vector<ClusterSpec>& clusters() const {
    return clusters_;
  }
  [[nodiscard]] PrincipalClass principal() const { return principal_; }
  [[nodiscard]] const TopologyFacts& facts() const { return facts_; }
  [[nodiscard]] const std::vector<GraphNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const {
    return edges_;
  }

  [[nodiscard]] std::uint32_t node_index(std::uint32_t cluster,
                                         Vantage v) const;
  [[nodiscard]] const GraphNode& node(std::uint32_t index) const {
    return nodes_.at(index);
  }
  /// The adversary's start vantage: login_shell on cluster 0.
  [[nodiscard]] std::uint32_t start_node() const {
    return node_index(0, Vantage::login_shell);
  }

  /// Node indices reachable from the start over *present* edges.
  [[nodiscard]] std::vector<std::uint32_t> reachable() const;

  /// "cluster/vantage" label for reports.
  [[nodiscard]] std::string node_label(std::uint32_t index) const;

 private:
  std::vector<ClusterSpec> clusters_;
  PrincipalClass principal_ = PrincipalClass::unprivileged;
  TopologyFacts facts_{};
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

/// Channels that some reachable transition of `def` opens under
/// `policy`: policy guards pinned, environment guards explored both
/// ways, events environment-driven — the same exploration rule the
/// reachability checker uses. Sorted, deduplicated. The opens() <->
/// graph property test holds this equal to the channel set of the
/// present edges tagged with `def`.
[[nodiscard]] std::vector<obs::ChannelKind> reachable_openings(
    const lifecycle::MachineDef& def, const core::SeparationPolicy& policy);

}  // namespace heus::analyze
