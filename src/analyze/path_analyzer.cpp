#include "analyze/path_analyzer.h"

#include <algorithm>
#include <unordered_map>

#include "analyze/json_util.h"
#include "common/strings.h"

namespace heus::analyze {

using common::strformat;
using core::SeparationPolicy;

namespace {

/// DFS state for the simple-path enumeration.
struct PathWalker {
  const ChannelGraph* graph = nullptr;
  bool include_absent = false;
  std::vector<bool> visited;
  std::vector<std::uint32_t> stack;
  std::vector<AttackPath> out;

  void record() {
    AttackPath p;
    p.edges = stack;
    for (const std::uint32_t ei : stack) {
      const GraphEdge& e = graph->edges()[ei];
      if (e.cls == EdgeClass::open) p.has_open_hop = true;
      if (e.spec->cross_cluster) p.cross_cluster = true;
    }
    out.push_back(std::move(p));
  }

  void dfs(std::uint32_t at) {
    const auto& edges = graph->edges();
    for (std::uint32_t ei = 0; ei < edges.size(); ++ei) {
      const GraphEdge& e = edges[ei];
      if (e.from != at) continue;
      if (!include_absent && !e.present) continue;
      if (visited[e.to]) continue;
      stack.push_back(ei);
      if (is_asset(graph->node(e.to).vantage)) {
        record();
      } else {
        visited[e.to] = true;
        dfs(e.to);
        visited[e.to] = false;
      }
      stack.pop_back();
    }
  }
};

std::vector<ClusterSpec> homogeneous_pair(const SeparationPolicy& p) {
  return {ClusterSpec{"c0", p}, ClusterSpec{"c1", p}};
}

/// Presence signature of the homogeneous 2-cluster graph: enough to
/// memoize path counts across the lattice.
std::string presence_signature(const ChannelGraph& g) {
  std::string sig;
  sig.reserve(g.edges().size());
  for (const GraphEdge& e : g.edges()) {
    sig += e.present ? (e.cls == EdgeClass::open ? 'o' : 'r') : '.';
  }
  return sig;
}

std::size_t count_escalation(const ChannelGraph& g) {
  std::size_t n = 0;
  for (const AttackPath& p : PathAnalyzer::enumerate(g)) {
    if (p.has_open_hop) ++n;
  }
  return n;
}

}  // namespace

std::vector<AttackPath> PathAnalyzer::enumerate(const ChannelGraph& graph,
                                                bool include_absent) {
  PathWalker w;
  w.graph = &graph;
  w.include_absent = include_absent;
  w.visited.assign(graph.nodes().size(), false);
  w.visited[graph.start_node()] = true;
  w.dfs(graph.start_node());
  return std::move(w.out);
}

PathReport PathAnalyzer::analyze(
    std::span<const ClusterSpec> clusters) const {
  PathReport report;
  report.graph = ChannelGraph::build(clusters, principal_, facts_);
  for (AttackPath& p : enumerate(report.graph)) {
    (p.has_open_hop ? report.escalation : report.residual)
        .push_back(std::move(p));
  }
  report.minimal_cut =
      minimal_cut(clusters, report.escalation, report.graph);
  return report;
}

std::size_t PathAnalyzer::escalation_count(
    std::span<const ClusterSpec> clusters) const {
  return count_escalation(ChannelGraph::build(
      clusters, principal_, facts_, /*attribute=*/false));
}

std::vector<std::string> PathAnalyzer::minimal_cut(
    std::span<const ClusterSpec> clusters,
    const std::vector<AttackPath>& escalation,
    const ChannelGraph& graph) const {
  if (escalation.empty()) return {};

  // Candidates: the whole registry, not just the per-edge responsible
  // knobs — AND-gated pairs (fs.enforce_smask / fs.honor_smask) have no
  // single load-bearing member, yet both belong in the cut.
  std::vector<std::string> candidates;
  for (const KnobSpec& k : knobs()) candidates.emplace_back(k.name);

  auto remaining = [&](const std::vector<std::string>& cut) {
    std::vector<ClusterSpec> hardened(clusters.begin(), clusters.end());
    for (ClusterSpec& c : hardened) {
      for (const std::string& name : cut) {
        const KnobSpec* k = find_knob(name);
        if (k != nullptr) k->set(c.policy, /*hardened=*/true);
      }
    }
    return escalation_count(hardened);
  };

  // Exhaustive over small cuts.
  for (std::size_t size = 1; size <= 3 && size <= candidates.size();
       ++size) {
    std::vector<std::size_t> pick(size);
    for (std::size_t i = 0; i < size; ++i) pick[i] = i;
    for (;;) {
      std::vector<std::string> cut;
      for (const std::size_t i : pick) cut.push_back(candidates[i]);
      if (remaining(cut) == 0) return cut;
      std::size_t at = size;
      while (at > 0 &&
             pick[at - 1] == candidates.size() - (size - at) - 1) {
        --at;
      }
      if (at == 0) break;
      ++pick[at - 1];
      for (std::size_t i = at; i < size; ++i) {
        pick[i] = pick[i - 1] + 1;
      }
    }
  }

  // Greedy set cover with pair lookahead (an AND-gated pair makes no
  // progress one knob at a time), then prune redundant members.
  std::vector<std::string> cut;
  auto chosen = [&](const std::string& name) {
    return std::find(cut.begin(), cut.end(), name) != cut.end();
  };
  std::size_t left = escalation.size();
  while (left > 0) {
    std::string best;
    std::size_t best_left = left;
    for (const std::string& name : candidates) {
      if (chosen(name)) continue;
      std::vector<std::string> trial = cut;
      trial.push_back(name);
      const std::size_t after = remaining(trial);
      if (after < best_left) {
        best = name;
        best_left = after;
      }
    }
    if (!best.empty()) {
      cut.push_back(best);
      left = best_left;
      continue;
    }
    std::pair<std::string, std::string> best_pair;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (chosen(candidates[i])) continue;
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        if (chosen(candidates[j])) continue;
        std::vector<std::string> trial = cut;
        trial.push_back(candidates[i]);
        trial.push_back(candidates[j]);
        const std::size_t after = remaining(trial);
        if (after < best_left) {
          best_pair = {candidates[i], candidates[j]};
          best_left = after;
        }
      }
    }
    if (best_pair.first.empty()) break;  // no progress even in pairs
    cut.push_back(best_pair.first);
    cut.push_back(best_pair.second);
    left = best_left;
  }
  for (std::size_t i = 0; i < cut.size();) {
    std::vector<std::string> trial = cut;
    trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
    if (remaining(trial) == 0) {
      cut = std::move(trial);
    } else {
      ++i;
    }
  }
  return cut;
}

LatticeSweep PathAnalyzer::sweep() const {
  LatticeSweep s;
  s.policies = policy_space_size();
  const SeparationPolicy hardened = SeparationPolicy::hardened();
  std::unordered_map<std::string, std::size_t> classes;
  for (std::size_t i = 0; i < s.policies; ++i) {
    const SeparationPolicy p = policy_at(i);
    const ChannelGraph g = ChannelGraph::build(
        homogeneous_pair(p), principal_, facts_, /*attribute=*/false);
    const std::string sig = presence_signature(g);
    auto it = classes.find(sig);
    if (it == classes.end()) {
      it = classes.emplace(sig, count_escalation(g)).first;
    }
    const std::size_t count = it->second;
    if (p == hardened) s.hardened_escalation_paths = count;
    if (count > 0) ++s.policies_with_escalation;
    if (count > s.max_escalation_paths) {
      s.max_escalation_paths = count;
      s.worst_policy = describe_policy(p);
    }
  }
  s.behaviour_classes = classes.size();
  return s;
}

std::vector<MutationFinding> PathAnalyzer::mutation_sweep() const {
  const SeparationPolicy hardened = SeparationPolicy::hardened();
  const ChannelGraph clean = ChannelGraph::build(
      homogeneous_pair(hardened), principal_, facts_,
      /*attribute=*/false);
  std::vector<MutationFinding> out;
  for (const KnobSpec& k : knobs()) {
    MutationFinding f;
    f.knob = k.name;
    const ChannelGraph g =
        ChannelGraph::build(homogeneous_pair(flip_knob(hardened, k)),
                            principal_, facts_);
    for (const AttackPath& p : enumerate(g)) {
      if (!p.has_open_hop) continue;
      ++f.escalation_paths;
      if (!f.witness.empty()) continue;
      f.witness = path_label(g, p);
      for (std::size_t hop = 0; hop < p.edges.size(); ++hop) {
        const GraphEdge& e = g.edges()[p.edges[hop]];
        std::string joined;
        for (const std::string& name : e.responsible_knobs) {
          joined += joined.empty() ? name : "," + name;
        }
        f.hop_knobs.push_back(std::move(joined));
        // Edge indices are stable across builds with equal member
        // counts, so the clean graph answers "was this hop already
        // present under pure hardened".
        if (f.reopened_hop < 0 &&
            !clean.edges()[p.edges[hop]].present) {
          f.reopened_hop = static_cast<int>(hop);
          f.reopened_mechanism = e.spec->mechanism;
        }
      }
    }
    out.push_back(std::move(f));
  }
  return out;
}

PathReport PathAnalyzer::full_report(
    const SeparationPolicy& policy) const {
  PathReport report = analyze(homogeneous_pair(policy));
  report.swept = true;
  report.sweep = sweep();
  report.mutations = mutation_sweep();
  return report;
}

std::string path_label(const ChannelGraph& graph, const AttackPath& path) {
  if (path.edges.empty()) return "";
  std::string out =
      graph.node_label(graph.edges()[path.edges.front()].from);
  for (const std::uint32_t ei : path.edges) {
    const GraphEdge& e = graph.edges()[ei];
    out += strformat(" --[%s]--> ", e.spec->mechanism);
    out += graph.node_label(e.to);
  }
  return out;
}

namespace {

void render_paths_md(std::string& out, const ChannelGraph& g,
                     const std::vector<AttackPath>& paths) {
  for (const AttackPath& p : paths) {
    out += "- " + path_label(g, p) + "\n";
    for (std::size_t hop = 0; hop < p.edges.size(); ++hop) {
      const GraphEdge& e = g.edges()[p.edges[hop]];
      std::string knobs_str;
      for (const std::string& k : e.responsible_knobs) {
        knobs_str += knobs_str.empty() ? k : ", " + k;
      }
      out += strformat("  - hop %zu: %s [%s/%s, enforced by %s]%s\n",
                       hop + 1, e.spec->mechanism, e.spec->layer,
                       to_string(e.cls),
                       g.clusters()[e.enforcing_cluster].name.c_str(),
                       knobs_str.empty()
                           ? ""
                           : (" — severed by: " + knobs_str).c_str());
    }
  }
}

std::string path_json(const ChannelGraph& g, const AttackPath& p) {
  std::string out = "{\"path\": \"" + json_escape(path_label(g, p));
  out += strformat("\", \"hops\": %zu, \"cross_cluster\": %s, "
                   "\"hop_knobs\": [",
                   p.edges.size(), p.cross_cluster ? "true" : "false");
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_string_array(g.edges()[p.edges[i]].responsible_knobs);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string paths_to_markdown(const PathReport& report,
                              const KnobLintReport* lint) {
  const ChannelGraph& g = report.graph;
  std::string out = "# heus escalation-path analysis\n\n";
  out += strformat("principal class: %s\n\n",
                   to_string(g.principal()));
  for (const ClusterSpec& c : g.clusters()) {
    out += strformat("- cluster `%s`: %s\n", c.name.c_str(),
                     describe_policy(c.policy).c_str());
  }
  std::size_t present = 0;
  for (const GraphEdge& e : g.edges()) present += e.present ? 1 : 0;
  out += strformat("\ngraph: %zu nodes, %zu edges (%zu present); "
                   "adversary reaches %zu vantage(s)\n\n",
                   g.nodes().size(), g.edges().size(), present,
                   g.reachable().size());

  out += strformat("## escalation paths (%zu)\n\n",
                   report.escalation.size());
  if (report.escalation.empty()) {
    out += "none — every multi-hop chain is severed.\n";
  } else {
    render_paths_md(out, g, report.escalation);
  }
  out += strformat("\n## residual-exposure paths (%zu)\n\n",
                   report.residual.size());
  render_paths_md(out, g, report.residual);

  out += "\n## minimal cut\n\n";
  if (report.minimal_cut.empty()) {
    out += report.escalation.empty()
               ? "not needed — no escalation path to sever.\n"
               : "none found within the knob registry.\n";
  } else {
    out += "smallest registry-knob set severing every escalation "
           "path:\n\n";
    for (const std::string& k : report.minimal_cut) {
      out += "- `" + k + "`\n";
    }
  }

  if (report.swept) {
    const LatticeSweep& s = report.sweep;
    out += strformat(
        "\n## lattice sweep\n\n%zu policies (%zu behaviour classes): "
        "%zu admit at least one escalation path; hardened admits %zu; "
        "worst admits %zu (%s)\n",
        s.policies, s.behaviour_classes, s.policies_with_escalation,
        s.hardened_escalation_paths, s.max_escalation_paths,
        s.worst_policy.c_str());
    out += "\n## hardened single-knob mutations\n\n";
    out += "| knob | escalation paths | re-opened hop | witness |\n";
    out += "|------|-----------------:|---------------|---------|\n";
    for (const MutationFinding& m : report.mutations) {
      out += strformat(
          "| %s | %zu | %s | %s |\n", m.knob.c_str(),
          m.escalation_paths,
          m.reopened_hop >= 0
              ? strformat("hop %d: %s", m.reopened_hop + 1,
                          m.reopened_mechanism.c_str())
                    .c_str()
              : "-",
          m.witness.empty() ? "- (defense in depth)"
                            : m.witness.c_str());
    }
  }
  if (lint != nullptr) {
    out += "\n" + knob_lint_to_markdown(*lint);
  }
  out += strformat("\ngate: %s\n",
                   (report.gate_ok() && (lint == nullptr || lint->clean()))
                       ? "ok"
                       : "FAIL");
  return out;
}

std::string paths_to_json(const PathReport& report,
                          const KnobLintReport* lint) {
  const ChannelGraph& g = report.graph;
  std::string out = "{\n";
  out += strformat("  \"principal\": \"%s\",\n",
                   to_string(g.principal()));
  out += "  \"clusters\": [";
  for (std::size_t i = 0; i < g.clusters().size(); ++i) {
    if (i > 0) out += ", ";
    out += strformat(
        "{\"name\": \"%s\", \"policy\": \"%s\"}",
        json_escape(g.clusters()[i].name).c_str(),
        json_escape(describe_policy(g.clusters()[i].policy)).c_str());
  }
  out += "],\n";
  std::size_t present = 0;
  for (const GraphEdge& e : g.edges()) present += e.present ? 1 : 0;
  out += strformat(
      "  \"nodes\": %zu, \"edges\": %zu, \"edges_present\": %zu,\n",
      g.nodes().size(), g.edges().size(), present);
  out += "  \"escalation_paths\": [\n";
  for (std::size_t i = 0; i < report.escalation.size(); ++i) {
    out += "    " + path_json(g, report.escalation[i]);
    out += i + 1 < report.escalation.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"residual_paths\": [\n";
  for (std::size_t i = 0; i < report.residual.size(); ++i) {
    out += "    " + path_json(g, report.residual[i]);
    out += i + 1 < report.residual.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"minimal_cut\": " + json_string_array(report.minimal_cut);
  out += ",\n";
  if (report.swept) {
    const LatticeSweep& s = report.sweep;
    out += strformat(
        "  \"sweep\": {\"policies\": %zu, \"behaviour_classes\": %zu, "
        "\"policies_with_escalation\": %zu, "
        "\"hardened_escalation_paths\": %zu, "
        "\"max_escalation_paths\": %zu, \"worst_policy\": \"%s\"},\n",
        s.policies, s.behaviour_classes, s.policies_with_escalation,
        s.hardened_escalation_paths, s.max_escalation_paths,
        json_escape(s.worst_policy).c_str());
    out += "  \"mutations\": [\n";
    for (std::size_t i = 0; i < report.mutations.size(); ++i) {
      const MutationFinding& m = report.mutations[i];
      out += strformat(
          "    {\"knob\": \"%s\", \"escalation_paths\": %zu, "
          "\"reopened_hop\": %d, \"reopened_mechanism\": \"%s\", "
          "\"witness\": \"%s\", \"hop_knobs\": %s}",
          json_escape(m.knob).c_str(), m.escalation_paths,
          m.reopened_hop, json_escape(m.reopened_mechanism).c_str(),
          json_escape(m.witness).c_str(),
          json_string_array(m.hop_knobs).c_str());
      out += i + 1 < report.mutations.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  if (lint != nullptr) {
    out += "  \"knob_lint\": " + knob_lint_to_json(*lint) + ",\n";
  }
  out += strformat(
      "  \"gate_ok\": %s\n}\n",
      (report.gate_ok() && (lint == nullptr || lint->clean()))
          ? "true"
          : "false");
  return out;
}

}  // namespace heus::analyze
