// The artifact model of site-config ingestion: provenance, diagnostics,
// and the per-node result of parsing deployment artifacts back into a
// (SeparationPolicy, TopologyFacts) pair.
//
// The paper's contribution is a set of *deployed* configurations — a
// /proc mount line, a slurm.conf, an nfqueue ruleset, smask/ACL settings,
// a portal config, GPU device rules. The static analyzer (src/analyze)
// reviews a SeparationPolicy; this layer reconstructs that policy from
// the artifacts a site actually ships, carrying file:line provenance on
// every derived knob so verdicts, hardening suggestions, and drift
// findings can cite the responsible config line instead of a knob name.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "core/policy.h"

namespace heus::analyze::ingest {

/// Where a derived value came from. `file` is relative to the snapshot
/// root ("nodes/node01/proc_mounts"), `line` is 1-based; line 0 marks a
/// knob that no artifact line set (artifact missing or silent), i.e. the
/// knob sits at its baseline default.
struct Provenance {
  std::string file;
  int line = 0;

  [[nodiscard]] bool defaulted() const { return line == 0; }
  /// "nodes/node01/proc_mounts:1", or "ubf.rules (default)" for line 0.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Provenance&) const = default;
};

enum class Severity { warning, error };

[[nodiscard]] const char* to_string(Severity s);

/// One parser complaint: a malformed or suspicious artifact line. Errors
/// mean the line could not be interpreted (the knob keeps its previous
/// value); warnings flag legal-but-dubious configurations.
struct Diagnostic {
  Severity severity = Severity::error;
  Provenance where;
  std::string message;
};

/// The reconstructed effective configuration of one node: the policy and
/// topology facts the artifacts encode, who decided each knob, and what
/// the parsers complained about.
struct IngestedPolicy {
  core::SeparationPolicy policy = core::SeparationPolicy::baseline();
  TopologyFacts facts;
  /// Keyed by registry knob name ("ubf", "fs.enforce_smask", …) plus the
  /// artifact-carried facts ("facts.ubf_inspect_from",
  /// "facts.service_port", "facts.has_gpus"). After finalize(), every key
  /// is present — defaulted knobs point at their owning artifact, line 0.
  std::map<std::string, Provenance> provenance;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool has_errors() const;
  /// Provenance for `knob`; a defaulted "unknown" entry when absent.
  [[nodiscard]] Provenance where(const std::string& knob) const;

  void note(Severity severity, std::string file, int line,
            std::string message);
  /// Record that `knob` was decided at `file:line`.
  void set_provenance(const std::string& knob, std::string file, int line);
  /// Fill defaulted provenance (owning artifact, line 0) for every
  /// registry knob and artifact-carried fact not set by any parser.
  /// `dir_prefix` ("nodes/node01/") qualifies the artifact filenames so
  /// defaulted entries still point at the right node.
  void finalize(const std::string& dir_prefix = "");
};

/// The artifact file that owns `knob` — where a reviewer would go to set
/// it. Knows every registry knob and the "facts.*" keys; returns
/// "unknown" otherwise.
[[nodiscard]] const char* owning_artifact(const std::string& knob);

/// The fixed set of per-node artifact filenames, in parse order.
[[nodiscard]] const std::vector<std::string>& artifact_filenames();

}  // namespace heus::analyze::ingest
