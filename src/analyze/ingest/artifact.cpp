#include "analyze/ingest/artifact.h"

#include "analyze/policy_space.h"
#include "common/strings.h"

namespace heus::analyze::ingest {

std::string Provenance::to_string() const {
  if (defaulted()) {
    return file.empty() ? "(default)" : file + " (default)";
  }
  return common::strformat("%s:%d", file.c_str(), line);
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::warning: return "warning";
    case Severity::error: return "error";
  }
  return "?";
}

bool IngestedPolicy::has_errors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::error) return true;
  }
  return false;
}

Provenance IngestedPolicy::where(const std::string& knob) const {
  auto it = provenance.find(knob);
  if (it != provenance.end()) return it->second;
  return Provenance{owning_artifact(knob), 0};
}

void IngestedPolicy::note(Severity severity, std::string file, int line,
                          std::string message) {
  diagnostics.push_back(
      {severity, Provenance{std::move(file), line}, std::move(message)});
}

void IngestedPolicy::set_provenance(const std::string& knob,
                                    std::string file, int line) {
  provenance[knob] = Provenance{std::move(file), line};
}

void IngestedPolicy::finalize(const std::string& dir_prefix) {
  for (const KnobSpec& k : knobs()) {
    provenance.emplace(
        k.name, Provenance{dir_prefix + owning_artifact(k.name), 0});
  }
  for (const char* fact : {"facts.ubf_inspect_from", "facts.service_port",
                           "facts.has_gpus"}) {
    provenance.emplace(fact,
                       Provenance{dir_prefix + owning_artifact(fact), 0});
  }
}

const char* owning_artifact(const std::string& knob) {
  if (knob == "hidepid" || knob == "hidepid_gid_exemption") {
    return "proc_mounts";
  }
  if (common::starts_with(knob, "private_data.") || knob == "sharing" ||
      knob == "pam_slurm" || knob == "gpu_epilog_scrub") {
    return "slurm.conf";
  }
  if (common::starts_with(knob, "fs.") || knob == "root_owned_homes") {
    return "storage.conf";
  }
  if (knob == "ubf" || knob == "ubf_group_peers" ||
      knob == "facts.ubf_inspect_from") {
    return "ubf.rules";
  }
  if (knob == "facts.service_port") return "portal.conf";
  if (knob == "gpu_dev_binding" || knob == "facts.has_gpus") {
    return "gpu.rules";
  }
  return "unknown";
}

const std::vector<std::string>& artifact_filenames() {
  static const std::vector<std::string> names = {
      "proc_mounts", "slurm.conf",  "ubf.rules",
      "storage.conf", "portal.conf", "gpu.rules",
  };
  return names;
}

}  // namespace heus::analyze::ingest
