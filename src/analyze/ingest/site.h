// Site snapshot loading: a directory of per-node deployment artifacts,
// parsed into per-node effective policies.
//
// Layout (see examples/site/):
//
//   <root>/
//     intent.policy          optional declared intent (parse_intent_policy)
//     nodes/
//       <node>/proc_mounts   one file per artifact_filenames() entry;
//       <node>/slurm.conf    missing artifacts default their knobs and
//       ...                  draw a warning
//
// All provenance paths are relative to <root> so reports are stable
// regardless of where the snapshot sits on disk.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analyze/ingest/artifact.h"

namespace heus::analyze::ingest {

struct NodeSnapshot {
  std::string name;
  IngestedPolicy ingested;
};

struct SiteSnapshot {
  std::string root;  ///< the directory load_site() read, verbatim
  std::optional<IngestedPolicy> intent;
  std::vector<NodeSnapshot> nodes;  ///< sorted by name for determinism
  std::vector<Diagnostic> site_diagnostics;  ///< snapshot-level problems

  /// Any error diagnostic anywhere (site, intent, or node level).
  [[nodiscard]] bool has_errors() const;
};

/// Parse one node from in-memory artifacts (filename-basename → content)
/// — the pure core of load_site(), also what the fuzz tests and
/// bench_config_lint drive without touching a filesystem. Unknown
/// basenames draw an error diagnostic; missing artifacts a warning.
[[nodiscard]] NodeSnapshot parse_node(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& artifacts);

/// Read a snapshot directory. Returns nullopt (with `*error` set) only
/// when the directory itself is unusable; per-file problems surface as
/// diagnostics in the returned snapshot instead.
[[nodiscard]] std::optional<SiteSnapshot> load_site(
    const std::string& dir, std::string* error);

}  // namespace heus::analyze::ingest
