#include "analyze/ingest/emit.h"

#include "analyze/policy_space.h"
#include "common/strings.h"

namespace heus::analyze::ingest {

using common::strformat;
using core::SeparationPolicy;

namespace {

std::string emit_proc_mounts(const SeparationPolicy& p) {
  std::string options = strformat("rw,nosuid,nodev,noexec,hidepid=%d",
                                  static_cast<int>(p.hidepid));
  if (p.hidepid_gid_exemption) options += ",gid=9001";  // the seepid group
  return "# /etc/fstab fragment: the /proc mount (paper §IV-A)\n" +
         strformat("proc /proc proc %s 0 0\n", options.c_str());
}

std::string emit_slurm_conf(const SeparationPolicy& p) {
  std::string out = "# slurm.conf fragment (paper §IV-B, §IV-F)\n";
  std::vector<std::string> pd;
  if (p.private_data.jobs) pd.push_back("jobs");
  if (p.private_data.accounting) pd.push_back("accounting");
  if (p.private_data.usage) pd.push_back("usage");
  out += strformat(
      "PrivateData=%s\n",
      pd.empty() ? "none" : common::join(pd, ",").c_str());
  switch (p.sharing) {
    case sched::SharingPolicy::shared:
      out += "OverSubscribe=YES\n";
      break;
    case sched::SharingPolicy::exclusive_job:
      out += "OverSubscribe=EXCLUSIVE\n";
      break;
    case sched::SharingPolicy::user_whole_node:
      out += "ExclusiveUser=YES\n";
      break;
  }
  out += strformat("UsePAM=%d\n", p.pam_slurm ? 1 : 0);
  out += p.gpu_epilog_scrub
             ? "Epilog=/etc/slurm/epilog.d/90-gpu-scrub.sh\n"
             : "Epilog=/etc/slurm/epilog.d/10-cleanup.sh\n";
  return out;
}

std::string emit_ubf_rules(const SeparationPolicy& p,
                           const TopologyFacts& facts) {
  std::string out = "# user-based firewall ruleset (paper §IV-D)\n";
  out += strformat("inspect %u:65535\n",
                   static_cast<unsigned>(facts.ubf_inspect_from));
  out += "accept same-user\n";
  out += p.ubf_group_peers ? "accept same-primary-group\n"
                           : "drop same-primary-group\n";
  out += p.ubf ? "default drop\n" : "default accept\n";
  return out;
}

std::string emit_storage_conf(const SeparationPolicy& p) {
  std::string out = "# filesystem separation (paper §IV-C)\n";
  out += strformat("smask.enforce = %d\n", p.fs.enforce_smask ? 1 : 0);
  out += strformat("smask.honor = %d\n", p.fs.honor_smask ? 1 : 0);
  out += strformat("acl.restrict_named_users = %d\n",
                   p.fs.restrict_acl ? 1 : 0);
  out += p.root_owned_homes ? "homes.owner = root\nhomes.mode = 0770\n"
                            : "homes.owner = user\nhomes.mode = 0755\n";
  return out;
}

std::string emit_portal_conf(const TopologyFacts& facts) {
  return "# on-demand portal gateway (paper §IV-E)\n"
         "listen = 443\n" +
         strformat("app_port = %u\n",
                   static_cast<unsigned>(facts.service_port)) +
         "forward_as = authenticated-user\n";
}

std::string emit_gpu_rules(const SeparationPolicy& p,
                           const TopologyFacts& facts) {
  std::string out = "# gpu device policy (paper §IV-F)\n";
  out += p.gpu_dev_binding ? "alloc_chgrp = upg\n" : "alloc_chgrp = none\n";
  if (facts.has_gpus) {
    out += "device nvidia0\ndevice nvidia1\n";
  } else {
    out += "# no allocatable gpus on this node\n";
  }
  return out;
}

}  // namespace

std::vector<EmittedArtifact> emit_artifacts(const SeparationPolicy& policy,
                                            const TopologyFacts& facts) {
  return {
      {"proc_mounts", emit_proc_mounts(policy)},
      {"slurm.conf", emit_slurm_conf(policy)},
      {"ubf.rules", emit_ubf_rules(policy, facts)},
      {"storage.conf", emit_storage_conf(policy)},
      {"portal.conf", emit_portal_conf(facts)},
      {"gpu.rules", emit_gpu_rules(policy, facts)},
  };
}

std::string emit_intent_policy(const SeparationPolicy& policy) {
  std::string out =
      "# declared separation intent: every node must lint equal to this\n"
      "base = baseline\n";
  for (const auto& [name, value] : knob_assignments(policy)) {
    out += strformat("%s = %s\n", name.c_str(), value.c_str());
  }
  return out;
}

}  // namespace heus::analyze::ingest
