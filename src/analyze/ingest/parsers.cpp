#include "analyze/ingest/parsers.h"

#include <cstdint>
#include <optional>

#include "analyze/policy_space.h"
#include "common/strings.h"

namespace heus::analyze::ingest {
namespace {

using common::strformat;

// Locale-independent character handling: artifact parsing must not vary
// with the host locale (see tools/check_determinism.sh).
bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

/// Visit every line of `content` (split on '\n') with its 1-based
/// number. Trailing '\r' is handled by trim() at the call sites.
template <typename Fn>
void for_each_line(std::string_view content, Fn&& fn) {
  int line = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? content.size()
                                                         : nl;
    ++line;
    fn(line, content.substr(pos, end - pos));
    pos = end + 1;
  }
}

bool skippable(std::string_view trimmed) {
  return trimmed.empty() || trimmed.front() == '#';
}

std::optional<bool> parse_bool(std::string_view token) {
  const std::string t = lower(token);
  if (t == "1" || t == "true" || t == "on" || t == "yes") return true;
  if (t == "0" || t == "false" || t == "off" || t == "no") return false;
  return std::nullopt;
}

std::optional<std::uint32_t> parse_uint(std::string_view s) {
  if (s.empty() || s.size() > 9) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return v;
}

std::optional<unsigned> parse_octal(std::string_view s) {
  if (s.empty() || s.size() > 6) return std::nullopt;
  unsigned v = 0;
  for (char c : s) {
    if (c < '0' || c > '7') return std::nullopt;
    v = v * 8 + static_cast<unsigned>(c - '0');
  }
  return v;
}

std::optional<std::uint16_t> parse_port(std::string_view s) {
  const auto v = parse_uint(s);
  if (!v || *v > 65535) return std::nullopt;
  return static_cast<std::uint16_t>(*v);
}

/// Split "Key=Value" / "key = value" on the FIRST '='; nullopt when no
/// '=' exists. Both halves are trimmed; the key is lowercased.
struct KeyValue {
  std::string key;
  std::string_view value;
};

std::optional<KeyValue> split_key_value(std::string_view line) {
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) return std::nullopt;
  return KeyValue{lower(trim(line.substr(0, eq))),
                  trim(line.substr(eq + 1))};
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

}  // namespace

void parse_proc_mounts(std::string_view content, const std::string& file,
                       IngestedPolicy& out) {
  bool saw_proc = false;
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const std::vector<std::string_view> fields = split_ws(t);
    if (fields.size() < 4) {
      out.note(Severity::error, file, line,
               "malformed fstab line (want: device mountpoint fstype "
               "options [dump pass])");
      return;
    }
    if (fields[2] != "proc") return;  // other mounts are none of ours
    if (saw_proc) {
      out.note(Severity::warning, file, line,
               "duplicate proc mount line overrides the previous one");
    }
    saw_proc = true;
    // An explicit option list is the authority for both §IV-A knobs:
    // omitting hidepid=/gid= there *is* the baseline decision.
    simos::HidepidMode mode = simos::HidepidMode::off;
    bool gid_exemption = false;
    for (const std::string& opt : common::split(fields[3], ',')) {
      if (common::starts_with(opt, "hidepid=")) {
        const std::string v = lower(opt.substr(8));
        if (v == "0" || v == "off") {
          mode = simos::HidepidMode::off;
        } else if (v == "1" || v == "noaccess") {
          mode = simos::HidepidMode::restrict_contents;
        } else if (v == "2" || v == "invisible") {
          mode = simos::HidepidMode::invisible;
        } else {
          out.note(Severity::error, file, line,
                   strformat("unknown hidepid value '%s' (want 0/1/2 or "
                             "off/noaccess/invisible)",
                             opt.substr(8).c_str()));
        }
      } else if (common::starts_with(opt, "gid=")) {
        if (parse_uint(std::string_view(opt).substr(4))) {
          gid_exemption = true;
        } else {
          out.note(Severity::error, file, line,
                   strformat("malformed gid= option '%s'", opt.c_str()));
        }
      }
      // rw, nosuid, nodev, ... : ordinary mount options, fine.
    }
    out.policy.hidepid = mode;
    out.policy.hidepid_gid_exemption = gid_exemption;
    out.set_provenance("hidepid", file, line);
    out.set_provenance("hidepid_gid_exemption", file, line);
  });
}

void parse_slurm_conf(std::string_view content, const std::string& file,
                      IngestedPolicy& out) {
  // ExclusiveUser= and OverSubscribe= interact (ExclusiveUser wins, as
  // with real Slurm partitions); collect both and resolve at the end.
  std::optional<bool> exclusive_user;
  int exclusive_user_line = 0;
  std::optional<bool> oversubscribe_exclusive;
  int oversubscribe_line = 0;
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const auto kv = split_key_value(t);
    if (!kv) {
      out.note(Severity::error, file, line,
               "malformed slurm.conf line (want Key=Value)");
      return;
    }
    if (kv->key == "privatedata") {
      bool jobs = false, accounting = false, usage = false;
      const std::vector<std::string> values = common::split(kv->value, ',');
      if (values.empty()) {
        out.note(Severity::error, file, line, "empty PrivateData value");
        return;
      }
      for (const std::string& v : values) {
        const std::string lv = lower(trim(v));
        if (lv == "jobs") {
          jobs = true;
        } else if (lv == "accounting") {
          accounting = true;
        } else if (lv == "usage") {
          usage = true;
        } else if (lv != "none") {
          out.note(Severity::error, file, line,
                   strformat("unknown PrivateData value '%s' (modeled: "
                             "jobs, accounting, usage, none)",
                             lv.c_str()));
        }
      }
      out.policy.private_data = {jobs, accounting, usage};
      out.set_provenance("private_data.jobs", file, line);
      out.set_provenance("private_data.accounting", file, line);
      out.set_provenance("private_data.usage", file, line);
    } else if (kv->key == "exclusiveuser") {
      const auto b = parse_bool(kv->value);
      if (!b) {
        out.note(Severity::error, file, line,
                 strformat("bad ExclusiveUser value '%s' (want YES/NO)",
                           std::string(kv->value).c_str()));
        return;
      }
      exclusive_user = *b;
      exclusive_user_line = line;
    } else if (kv->key == "oversubscribe") {
      const std::string v = lower(kv->value);
      if (v == "exclusive") {
        oversubscribe_exclusive = true;
      } else if (v == "yes" || v == "no" || v == "force") {
        oversubscribe_exclusive = false;
      } else {
        out.note(Severity::error, file, line,
                 strformat("unknown OverSubscribe value '%s' (want "
                           "YES/NO/FORCE/EXCLUSIVE)",
                           v.c_str()));
        return;
      }
      oversubscribe_line = line;
    } else if (kv->key == "usepam") {
      const auto b = parse_bool(kv->value);
      if (!b) {
        out.note(Severity::error, file, line,
                 strformat("bad UsePAM value '%s' (want 0/1)",
                           std::string(kv->value).c_str()));
        return;
      }
      out.policy.pam_slurm = *b;
      out.set_provenance("pam_slurm", file, line);
    } else if (kv->key == "epilog") {
      // The §IV-F scrub is an epilog script; recognize it by name.
      out.policy.gpu_epilog_scrub = contains(basename_of(kv->value),
                                             "scrub");
      out.set_provenance("gpu_epilog_scrub", file, line);
    }
    // Any other key: a real slurm.conf has dozens we do not model.
  });
  if (exclusive_user && *exclusive_user) {
    out.policy.sharing = sched::SharingPolicy::user_whole_node;
    out.set_provenance("sharing", file, exclusive_user_line);
  } else if (oversubscribe_exclusive && *oversubscribe_exclusive) {
    out.policy.sharing = sched::SharingPolicy::exclusive_job;
    out.set_provenance("sharing", file, oversubscribe_line);
  } else if (oversubscribe_exclusive) {
    out.policy.sharing = sched::SharingPolicy::shared;
    out.set_provenance("sharing", file, oversubscribe_line);
  } else if (exclusive_user) {  // ExclusiveUser=NO alone
    out.policy.sharing = sched::SharingPolicy::shared;
    out.set_provenance("sharing", file, exclusive_user_line);
  }
}

void parse_ubf_rules(std::string_view content, const std::string& file,
                     IngestedPolicy& out) {
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const std::vector<std::string_view> tokens = split_ws(t);
    const std::string verb = lower(tokens.front());
    if (verb == "inspect") {
      if (tokens.size() != 2) {
        out.note(Severity::error, file, line,
                 "malformed inspect rule (want: inspect LO:HI)");
        return;
      }
      const std::size_t colon = tokens[1].find(':');
      const auto lo = parse_port(tokens[1].substr(0, colon));
      std::optional<std::uint16_t> hi;
      if (colon != std::string_view::npos) {
        hi = parse_port(tokens[1].substr(colon + 1));
      }
      if (!lo || !hi || *lo > *hi) {
        out.note(Severity::error, file, line,
                 strformat("malformed port range '%s' (want LO:HI, "
                           "0-65535)",
                           std::string(tokens[1]).c_str()));
        return;
      }
      out.facts.ubf_inspect_from = *lo;
      out.set_provenance("facts.ubf_inspect_from", file, line);
    } else if (verb == "accept" || verb == "drop") {
      if (tokens.size() != 2) {
        out.note(Severity::error, file, line,
                 strformat("malformed %s rule (want: %s <match>)",
                           verb.c_str(), verb.c_str()));
        return;
      }
      const std::string match = lower(tokens[1]);
      const bool accept = verb == "accept";
      if (match == "same-user") {
        if (!accept) {
          out.note(Severity::warning, file, line,
                   "rule (a) disabled: same-user flows will be dropped");
        }
      } else if (match == "same-primary-group") {
        out.policy.ubf_group_peers = accept;
        out.set_provenance("ubf_group_peers", file, line);
      } else {
        out.note(Severity::error, file, line,
                 strformat("unknown match '%s' (want same-user or "
                           "same-primary-group)",
                           match.c_str()));
      }
    } else if (verb == "default") {
      const std::string action =
          tokens.size() == 2 ? lower(tokens[1]) : std::string();
      if (action == "drop") {
        out.policy.ubf = true;  // fail-closed daemon attached
      } else if (action == "accept") {
        out.policy.ubf = false;  // firewall effectively not deployed
      } else {
        out.note(Severity::error, file, line,
                 "malformed default rule (want: default drop|accept)");
        return;
      }
      out.set_provenance("ubf", file, line);
    } else {
      out.note(Severity::error, file, line,
               strformat("unrecognized ubf rule verb '%s'", verb.c_str()));
    }
  });
}

void parse_storage_conf(std::string_view content, const std::string& file,
                        IngestedPolicy& out) {
  std::optional<bool> owner_root;
  int owner_line = 0;
  std::optional<unsigned> homes_mode;
  int mode_line = 0;
  auto set_bool = [&](const char* knob, const KeyValue& kv, int line) {
    const auto b = parse_bool(kv.value);
    if (!b) {
      out.note(Severity::error, file, line,
               strformat("bad boolean '%s' for %s",
                         std::string(kv.value).c_str(), kv.key.c_str()));
      return;
    }
    [[maybe_unused]] const bool ok =
        set_knob_from_string(out.policy, knob, *b ? "1" : "0");
    out.set_provenance(knob, file, line);
  };
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const auto kv = split_key_value(t);
    if (!kv) {
      out.note(Severity::error, file, line,
               "malformed storage.conf line (want key = value)");
      return;
    }
    if (kv->key == "smask.enforce") {
      set_bool("fs.enforce_smask", *kv, line);
    } else if (kv->key == "smask.honor") {
      set_bool("fs.honor_smask", *kv, line);
    } else if (kv->key == "acl.restrict_named_users") {
      set_bool("fs.restrict_acl", *kv, line);
    } else if (kv->key == "homes.owner") {
      const std::string v = lower(kv->value);
      if (v == "root") {
        owner_root = true;
      } else if (v == "user") {
        owner_root = false;
      } else {
        out.note(Severity::error, file, line,
                 strformat("unknown homes.owner '%s' (want root or user)",
                           v.c_str()));
        return;
      }
      owner_line = line;
    } else if (kv->key == "homes.mode") {
      const auto mode = parse_octal(kv->value);
      if (!mode) {
        out.note(Severity::error, file, line,
                 strformat("malformed homes.mode '%s' (want octal)",
                           std::string(kv->value).c_str()));
        return;
      }
      homes_mode = *mode;
      mode_line = line;
    } else {
      out.note(Severity::warning, file, line,
               strformat("unknown storage.conf key '%s'",
                         kv->key.c_str()));
    }
  });
  if (owner_root) {
    out.policy.root_owned_homes = *owner_root;
    out.set_provenance("root_owned_homes", file, owner_line);
  }
  if (owner_root && *owner_root && homes_mode && (*homes_mode & 07) != 0) {
    out.note(Severity::warning, file, mode_line,
             strformat("root-owned homes with world bits (mode %o) defeat "
                       "the §IV-C point of the root-owned top level",
                       *homes_mode));
  }
}

void parse_portal_conf(std::string_view content, const std::string& file,
                       IngestedPolicy& out) {
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const auto kv = split_key_value(t);
    if (!kv) {
      out.note(Severity::error, file, line,
               "malformed portal.conf line (want key = value)");
      return;
    }
    if (kv->key == "listen") {
      if (!parse_port(kv->value)) {
        out.note(Severity::error, file, line,
                 strformat("malformed listen port '%s'",
                           std::string(kv->value).c_str()));
      }
    } else if (kv->key == "app_port") {
      const auto port = parse_port(kv->value);
      if (!port) {
        out.note(Severity::error, file, line,
                 strformat("malformed app_port '%s' (want 0-65535)",
                           std::string(kv->value).c_str()));
        return;
      }
      out.facts.service_port = *port;
      out.set_provenance("facts.service_port", file, line);
    } else if (kv->key == "forward_as") {
      if (lower(kv->value) != "authenticated-user") {
        out.note(Severity::warning, file, line,
                 strformat("portal forwarding as '%s' bypasses per-user "
                           "UBF attribution (§IV-E forwards as the "
                           "authenticated user)",
                           std::string(kv->value).c_str()));
      }
    } else {
      out.note(Severity::warning, file, line,
               strformat("unknown portal.conf key '%s'", kv->key.c_str()));
    }
  });
}

void parse_gpu_rules(std::string_view content, const std::string& file,
                     IngestedPolicy& out) {
  int device_count = 0;
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    const std::vector<std::string_view> tokens = split_ws(t);
    if (tokens.front() == "device") {
      if (tokens.size() != 2) {
        out.note(Severity::error, file, line,
                 "malformed device line (want: device <name>)");
        return;
      }
      if (device_count == 0) {
        out.facts.has_gpus = true;
        out.set_provenance("facts.has_gpus", file, line);
      }
      ++device_count;
      return;
    }
    const auto kv = split_key_value(t);
    if (kv && kv->key == "alloc_chgrp") {
      const std::string v = lower(kv->value);
      if (v == "upg") {
        out.policy.gpu_dev_binding = true;
      } else if (v == "none") {
        out.policy.gpu_dev_binding = false;
      } else {
        out.note(Severity::error, file, line,
                 strformat("unknown alloc_chgrp '%s' (want upg or none)",
                           v.c_str()));
        return;
      }
      out.set_provenance("gpu_dev_binding", file, line);
    } else {
      out.note(Severity::error, file, line,
               "unrecognized gpu.rules line (want alloc_chgrp = upg|none "
               "or device <name>)");
    }
  });
  if (device_count == 0) {
    out.facts.has_gpus = false;
    out.set_provenance("facts.has_gpus", file, 0);
  }
}

bool parse_artifact(const std::string& basename, std::string_view content,
                    const std::string& file, IngestedPolicy& out) {
  if (basename == "proc_mounts") {
    parse_proc_mounts(content, file, out);
  } else if (basename == "slurm.conf") {
    parse_slurm_conf(content, file, out);
  } else if (basename == "ubf.rules") {
    parse_ubf_rules(content, file, out);
  } else if (basename == "storage.conf") {
    parse_storage_conf(content, file, out);
  } else if (basename == "portal.conf") {
    parse_portal_conf(content, file, out);
  } else if (basename == "gpu.rules") {
    parse_gpu_rules(content, file, out);
  } else {
    return false;
  }
  return true;
}

void parse_intent_policy(std::string_view content, const std::string& file,
                         IngestedPolicy& out) {
  bool any_knob_set = false;
  for_each_line(content, [&](int line, std::string_view raw) {
    const std::string_view t = trim(raw);
    if (skippable(t)) return;
    // Keys here are registry knob names: case-sensitive, unlike the
    // slurm-style artifacts.
    const std::size_t eq = t.find('=');
    if (eq == std::string_view::npos) {
      out.note(Severity::error, file, line,
               "malformed intent line (want knob = value)");
      return;
    }
    const std::string key{trim(t.substr(0, eq))};
    const std::string value{trim(t.substr(eq + 1))};
    if (key == "base") {
      if (value == "baseline") {
        out.policy = core::SeparationPolicy::baseline();
      } else if (value == "hardened") {
        out.policy = core::SeparationPolicy::hardened();
      } else {
        out.note(Severity::error, file, line,
                 strformat("unknown base '%s' (want baseline or hardened)",
                           value.c_str()));
        return;
      }
      if (any_knob_set) {
        out.note(Severity::warning, file, line,
                 "base= after knob overrides resets them");
      }
      for (const KnobSpec& k : knobs()) {
        out.set_provenance(k.name, file, line);
      }
      return;
    }
    if (!set_knob_from_string(out.policy, key, value)) {
      out.note(Severity::error, file, line,
               strformat("unknown knob or value '%s = %s' (see heus-lint "
                         "--list-knobs)",
                         key.c_str(), value.c_str()));
      return;
    }
    any_knob_set = true;
    out.set_provenance(key, file, line);
  });
}

}  // namespace heus::analyze::ingest
