// Canonical-artifact emitter: the inverse of parsers.h.
//
// Renders any (SeparationPolicy, TopologyFacts) back to the per-node
// deployment artifacts, encoding every registry knob explicitly so that
// parse(emit(p)) == p over the entire knob lattice — the round-trip
// oracle tests/analyze/roundtrip_test.cpp enforces. This is also how a
// site bootstraps a snapshot: `heus-lint` reviews a policy, the emitter
// renders the artifacts operators deploy, and future `--site` runs lint
// what is actually installed.
#pragma once

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "core/policy.h"

namespace heus::analyze::ingest {

struct EmittedArtifact {
  std::string filename;  ///< basename, one of artifact_filenames()
  std::string content;
};

/// Render the full artifact set for one node. Every policy knob is
/// explicitly encoded; `facts` supplies the artifact-carried topology
/// (inspected port range, portal app port, GPU inventory).
[[nodiscard]] std::vector<EmittedArtifact> emit_artifacts(
    const core::SeparationPolicy& policy, const TopologyFacts& facts = {});

/// Render a declared-intent file (`base = baseline` plus every knob as a
/// `knob = value` override, in registry order).
[[nodiscard]] std::string emit_intent_policy(
    const core::SeparationPolicy& policy);

}  // namespace heus::analyze::ingest
