// Drift analysis: which nodes deviate from the declared intent, and
// which deviate from their peers — with the artifact line responsible.
//
// A fleet that deploys the paper's configuration is only separated if
// *every* node carries it; one login node whose /proc mount lost
// hidepid=2 reopens §IV-A cluster-wide for anyone who can reach that
// node. Drift findings are therefore gate failures, same as
// unexpectedly-open channels.
#pragma once

#include <string>
#include <vector>

#include "analyze/ingest/site.h"

namespace heus::analyze::ingest {

enum class DriftKind {
  vs_intent,  ///< node disagrees with intent.policy
  vs_peers,   ///< node disagrees with the majority of its peers
};

[[nodiscard]] const char* to_string(DriftKind k);

struct DriftFinding {
  DriftKind kind = DriftKind::vs_intent;
  std::string node;
  std::string knob;      ///< registry name, or "facts.ubf_inspect_from"
  std::string expected;  ///< intent value, or the peer-majority value
  std::string actual;
  Provenance where;  ///< the node's artifact line holding `actual`
};

/// Every (node × knob) disagreement with the snapshot's intent policy.
/// Empty when the snapshot declares no intent.
[[nodiscard]] std::vector<DriftFinding> drift_against_intent(
    const SiteSnapshot& site);

/// Every (node × knob) disagreement with the per-knob majority across
/// nodes (ties broken toward the lexicographically smallest value, so
/// reports are deterministic). Also covers facts.ubf_inspect_from — the
/// inspected port range must be uniform for the UBF story to hold —
/// but not facts.has_gpus / facts.service_port, which legitimately vary.
[[nodiscard]] std::vector<DriftFinding> drift_among_peers(
    const SiteSnapshot& site);

/// Both analyses, intent first, in stable (node, knob) order.
[[nodiscard]] std::vector<DriftFinding> analyze_drift(
    const SiteSnapshot& site);

}  // namespace heus::analyze::ingest
