#include "analyze/ingest/drift.h"

#include <map>

#include "analyze/policy_space.h"
#include "common/strings.h"

namespace heus::analyze::ingest {

namespace {

/// The drift-comparable view of one node: every registry knob plus the
/// artifact-carried facts that must be fleet-uniform.
std::vector<std::pair<std::string, std::string>> comparable_assignments(
    const IngestedPolicy& ingested) {
  auto out = knob_assignments(ingested.policy);
  out.emplace_back(
      "facts.ubf_inspect_from",
      common::strformat("%u",
                        static_cast<unsigned>(
                            ingested.facts.ubf_inspect_from)));
  return out;
}

}  // namespace

const char* to_string(DriftKind k) {
  switch (k) {
    case DriftKind::vs_intent: return "vs-intent";
    case DriftKind::vs_peers: return "vs-peers";
  }
  return "?";
}

std::vector<DriftFinding> drift_against_intent(const SiteSnapshot& site) {
  std::vector<DriftFinding> out;
  if (!site.intent) return out;
  const auto intent = knob_assignments(site.intent->policy);
  for (const NodeSnapshot& node : site.nodes) {
    const auto actual = knob_assignments(node.ingested.policy);
    for (std::size_t i = 0; i < intent.size(); ++i) {
      if (intent[i].second == actual[i].second) continue;
      out.push_back({DriftKind::vs_intent, node.name, intent[i].first,
                     intent[i].second, actual[i].second,
                     node.ingested.where(intent[i].first)});
    }
  }
  return out;
}

std::vector<DriftFinding> drift_among_peers(const SiteSnapshot& site) {
  std::vector<DriftFinding> out;
  if (site.nodes.size() < 2) return out;
  std::vector<std::vector<std::pair<std::string, std::string>>> per_node;
  per_node.reserve(site.nodes.size());
  for (const NodeSnapshot& node : site.nodes) {
    per_node.push_back(comparable_assignments(node.ingested));
  }
  const std::size_t knob_count = per_node.front().size();
  for (std::size_t k = 0; k < knob_count; ++k) {
    std::map<std::string, std::size_t> votes;  // value -> node count
    for (const auto& assignments : per_node) {
      ++votes[assignments[k].second];
    }
    if (votes.size() < 2) continue;
    // Majority value; std::map order breaks ties toward the smallest
    // value, keeping the report deterministic.
    std::string majority;
    std::size_t best = 0;
    for (const auto& [value, count] : votes) {
      if (count > best) {
        best = count;
        majority = value;
      }
    }
    const std::string& knob = per_node.front()[k].first;
    for (std::size_t n = 0; n < site.nodes.size(); ++n) {
      if (per_node[n][k].second == majority) continue;
      out.push_back({DriftKind::vs_peers, site.nodes[n].name, knob,
                     majority, per_node[n][k].second,
                     site.nodes[n].ingested.where(knob)});
    }
  }
  return out;
}

std::vector<DriftFinding> analyze_drift(const SiteSnapshot& site) {
  std::vector<DriftFinding> out = drift_against_intent(site);
  for (DriftFinding& f : drift_among_peers(site)) {
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace heus::analyze::ingest
