// Site review: the reconstructed per-node policies fed through the
// static analyzer and degraded census, merged with drift analysis, and
// rendered with artifact file:line citations in place of bare knob names
// — the `heus-lint --site` output.
#pragma once

#include <string>
#include <vector>

#include "analyze/degraded.h"
#include "analyze/ingest/drift.h"
#include "analyze/ingest/site.h"

namespace heus::analyze::ingest {

struct NodeReview {
  std::string name;
  AnalysisReport analysis;
  DegradedReport degraded;
};

struct SiteReview {
  SiteSnapshot site;
  std::vector<NodeReview> nodes;  ///< parallel to site.nodes
  std::vector<DriftFinding> drift;

  [[nodiscard]] std::size_t unexpected_open_total() const;
  /// Error-severity diagnostics across site, intent, and every node.
  [[nodiscard]] std::size_t error_count() const;
  /// The --gate criterion: no parse errors, no unexpectedly-open channel
  /// on any node, no drift.
  [[nodiscard]] bool gate_ok() const;
};

/// Analyze every node of `site`. Artifact-carried facts (inspected port
/// range, portal app port, GPU inventory) come from each node's parse;
/// `observer` contributes the account-database side (support staff,
/// Operator privilege, shared project group) that no artifact encodes.
[[nodiscard]] SiteReview review_site(SiteSnapshot site,
                                     const TopologyFacts& observer = {});

/// The knob whose artifact line a reviewer should read for `kind` when a
/// verdict has no load-bearing knob of its own (structural residuals,
/// doubly-held closures).
[[nodiscard]] const char* primary_knob(core::ChannelKind kind);

[[nodiscard]] std::string to_markdown(const SiteReview& review);
[[nodiscard]] std::string to_json(const SiteReview& review);

}  // namespace heus::analyze::ingest
