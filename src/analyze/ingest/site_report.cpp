#include "analyze/ingest/site_report.h"

#include "analyze/json_util.h"
#include "analyze/policy_space.h"
#include "obs/taxonomy.h"
#include "common/strings.h"

namespace heus::analyze::ingest {

using common::strformat;
using core::ChannelKind;
namespace knob = obs::knob;

std::size_t SiteReview::unexpected_open_total() const {
  std::size_t n = 0;
  for (const NodeReview& node : nodes) {
    n += node.analysis.unexpected_open_count();
  }
  return n;
}

std::size_t SiteReview::error_count() const {
  std::size_t n = 0;
  auto count = [&n](const std::vector<Diagnostic>& diags) {
    for (const Diagnostic& d : diags) {
      if (d.severity == Severity::error) ++n;
    }
  };
  count(site.site_diagnostics);
  if (site.intent) count(site.intent->diagnostics);
  for (const NodeSnapshot& node : site.nodes) {
    count(node.ingested.diagnostics);
  }
  return n;
}

bool SiteReview::gate_ok() const {
  return error_count() == 0 && unexpected_open_total() == 0 &&
         drift.empty();
}

SiteReview review_site(SiteSnapshot site, const TopologyFacts& observer) {
  SiteReview review;
  review.drift = analyze_drift(site);
  for (const NodeSnapshot& node : site.nodes) {
    TopologyFacts facts = node.ingested.facts;
    facts.observer_support_staff = observer.observer_support_staff;
    facts.observer_operator = observer.observer_operator;
    facts.shared_service_group = observer.shared_service_group;
    const StaticAnalyzer analyzer(facts);
    NodeReview nr;
    nr.name = node.name;
    nr.analysis = analyzer.analyze(node.ingested.policy);
    nr.degraded = degraded_census(analyzer, node.ingested.policy);
    review.nodes.push_back(std::move(nr));
  }
  review.site = std::move(site);
  return review;
}

const char* primary_knob(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::procfs_process_list:
    case ChannelKind::procfs_cmdline:
      return knob::hidepid;
    case ChannelKind::scheduler_queue:
      return knob::private_data_jobs;
    case ChannelKind::scheduler_accounting:
      return knob::private_data_accounting;
    case ChannelKind::scheduler_usage:
      return knob::private_data_usage;
    case ChannelKind::ssh_foreign_node:
      return knob::pam_slurm;
    case ChannelKind::fs_home_read:
      return knob::root_owned_homes;
    case ChannelKind::fs_tmp_content:
    case ChannelKind::fs_tmp_names:
    case ChannelKind::fs_devshm_content:
      return knob::fs_enforce_smask;
    case ChannelKind::fs_acl_user_grant:
      return knob::fs_restrict_acl;
    case ChannelKind::tcp_cross_user:
    case ChannelKind::udp_cross_user:
    case ChannelKind::abstract_uds:
    case ChannelKind::rdma_tcp_setup:
    case ChannelKind::rdma_native_cm:
    case ChannelKind::portal_foreign_app:
      return knob::ubf;
    case ChannelKind::gpu_residue:
      return knob::gpu_epilog_scrub;
  }
  return knob::ubf;
}

namespace {

/// The knobs whose artifact lines justify this finding: the load-bearing
/// knobs when attribution found any, the minimal hardening set for
/// multi-knob open channels, the channel's primary knob otherwise.
std::vector<std::string> cited_knobs(const ChannelFinding& f) {
  if (!f.responsible_knobs.empty()) return f.responsible_knobs;
  if (!f.minimal_hardening.empty()) return f.minimal_hardening;
  return {primary_knob(f.kind)};
}

std::string citation(const IngestedPolicy& ingested,
                     const ChannelFinding& f) {
  std::vector<std::string> parts;
  for (const std::string& knob : cited_knobs(f)) {
    parts.push_back(strformat("%s @ %s", knob.c_str(),
                              ingested.where(knob).to_string().c_str()));
  }
  return common::join(parts, ", ");
}

const NodeSnapshot& snapshot_of(const SiteReview& review,
                                std::size_t index) {
  return review.site.nodes[index];
}

std::string render_diagnostics(const SiteReview& review) {
  std::string out;
  auto render = [&out](const std::vector<Diagnostic>& diags) {
    for (const Diagnostic& d : diags) {
      out += strformat("- %s %s: %s\n", to_string(d.severity),
                       d.where.to_string().c_str(), d.message.c_str());
    }
  };
  render(review.site.site_diagnostics);
  if (review.site.intent) render(review.site.intent->diagnostics);
  for (const NodeSnapshot& node : review.site.nodes) {
    render(node.ingested.diagnostics);
  }
  return out;
}

}  // namespace

std::string to_markdown(const SiteReview& review) {
  std::string out = "# Site separation review\n\n";
  out += strformat("snapshot: `%s` — %zu node(s), intent: %s\n\n",
                   review.site.root.c_str(), review.site.nodes.size(),
                   review.site.intent ? "declared" : "none");

  out += "## Drift\n\n";
  if (review.drift.empty()) {
    out += "(none detected)\n";
  } else {
    out +=
        "| kind | node | knob | expected | actual | artifact |\n"
        "|---|---|---|---|---|---|\n";
    for (const DriftFinding& f : review.drift) {
      out += strformat("| %s | %s | %s | %s | %s | %s |\n",
                       to_string(f.kind), f.node.c_str(), f.knob.c_str(),
                       f.expected.c_str(), f.actual.c_str(),
                       f.where.to_string().c_str());
    }
  }

  const std::string diagnostics = render_diagnostics(review);
  out += "\n## Diagnostics\n\n";
  out += diagnostics.empty() ? "(none)\n" : diagnostics;

  out += "\n## Node review\n\n";
  out +=
      "| node | crossable | unexpected open | residual | "
      "fail-closed-dependent |\n|---|---|---|---|---|\n";
  for (const NodeReview& node : review.nodes) {
    out += strformat(
        "| %s | %zu/%zu | %zu | %zu | %zu |\n", node.name.c_str(),
        node.analysis.crossable_count(), node.analysis.findings.size(),
        node.analysis.unexpected_open_count(),
        node.analysis.residual_set().size(),
        node.degraded.count(DegradedBehavior::fail_closed_dependent));
  }

  for (std::size_t i = 0; i < review.nodes.size(); ++i) {
    const NodeReview& node = review.nodes[i];
    if (node.analysis.unexpected_open_count() == 0) continue;
    const IngestedPolicy& ingested = snapshot_of(review, i).ingested;
    out += strformat("\n### %s — unexpectedly open\n\n",
                     node.name.c_str());
    for (const ChannelFinding& f : node.analysis.findings) {
      if (f.verdict != Verdict::open) continue;
      out += strformat("- `%s` **OPEN** — %s [%s]\n",
                       core::to_string(f.kind), f.explanation.c_str(),
                       citation(ingested, f).c_str());
      if (!f.minimal_hardening.empty()) {
        std::vector<std::string> fixes;
        for (const std::string& knob : f.minimal_hardening) {
          fixes.push_back(strformat(
              "`%s` (currently set at %s)", knob.c_str(),
              ingested.where(knob).to_string().c_str()));
        }
        out += strformat("  - harden %s\n",
                         common::join(fixes, " and ").c_str());
      }
    }
  }

  out += strformat(
      "\nsite gate: %s (unexpected open: %zu, drift findings: %zu, parse "
      "errors: %zu)\n",
      review.gate_ok() ? "PASS" : "FAIL", review.unexpected_open_total(),
      review.drift.size(), review.error_count());
  return out;
}

namespace {

std::string json_provenance(const Provenance& p) {
  return strformat("{\"file\": \"%s\", \"line\": %d}",
                   json_escape(p.file).c_str(), p.line);
}

std::string json_diagnostics(const std::vector<Diagnostic>& diags) {
  std::string out = "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i != 0) out += ", ";
    out += strformat("{\"severity\": \"%s\", \"where\": %s, "
                     "\"message\": \"%s\"}",
                     to_string(diags[i].severity),
                     json_provenance(diags[i].where).c_str(),
                     json_escape(diags[i].message).c_str());
  }
  return out + "]";
}

}  // namespace

std::string to_json(const SiteReview& review) {
  std::string out = "{\n";
  out += strformat("  \"snapshot\": \"%s\",\n",
                   json_escape(review.site.root).c_str());
  if (review.site.intent) {
    out += strformat(
        "  \"intent\": {\"policy\": \"%s\", \"diagnostics\": %s},\n",
        json_escape(describe_policy(review.site.intent->policy)).c_str(),
        json_diagnostics(review.site.intent->diagnostics).c_str());
  } else {
    out += "  \"intent\": null,\n";
  }
  out += strformat("  \"site_diagnostics\": %s,\n",
                   json_diagnostics(review.site.site_diagnostics).c_str());

  out += "  \"drift\": [\n";
  for (std::size_t i = 0; i < review.drift.size(); ++i) {
    const DriftFinding& f = review.drift[i];
    out += strformat(
        "    {\"kind\": \"%s\", \"node\": \"%s\", \"knob\": \"%s\", "
        "\"expected\": \"%s\", \"actual\": \"%s\", \"where\": %s}%s\n",
        to_string(f.kind), json_escape(f.node).c_str(),
        json_escape(f.knob).c_str(), json_escape(f.expected).c_str(),
        json_escape(f.actual).c_str(), json_provenance(f.where).c_str(),
        i + 1 == review.drift.size() ? "" : ",");
  }
  out += "  ],\n";

  out += "  \"nodes\": [\n";
  for (std::size_t n = 0; n < review.nodes.size(); ++n) {
    const NodeReview& node = review.nodes[n];
    const IngestedPolicy& ingested = snapshot_of(review, n).ingested;
    out += strformat("    {\"name\": \"%s\",\n",
                     json_escape(node.name).c_str());
    out += strformat("     \"policy\": \"%s\",\n",
                     json_escape(
                         describe_policy(ingested.policy)).c_str());
    out += strformat(
        "     \"facts\": {\"service_port\": %u, \"ubf_inspect_from\": %u, "
        "\"has_gpus\": %s},\n",
        static_cast<unsigned>(ingested.facts.service_port),
        static_cast<unsigned>(ingested.facts.ubf_inspect_from),
        ingested.facts.has_gpus ? "true" : "false");
    out += strformat("     \"diagnostics\": %s,\n",
                     json_diagnostics(ingested.diagnostics).c_str());
    out += "     \"channels\": [\n";
    const auto& findings = node.analysis.findings;
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const ChannelFinding& f = findings[i];
      std::string cites = "[";
      const std::vector<std::string> knobs = cited_knobs(f);
      for (std::size_t c = 0; c < knobs.size(); ++c) {
        if (c != 0) cites += ", ";
        cites += strformat(
            "{\"knob\": \"%s\", \"where\": %s}",
            json_escape(knobs[c]).c_str(),
            json_provenance(ingested.where(knobs[c])).c_str());
      }
      cites += "]";
      out += strformat(
          "       {\"channel\": \"%s\", \"verdict\": \"%s\", "
          "\"explanation\": \"%s\", \"cited\": %s}%s\n",
          core::to_string(f.kind), to_string(f.verdict),
          json_escape(f.explanation).c_str(), cites.c_str(),
          i + 1 == findings.size() ? "" : ",");
    }
    out += "     ],\n";
    out += strformat(
        "     \"summary\": {\"crossable\": %zu, \"unexpected_open\": %zu, "
        "\"residual\": %zu, \"fail_closed_dependent\": %zu}}%s\n",
        node.analysis.crossable_count(),
        node.analysis.unexpected_open_count(),
        node.analysis.residual_set().size(),
        node.degraded.count(DegradedBehavior::fail_closed_dependent),
        n + 1 == review.nodes.size() ? "" : ",");
  }
  out += "  ],\n";
  out += strformat(
      "  \"gate\": {\"ok\": %s, \"unexpected_open\": %zu, "
      "\"drift_findings\": %zu, \"parse_errors\": %zu}\n",
      review.gate_ok() ? "true" : "false",
      review.unexpected_open_total(), review.drift.size(),
      review.error_count());
  out += "}\n";
  return out;
}

}  // namespace heus::analyze::ingest
