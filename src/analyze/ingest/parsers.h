// Parsers for the per-node deployment artifacts (see artifact.h). Each
// reads one artifact's text into an IngestedPolicy, recording the file
// and 1-based line that decided every knob it sets, and a Diagnostic for
// every line it cannot interpret — malformed input never crashes and
// never silently falls back to a knob default without a diagnostic.
//
// The accepted grammar per artifact is exactly what the canonical
// emitter (emit.h) produces, plus the lenient forms noted inline; the
// round-trip oracle in tests/analyze holds emit→parse to identity over
// the full knob lattice.
#pragma once

#include <string>
#include <string_view>

#include "analyze/ingest/artifact.h"

namespace heus::analyze::ingest {

/// fstab-style mount table; the `proc` line's hidepid=/gid= options
/// decide the §IV-A knobs. Non-proc mounts are ignored.
void parse_proc_mounts(std::string_view content, const std::string& file,
                       IngestedPolicy& out);

/// slurm.conf fragment: PrivateData=, ExclusiveUser=/OverSubscribe=,
/// UsePAM=, Epilog= (a *scrub* epilog is the §IV-F scrub). Keys are
/// case-insensitive; keys the model does not cover are ignored, as a
/// real slurm.conf carries dozens of them.
void parse_slurm_conf(std::string_view content, const std::string& file,
                      IngestedPolicy& out);

/// UBF ruleset (the nfqueue rules of §IV-D): `inspect LO:HI`,
/// `accept|drop same-user`, `accept|drop same-primary-group`,
/// `default drop|accept`.
void parse_ubf_rules(std::string_view content, const std::string& file,
                     IngestedPolicy& out);

/// smask/ACL/home-directory dump: `smask.enforce`, `smask.honor`,
/// `acl.restrict_named_users`, `homes.owner = root|user`,
/// `homes.mode = <octal>`.
void parse_storage_conf(std::string_view content, const std::string& file,
                        IngestedPolicy& out);

/// Portal gateway config (§IV-E): `listen`, `app_port` (the victim
/// service port the analyzer checks against the UBF's inspected range),
/// `forward_as`.
void parse_portal_conf(std::string_view content, const std::string& file,
                       IngestedPolicy& out);

/// GPU device policy (§IV-F): `alloc_chgrp = upg|none` (the per-alloc
/// chgrp of /dev/nvidiaN) plus one `device <name>` line per device; a
/// node with no device lines has no allocatable GPUs.
void parse_gpu_rules(std::string_view content, const std::string& file,
                     IngestedPolicy& out);

/// Dispatch on the artifact basename (see artifact_filenames()).
/// Returns false — leaving `out` untouched — for an unknown name.
bool parse_artifact(const std::string& basename, std::string_view content,
                    const std::string& file, IngestedPolicy& out);

/// Declared-intent policy: optional `base = baseline|hardened` plus
/// registry `knob = value` overrides (the set_knob_from_string
/// vocabulary, which is also what knob_value() emits).
void parse_intent_policy(std::string_view content, const std::string& file,
                         IngestedPolicy& out);

}  // namespace heus::analyze::ingest
