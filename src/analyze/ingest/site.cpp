#include "analyze/ingest/site.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analyze/ingest/parsers.h"
#include "common/strings.h"

namespace heus::analyze::ingest {

namespace fs = std::filesystem;
using common::strformat;

bool SiteSnapshot::has_errors() const {
  for (const Diagnostic& d : site_diagnostics) {
    if (d.severity == Severity::error) return true;
  }
  if (intent && intent->has_errors()) return true;
  for (const NodeSnapshot& n : nodes) {
    if (n.ingested.has_errors()) return true;
  }
  return false;
}

NodeSnapshot parse_node(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& artifacts) {
  NodeSnapshot node;
  node.name = name;
  const std::string prefix = "nodes/" + name + "/";
  std::set<std::string> seen;
  for (const auto& [basename, content] : artifacts) {
    const std::string file = prefix + basename;
    if (!parse_artifact(basename, content, file, node.ingested)) {
      node.ingested.note(Severity::error, file, 0,
                         strformat("unknown artifact '%s'",
                                   basename.c_str()));
      continue;
    }
    seen.insert(basename);
  }
  for (const std::string& expected : artifact_filenames()) {
    if (seen.count(expected) == 0) {
      node.ingested.note(
          Severity::warning, prefix + expected, 0,
          "artifact missing: its knobs sit at baseline defaults");
    }
  }
  node.ingested.finalize(prefix);
  return node;
}

namespace {

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

std::optional<SiteSnapshot> load_site(const std::string& dir,
                                      std::string* error) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error) {
      *error = strformat("'%s' is not a readable directory", dir.c_str());
    }
    return std::nullopt;
  }
  SiteSnapshot site;
  site.root = dir;

  const fs::path root(dir);
  if (fs::is_regular_file(root / "intent.policy", ec)) {
    IngestedPolicy intent;
    if (const auto content = read_file(root / "intent.policy")) {
      parse_intent_policy(*content, "intent.policy", intent);
      intent.finalize();
      site.intent = std::move(intent);
    } else {
      site.site_diagnostics.push_back(
          {Severity::error, Provenance{"intent.policy", 0},
           "intent.policy exists but could not be read"});
    }
  }

  const fs::path nodes_dir = root / "nodes";
  if (!fs::is_directory(nodes_dir, ec)) {
    site.site_diagnostics.push_back(
        {Severity::error, Provenance{"nodes", 0},
         "snapshot has no nodes/ directory"});
    return site;
  }
  std::vector<std::string> node_names;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(nodes_dir, ec)) {
    if (entry.is_directory()) {
      node_names.push_back(entry.path().filename().string());
    }
  }
  // directory_iterator order is filesystem-dependent; reports are not.
  std::sort(node_names.begin(), node_names.end());
  if (node_names.empty()) {
    site.site_diagnostics.push_back(
        {Severity::error, Provenance{"nodes", 0},
         "nodes/ contains no node directories"});
  }
  for (const std::string& name : node_names) {
    // Every regular file in the node directory goes through parse_node,
    // which flags unknown basenames as errors — a typo'd artifact name
    // ("slurm.cnf") must not mean the artifact silently goes unlinted.
    std::vector<std::string> basenames;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(nodes_dir / name, ec)) {
      if (entry.is_regular_file()) {
        basenames.push_back(entry.path().filename().string());
      }
    }
    std::sort(basenames.begin(), basenames.end());
    std::vector<std::pair<std::string, std::string>> artifacts;
    for (const std::string& basename : basenames) {
      if (const auto content = read_file(nodes_dir / name / basename)) {
        artifacts.emplace_back(basename, *content);
      } else {
        site.site_diagnostics.push_back(
            {Severity::error,
             Provenance{"nodes/" + name + "/" + basename, 0},
             "artifact exists but could not be read"});
      }
    }
    site.nodes.push_back(parse_node(name, artifacts));
  }
  return site;
}

}  // namespace heus::analyze::ingest
