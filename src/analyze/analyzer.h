// Static separation analyzer: the pre-deployment counterpart of
// core::LeakageAuditor.
//
// The dynamic auditor answers "which cross-user channels does this policy
// leave open" by building a simulated cluster and actively probing it.
// This module answers the same question from the SeparationPolicy alone,
// the way a security reviewer reads an iptables ruleset or a slurm.conf
// before deployment: each ChannelKind gets a verdict derived from the
// knobs (plus lightweight topology facts), an explanation naming the
// load-bearing knob(s), and — for unexpectedly-open channels — the
// smallest knob set that would close it.
//
// Correctness is established differentially: tests/analyze sweeps policy
// space and asserts these verdicts agree with LeakageAuditor::audit_pair
// on every (policy × channel) pair, so the analyzer doubles as a standing
// oracle over the simulation and the simulation over the analyzer.
#pragma once

#include <string>
#include <vector>

#include "analyze/policy_space.h"
#include "core/audit.h"
#include "core/policy.h"

namespace heus::analyze {

enum class Verdict {
  closed,    ///< the policy blocks the channel for these principals
  open,      ///< crossable, and the paper does not excuse it
  residual,  ///< crossable, but a documented structural residual (§V)
};

[[nodiscard]] const char* to_string(Verdict v);

/// True for open *and* residual (the channel is crossable either way).
[[nodiscard]] inline bool is_crossable(Verdict v) {
  return v != Verdict::closed;
}

/// The non-policy inputs a reviewer would pull from the site's account
/// database and cluster inventory: who the observer is relative to the
/// victim, and what hardware/mounts exist. Defaults model the auditor's
/// standard scenario — two unrelated unprivileged users on a GPU cluster.
struct TopologyFacts {
  /// Observer holds seepid staff membership (the hidepid gid= group).
  bool observer_support_staff = false;
  /// Observer holds the Slurm Operator privilege (PrivateData-exempt).
  bool observer_operator = false;
  /// The victim's services run under a primary group the observer is a
  /// member of (server started via `newgrp <project>` — UBF rule (b)).
  bool shared_service_group = false;
  /// The cluster has allocatable GPUs (gpu_residue is moot otherwise).
  bool has_gpus = true;
  /// Port the victim's services listen on; the UBF only inspects ports
  /// >= inspected_from (the appendix's "1024 and above").
  std::uint16_t service_port = 23456;
  std::uint16_t ubf_inspect_from = 1024;
};

/// Verdict plus attribution for one channel.
struct ChannelFinding {
  core::ChannelKind kind{};
  Verdict verdict = Verdict::closed;
  /// Prose: which mechanism decides this verdict under the given policy.
  std::string explanation;
  /// Knobs that are individually load-bearing: flipping any ONE of them
  /// (between its baseline and hardened endpoint) flips the verdict.
  /// Empty for structurally-decided channels (residuals) and for verdicts
  /// held by more than one independent mechanism at once.
  std::vector<std::string> responsible_knobs;
  /// Smallest knob set whose hardening closes the channel; empty unless
  /// verdict == open. (Residual channels have no closing knob set.)
  std::vector<std::string> minimal_hardening;
};

/// Full census for one policy.
struct AnalysisReport {
  core::SeparationPolicy policy;
  TopologyFacts facts;
  std::vector<ChannelFinding> findings;  ///< kAllChannels order

  [[nodiscard]] const ChannelFinding& finding(core::ChannelKind kind) const;
  [[nodiscard]] std::size_t crossable_count() const;
  /// Open channels the paper does NOT excuse — policy failures. Zero is
  /// the pass criterion for the pre-submit gate.
  [[nodiscard]] std::size_t unexpected_open_count() const;
  [[nodiscard]] std::vector<core::ChannelKind> residual_set() const;
};

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(TopologyFacts facts = {}) : facts_(facts) {}

  [[nodiscard]] const TopologyFacts& facts() const { return facts_; }

  /// The verdict function itself: pure, allocation-free, O(1) per
  /// channel. Everything else in this class is derived from it.
  [[nodiscard]] Verdict verdict(const core::SeparationPolicy& policy,
                                core::ChannelKind kind) const;

  /// Full census with explanations and minimal hardening suggestions.
  [[nodiscard]] AnalysisReport analyze(
      const core::SeparationPolicy& policy) const;

 private:
  [[nodiscard]] std::string explain(const core::SeparationPolicy& policy,
                                    core::ChannelKind kind,
                                    Verdict verdict) const;
  /// Brute-force search over hardening moves for the smallest knob set
  /// that closes `kind`, trying subsets of size 1, then 2, then 3.
  [[nodiscard]] std::vector<std::string> minimal_hardening(
      const core::SeparationPolicy& policy, core::ChannelKind kind) const;

  TopologyFacts facts_;
};

}  // namespace heus::analyze
