// Differential path oracle (ISSUE 8 tentpole, the dynamic half).
//
// The PathAnalyzer claims, statically, which multi-hop escalation paths
// a deployment admits. This oracle holds that claim to step-by-step
// agreement with the real stack: it stands up a live 2-cluster
// `fed::Federation`, walks every potential attack path of the
// ChannelGraph hop by hop as a real adversary account ("mallory"), and
// checks per hop that
//
//  (a) the hop crosses dynamically if and only if the graph says the
//      edge is present (under partition, fed-layer edges are expected
//      severed regardless of the static graph — availability is a
//      dynamic fact the graph does not model); and
//  (b) when a hop is blocked, a Decision naming the *predicted*
//      severing knob landed on one of the clusters' traces during that
//      hop's trace window.
//
// The standard run matrix covers hardened/hardened, baseline/baseline,
// both asymmetric pairs (the enforcing side's verdict must win in both
// directions), one single-knob ablation, and a partitioned WAN — which
// together execute 64+ multi-hop path trials and the cross-cluster
// paths through src/fed both healthy and partitioned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/path_analyzer.h"
#include "core/policy.h"

namespace heus::analyze {

/// One executed hop of one path trial.
struct HopTrial {
  std::string mechanism;
  std::uint32_t edge_index = 0;  ///< into ChannelGraph::edges()
  bool static_present = false;
  bool expected_cross = false;  ///< presence, minus partitioned fed hops
  bool crossed = false;
  std::string predicted_knob;  ///< expected on a blocked hop ("" = none)
  bool knob_observed = false;
  bool agree = false;
  std::string detail;
};

/// One path executed hop-by-hop (stops at the first blocked hop).
struct PathTrial {
  std::string label;
  std::size_t hops_total = 0;  ///< static length of the path
  bool multi_hop = false;
  bool cross_cluster = false;
  std::vector<HopTrial> hops;  ///< the executed prefix
  bool agree = false;
};

/// One federation instantiation: a pair of policies, optionally a
/// partitioned WAN, and every path trial executed against it.
struct OracleRun {
  std::string label;
  std::string policy_a;
  std::string policy_b;
  bool partitioned = false;
  std::vector<PathTrial> trials;
  std::size_t agree_count = 0;
  std::size_t multi_hop_count = 0;
  std::size_t cross_cluster_count = 0;
};

struct OracleReport {
  std::vector<OracleRun> runs;
  std::size_t trials = 0;
  std::size_t agreed = 0;
  std::size_t multi_hop = 0;      ///< trials with >= 2 static hops
  std::size_t cross_cluster = 0;  ///< trials crossing the WAN
  bool all_agree = false;
  std::vector<std::string> disagreements;
};

struct OracleOptions {
  core::SeparationPolicy policy_a;  ///< adversary's home cluster
  core::SeparationPolicy policy_b;  ///< federated peer
  bool partition_link = false;
  std::string label;
};

/// Execute every potential path of the (policy_a, policy_b) graph
/// against a live federation (partitioned runs execute the
/// cross-cluster paths, repeated until the breaker trips).
[[nodiscard]] OracleRun run_path_oracle(const OracleOptions& opts);

/// The standard 6-run matrix (see file comment); the CI-facing entry.
[[nodiscard]] OracleReport run_standard_oracle();

[[nodiscard]] std::string oracle_to_markdown(const OracleReport& report);

}  // namespace heus::analyze
