// JSON rendering primitives shared by the report emitters (report.cpp,
// ingest/site_report.cpp). Escaping lives in exactly one place so the
// golden-file + real-parser tests in tests/ guard every JSON document the
// analyzer family produces.
#pragma once

#include <string>
#include <vector>

namespace heus::analyze {

/// Escape `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, and all control characters below 0x20).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render `items` as a JSON array of strings.
[[nodiscard]] std::string json_string_array(
    const std::vector<std::string>& items);

/// Shared `--json[=PATH]` flag handling for every heus-lint subcommand:
/// bare `--json` sends the JSON document to stdout, `--json=PATH`
/// writes it to PATH (in addition to whatever --format prints). One
/// parser so the subcommands cannot drift on flag spelling.
class JsonSink {
 public:
  /// Consume `arg` if it is `--json` or `--json=PATH`; returns whether
  /// it was consumed.
  bool parse(const std::string& arg);

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Destination path; empty means stdout.
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool to_stdout() const {
    return enabled_ && path_.empty();
  }

  /// Emit `json` to the configured destination. No-op (true) when the
  /// sink is not enabled; false on I/O failure.
  bool write(const std::string& json) const;

 private:
  bool enabled_ = false;
  std::string path_;
};

}  // namespace heus::analyze
