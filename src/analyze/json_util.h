// JSON rendering primitives shared by the report emitters (report.cpp,
// ingest/site_report.cpp). Escaping lives in exactly one place so the
// golden-file + real-parser tests in tests/ guard every JSON document the
// analyzer family produces.
#pragma once

#include <string>
#include <vector>

namespace heus::analyze {

/// Escape `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, and all control characters below 0x20).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Render `items` as a JSON array of strings.
[[nodiscard]] std::string json_string_array(
    const std::vector<std::string>& items);

}  // namespace heus::analyze
