#include "analyze/knob_lint.h"

#include <cstring>
#include <map>
#include <set>

#include "analyze/channel_graph.h"
#include "analyze/json_util.h"
#include "analyze/policy_space.h"
#include "common/strings.h"
#include "core/audit.h"
#include "core/cluster.h"
#include "fed/federation.h"
#include "obs/taxonomy.h"
#include "simos/credentials.h"

namespace heus::analyze {

using common::strformat;
using core::SeparationPolicy;

namespace {

constexpr PrincipalClass kAllClasses[] = {
    PrincipalClass::unprivileged,
    PrincipalClass::support_staff,
    PrincipalClass::operator_role,
    PrincipalClass::project_peer,
};

/// Does flipping `k` change any verdict or any graph-edge presence,
/// under any principal class, anywhere on the differential corpus?
bool analyzer_references(const KnobSpec& k) {
  const std::vector<NamedPolicy> corpus = differential_sweep(0, 1);
  for (const PrincipalClass cls : kAllClasses) {
    const StaticAnalyzer analyzer(facts_for(cls, TopologyFacts{}));
    for (const NamedPolicy& np : corpus) {
      const SeparationPolicy flipped = flip_knob(np.policy, k);
      for (const obs::ChannelKind kind : obs::kAllChannels) {
        if (analyzer.verdict(np.policy, kind) !=
            analyzer.verdict(flipped, kind)) {
          return true;
        }
      }
      for (const EdgeSpec& e : edge_catalog()) {
        if (e.structurally_present != nullptr &&
            e.structurally_present(np.policy) !=
                e.structurally_present(flipped)) {
          return true;
        }
      }
    }
  }
  return false;
}

/// The federation knobs are referenced by the fed-layer edges: the
/// PathOracle predicts fed.fail_closed / fed.breaker as the severing
/// knob of the WAN hop under partition (channel_graph.cpp wan_knob +
/// breaker-table tag).
bool fed_edge_references(const char* name) {
  for (const EdgeSpec& e : edge_catalog()) {
    if (std::strcmp(e.layer, "fed") != 0) continue;
    if (e.wan_knob != nullptr && std::strcmp(e.wan_knob, name) == 0) {
      return true;
    }
    if (std::strcmp(name, obs::knob::fed_breaker) == 0 &&
        e.lifecycle != nullptr) {
      return true;
    }
  }
  return false;
}

using Census = std::map<std::string, std::set<std::string>>;

void absorb(Census& census, const obs::DecisionTrace& trace) {
  for (const obs::Decision& d : trace.snapshot()) {
    if (d.knob != nullptr) {
      census[d.knob].insert(obs::to_string(d.point));
    }
  }
}

class PartitionedLink final : public fed::LinkFaultModel {
 public:
  [[nodiscard]] bool partitioned(fed::ClusterIdx,
                                 fed::ClusterIdx) const override {
    return true;
  }
  [[nodiscard]] std::int64_t extra_ns(fed::ClusterIdx,
                                      fed::ClusterIdx) const override {
    return 0;
  }
  bool drop_message(fed::ClusterIdx, fed::ClusterIdx) override {
    return true;
  }
};

/// The scripted enforcement census: one hardened cluster pair, every
/// attributable Decision site exercised at least once.
Census run_census() {
  core::ClusterConfig cfg;
  cfg.compute_nodes = 1;
  cfg.login_nodes = 1;
  cfg.cpus_per_node = 8;
  cfg.gpus_per_node = 1;
  cfg.gpu_mem_bytes = 1024;
  cfg.policy = SeparationPolicy::hardened();
  core::Cluster a(cfg);
  a.trace().set_capacity(65536);
  a.trace().set_enabled(true);
  const Uid victim = *a.add_user("victim");
  const Uid observer = *a.add_user("observer");

  // The audit probes cover hidepid, private_data.*, pam_slurm,
  // root_owned_homes, fs.enforce_smask, fs.restrict_acl, ubf and
  // gpu_epilog_scrub.
  core::LeakageAuditor auditor(&a);
  (void)auditor.audit_pair(victim, observer);

  // gpu_dev_binding: a foreign /dev/nvidiaN open while the victim's
  // job holds the device; sharing: a placement refusal against the
  // victim's whole-node binding.
  {
    auto vs = a.login(victim);
    auto os = a.login(observer);
    sched::JobSpec spec;
    spec.name = "census-gpu-holder";
    spec.gpus_per_task = 1;
    spec.duration_ns = 3600 * common::kSecond;
    auto job = a.submit(*vs, spec);
    if (job) {
      a.scheduler().step();
      const sched::Job* j = a.scheduler().find_job(*job);
      if (j != nullptr && !j->allocations.empty()) {
        core::Node& nd = a.node(j->allocations.front().node);
        const GpuId g = j->allocations.front().gpus.front();
        (void)nd.local_fs().open_device(
            os->cred, core::Node::gpu_dev_path(g.value()),
            vfs::Access::read);
      }
      sched::JobSpec probe;
      probe.name = "census-placement-probe";
      probe.duration_ns = common::kSecond;
      auto blocked = a.submit(*os, probe);
      a.scheduler().step();
      if (blocked) (void)a.scheduler().cancel(os->cred, *blocked);
      (void)a.scheduler().cancel(vs->cred, *job);
      a.run_jobs();
    }
    a.logout(*vs);
    a.logout(*os);
  }

  // ubf_group_peers: a cross-user connect admitted because the victim
  // serves under a project group the observer belongs to (UBF rule b).
  {
    const Gid project = *a.create_project("census-proj", victim);
    (void)a.add_to_project(victim, project, observer);
    auto vs = a.login(victim);
    auto os = a.login(observer);
    const auto vcred = *simos::newgrp(a.users(), vs->cred, project);
    net::Network& nw = a.network();
    const HostId vhost = a.node(vs->node).host();
    (void)nw.listen(vhost, vcred, vs->shell, net::Proto::tcp, 25000);
    auto flow = nw.connect(a.node(os->node).host(), os->cred, os->shell,
                           vhost, net::Proto::tcp, 25000);
    if (flow) (void)nw.close(*flow);
    (void)nw.close_listener(vhost, net::Proto::tcp, 25000);
    a.logout(*vs);
    a.logout(*os);
  }

  // fed.fail_closed / fed.breaker: remote ops against a partitioned
  // peer until the breaker trips.
  Census census;
  {
    core::ClusterConfig bcfg;
    bcfg.compute_nodes = 1;
    bcfg.login_nodes = 1;
    bcfg.cpus_per_node = 8;
    bcfg.policy = SeparationPolicy::hardened();
    core::Cluster b(bcfg);
    const Uid peer_uid = *b.add_user("victim");
    fed::Federation federation;
    (void)federation.add_cluster("a", &a);
    (void)federation.add_cluster("b", &b);
    PartitionedLink wan;
    federation.set_link_faults(&wan);
    for (int i = 0; i < 5; ++i) {
      (void)federation.remote_ident(0, 1, peer_uid);
    }
    absorb(census, a.trace());
    absorb(census, b.trace());
  }
  return census;
}

struct Exemption {
  const char* knob;
  const char* reason;
};

/// Documented enforcement exemptions: knobs whose runtime effect is
/// the *absence* of another knob's decision, so no site can name them.
constexpr Exemption kExemptions[] = {
    {"hidepid_gid_exemption",
     "staff exemption manifests as the absence of hidepid's deny; "
     "the deny rows name hidepid"},
    {"fs.honor_smask",
     "decides whether the smask clamp applies at all; the clamp rows "
     "name fs.enforce_smask"},
};

/// Documented static-side exemptions: knobs whose hardened surface the
/// channel census does not model as a ChannelKind, so no verdict or
/// graph edge can flip on them — their evidence is purely dynamic.
constexpr Exemption kStaticExemptions[] = {
    {"gpu_dev_binding",
     "hardens the foreign /dev/nvidiaN DAC surface, which §IV-F models "
     "as enforcement only (no ChannelKind); the gpu-dev-access "
     "decision site carries its evidence"},
};

}  // namespace

KnobLintReport knob_lint() { return knob_lint(obs::all_knob_names()); }

KnobLintReport knob_lint(std::span<const char* const> names) {
  KnobLintReport report;
  const Census census = run_census();

  for (const char* name : names) {
    KnobEvidence ev;
    ev.knob = name;
    const KnobSpec* spec = find_knob(name);
    ev.in_registry = spec != nullptr;
    ev.fed_knob = std::strcmp(name, obs::knob::fed_fail_closed) == 0 ||
                  std::strcmp(name, obs::knob::fed_breaker) == 0;
    if (!ev.in_registry && !ev.fed_knob) {
      report.findings.push_back(strformat(
          "knob '%s' is neither in the policy-space registry nor a "
          "federation deployment knob (misspelled or orphaned?)",
          name));
    }
    ev.analyzer_referenced = spec != nullptr
                                 ? analyzer_references(*spec)
                                 : fed_edge_references(name);
    for (const Exemption& ex : kStaticExemptions) {
      if (std::strcmp(ex.knob, name) == 0) {
        ev.analyzer_exempt = true;
        ev.analyzer_exemption_reason = ex.reason;
      }
    }
    if ((ev.in_registry || ev.fed_knob) && !ev.analyzer_referenced &&
        !ev.analyzer_exempt) {
      report.findings.push_back(strformat(
          "knob '%s' no longer changes any analyzer verdict or "
          "channel-graph edge (dead on the static side)",
          name));
    }
    for (const Exemption& ex : kExemptions) {
      if (std::strcmp(ex.knob, name) == 0) {
        ev.enforcement_exempt = true;
        ev.exemption_reason = ex.reason;
      }
    }
    if (const auto it = census.find(name); it != census.end()) {
      ev.decision_points.assign(it->second.begin(), it->second.end());
    }
    if (!ev.enforcement_exempt && ev.decision_points.empty()) {
      report.findings.push_back(strformat(
          "knob '%s' was never named by a Decision-recording "
          "enforcement site during the census run",
          name));
    }
    report.knobs.push_back(std::move(ev));
  }

  // Reverse direction: every knob the runtime attributes must be in
  // the shared name list.
  for (const auto& [knob, points] : census) {
    bool known = false;
    for (const char* name : names) {
      if (knob == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      report.findings.push_back(strformat(
          "runtime decisions attribute knob '%s', which is missing "
          "from obs::all_knob_names()",
          knob.c_str()));
    }
  }
  return report;
}

std::string knob_lint_to_markdown(const KnobLintReport& report) {
  std::string out = "## dead-knob lint\n\n";
  out += "| knob | registry | analyzer | enforcement sites |\n";
  out += "|------|----------|----------|-------------------|\n";
  for (const KnobEvidence& ev : report.knobs) {
    std::string sites;
    for (const std::string& p : ev.decision_points) {
      sites += sites.empty() ? p : ", " + p;
    }
    if (ev.enforcement_exempt) {
      sites = "exempt: " + ev.exemption_reason;
    }
    out += strformat("| %s | %s | %s | %s |\n", ev.knob.c_str(),
                     ev.in_registry  ? "yes"
                     : ev.fed_knob   ? "fed"
                                     : "NO",
                     ev.analyzer_referenced ? "yes"
                     : ev.analyzer_exempt   ? "exempt"
                                            : "NO",
                     sites.empty() ? "NONE" : sites.c_str());
  }
  out += strformat("\nfindings: %zu\n", report.findings.size());
  for (const std::string& f : report.findings) {
    out += "- " + f + "\n";
  }
  return out;
}

std::string knob_lint_to_json(const KnobLintReport& report) {
  std::string out = "{\"knobs\": [\n";
  for (std::size_t i = 0; i < report.knobs.size(); ++i) {
    const KnobEvidence& ev = report.knobs[i];
    out += strformat(
        "    {\"knob\": \"%s\", \"in_registry\": %s, \"fed_knob\": %s, "
        "\"analyzer_referenced\": %s, \"analyzer_exempt\": %s, "
        "\"enforcement_exempt\": %s, \"decision_points\": %s}",
        json_escape(ev.knob).c_str(), ev.in_registry ? "true" : "false",
        ev.fed_knob ? "true" : "false",
        ev.analyzer_referenced ? "true" : "false",
        ev.analyzer_exempt ? "true" : "false",
        ev.enforcement_exempt ? "true" : "false",
        json_string_array(ev.decision_points).c_str());
    out += i + 1 < report.knobs.size() ? ",\n" : "\n";
  }
  out += "  ], \"findings\": " + json_string_array(report.findings);
  out += strformat(", \"clean\": %s}",
                   report.clean() ? "true" : "false");
  return out;
}

}  // namespace heus::analyze
