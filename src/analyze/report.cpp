#include "analyze/report.h"

#include "analyze/json_util.h"
#include "common/strings.h"

namespace heus::analyze {

using common::strformat;

namespace {

std::string join_names(const std::vector<std::string>& names,
                       const char* empty) {
  if (names.empty()) return empty;
  return common::join(names, ", ");
}

}  // namespace

std::string to_markdown(const AnalysisReport& report) {
  std::string out = "# Static separation analysis\n\n";
  out += strformat("policy: `%s`\n\n",
                   describe_policy(report.policy).c_str());
  out +=
      "| channel | § | verdict | responsible knobs | explanation |\n"
      "|---|---|---|---|---|\n";
  for (const ChannelFinding& f : report.findings) {
    const char* verdict = f.verdict == Verdict::open
                              ? "**OPEN**"
                              : to_string(f.verdict);
    out += strformat("| %s | %s | %s | %s | %s |\n",
                     core::to_string(f.kind), core::channel_section(f.kind),
                     verdict,
                     join_names(f.responsible_knobs, "—").c_str(),
                     f.explanation.c_str());
  }
  out += strformat(
      "\ncrossable: %zu / %zu (unexpected open: %zu, residual: %zu)\n",
      report.crossable_count(), report.findings.size(),
      report.unexpected_open_count(), report.residual_set().size());
  bool any = false;
  for (const ChannelFinding& f : report.findings) {
    if (f.verdict != Verdict::open) continue;
    if (!any) {
      out += "\n## Minimal hardening\n\n";
      any = true;
    }
    if (f.minimal_hardening.empty()) {
      // Possible when a topology fact (e.g. a service port below the
      // UBF's inspected range) holds the channel open: no knob set
      // closes it, only changing the deployment does.
      out += strformat(
          "- `%s`: no knob closes this under the given topology facts\n",
          core::to_string(f.kind));
    } else {
      out += strformat("- `%s`: harden %s\n", core::to_string(f.kind),
                       join_names(f.minimal_hardening, "(none)").c_str());
    }
  }
  return out;
}

std::string to_json(const AnalysisReport& report) {
  std::string out = "{\n";
  out += strformat("  \"policy\": \"%s\",\n",
                   json_escape(describe_policy(report.policy)).c_str());
  out += strformat(
      "  \"facts\": {\"observer_support_staff\": %s, "
      "\"observer_operator\": %s, \"shared_service_group\": %s, "
      "\"has_gpus\": %s, \"service_port\": %u},\n",
      report.facts.observer_support_staff ? "true" : "false",
      report.facts.observer_operator ? "true" : "false",
      report.facts.shared_service_group ? "true" : "false",
      report.facts.has_gpus ? "true" : "false",
      static_cast<unsigned>(report.facts.service_port));
  out += "  \"channels\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const ChannelFinding& f = report.findings[i];
    out += strformat(
        "    {\"channel\": \"%s\", \"section\": \"%s\", "
        "\"verdict\": \"%s\", \"explanation\": \"%s\", "
        "\"responsible_knobs\": %s, \"minimal_hardening\": %s}%s\n",
        core::to_string(f.kind), core::channel_section(f.kind),
        to_string(f.verdict), json_escape(f.explanation).c_str(),
        json_string_array(f.responsible_knobs).c_str(),
        json_string_array(f.minimal_hardening).c_str(),
        i + 1 == report.findings.size() ? "" : ",");
  }
  out += "  ],\n";
  out += strformat(
      "  \"summary\": {\"channels\": %zu, \"crossable\": %zu, "
      "\"unexpected_open\": %zu, \"residual\": %zu}\n",
      report.findings.size(), report.crossable_count(),
      report.unexpected_open_count(), report.residual_set().size());
  out += "}\n";
  return out;
}

}  // namespace heus::analyze
