#include "analyze/analyzer.h"

#include <cassert>

#include "common/strings.h"

namespace heus::analyze {

using common::strformat;
using core::ChannelKind;
using core::SeparationPolicy;

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::closed: return "closed";
    case Verdict::open: return "open";
    case Verdict::residual: return "residual";
  }
  return "?";
}

namespace {

/// The smask patch protects a filesystem only when the kernel patch is
/// installed AND the filesystem honors it (the Lustre LU-4746 interplay:
/// either flag alone leaves world bits reachable through chmod/create).
bool smask_effective(const SeparationPolicy& p) {
  return p.fs.enforce_smask && p.fs.honor_smask;
}

/// Does the UBF stand between the observer and this victim service?
bool ubf_governs(const SeparationPolicy& p, const TopologyFacts& f) {
  if (!p.ubf) return false;
  if (f.service_port < f.ubf_inspect_from) return false;
  if (p.ubf_group_peers && f.shared_service_group) return false;
  return true;
}

/// Is the channel crossable by the observer under (policy, facts)?
/// This is the static mirror of LeakageAuditor's probe outcomes; the
/// differential test in tests/analyze holds the two to exact agreement.
bool crossable(const SeparationPolicy& p, const TopologyFacts& f,
               ChannelKind kind) {
  const bool hidepid_exempt =
      f.observer_support_staff && p.hidepid_gid_exemption;
  switch (kind) {
    // §IV-A: procfs visibility is decided by the hidepid mount mode.
    // Mode 1 keeps foreign pid dirents statable (uid is visible) while
    // protecting their contents; only mode 2 hides the listing.
    case ChannelKind::procfs_process_list:
      return hidepid_exempt ||
             p.hidepid != simos::HidepidMode::invisible;
    case ChannelKind::procfs_cmdline:
      return hidepid_exempt || p.hidepid == simos::HidepidMode::off;

    // §IV-B: PrivateData filters each query family independently;
    // Operators are exempt. pam_slurm gates ssh on "has a job there".
    case ChannelKind::scheduler_queue:
      return f.observer_operator || !p.private_data.jobs;
    case ChannelKind::scheduler_accounting:
      return f.observer_operator || !p.private_data.accounting;
    case ChannelKind::scheduler_usage:
      return f.observer_operator || !p.private_data.usage;
    case ChannelKind::ssh_foreign_node:
      return !p.pam_slurm;

    // §IV-C: the home leak needs a world-traversable home (blocked by
    // root-owned homes) AND a world-readable file (blocked by an
    // effective smask stripping the chmod). /tmp and /dev/shm content
    // only has the smask between it and the observer. Names in
    // world-writable directories are structural (residual). The setfacl
    // user-grant needs the grant allowed (ACL-restriction patch) and a
    // home the victim can open for traversal (root-owned homes again).
    case ChannelKind::fs_home_read:
      return !p.root_owned_homes && !smask_effective(p);
    case ChannelKind::fs_tmp_content:
    case ChannelKind::fs_devshm_content:
      return !smask_effective(p);
    case ChannelKind::fs_tmp_names:
      return true;
    case ChannelKind::fs_acl_user_grant:
      return !p.fs.restrict_acl && !p.root_owned_homes;

    // §IV-D: the UBF inspects new TCP/UDP flows (and therefore the RDMA
    // TCP control channel); abstract unix sockets and the native IB CM
    // never traverse the nfqueue hook (residual).
    case ChannelKind::tcp_cross_user:
    case ChannelKind::udp_cross_user:
    case ChannelKind::rdma_tcp_setup:
      return !ubf_governs(p, f);
    case ChannelKind::abstract_uds:
    case ChannelKind::rdma_native_cm:
      return true;

    // §IV-E: the portal forwards as the authenticated observer, so the
    // UBF rules govern the forwarded hop exactly like direct TCP.
    case ChannelKind::portal_foreign_app:
      return !ubf_governs(p, f);

    // §IV-F: residue survives iff nothing scrubs between tenants. /dev
    // binding narrows who can open a device, but the observer reads the
    // residue through their OWN legitimately-allocated device, so only
    // the epilog scrub closes this channel.
    case ChannelKind::gpu_residue:
      return f.has_gpus && !p.gpu_epilog_scrub;
  }
  return false;
}

}  // namespace

const ChannelFinding& AnalysisReport::finding(ChannelKind kind) const {
  for (const ChannelFinding& f : findings) {
    if (f.kind == kind) return f;
  }
  assert(false && "findings cover every ChannelKind");
  return findings.front();
}

std::size_t AnalysisReport::crossable_count() const {
  std::size_t n = 0;
  for (const ChannelFinding& f : findings) {
    if (is_crossable(f.verdict)) ++n;
  }
  return n;
}

std::size_t AnalysisReport::unexpected_open_count() const {
  std::size_t n = 0;
  for (const ChannelFinding& f : findings) {
    if (f.verdict == Verdict::open) ++n;
  }
  return n;
}

std::vector<ChannelKind> AnalysisReport::residual_set() const {
  std::vector<ChannelKind> out;
  for (const ChannelFinding& f : findings) {
    if (f.verdict == Verdict::residual) out.push_back(f.kind);
  }
  return out;
}

Verdict StaticAnalyzer::verdict(const SeparationPolicy& policy,
                                ChannelKind kind) const {
  if (!crossable(policy, facts_, kind)) return Verdict::closed;
  return core::is_documented_residual(kind) ? Verdict::residual
                                            : Verdict::open;
}

AnalysisReport StaticAnalyzer::analyze(
    const SeparationPolicy& policy) const {
  AnalysisReport report;
  report.policy = policy;
  report.facts = facts_;
  report.findings.reserve(core::kAllChannels.size());
  for (ChannelKind kind : core::kAllChannels) {
    ChannelFinding f;
    f.kind = kind;
    f.verdict = verdict(policy, kind);
    f.explanation = explain(policy, kind, f.verdict);
    // Load-bearing knobs, by construction: a knob is responsible iff
    // flipping it (alone) flips the verdict between crossable and closed.
    for (const KnobSpec& knob : knobs()) {
      const Verdict flipped = verdict(flip_knob(policy, knob), kind);
      if (is_crossable(flipped) != is_crossable(f.verdict)) {
        f.responsible_knobs.emplace_back(knob.name);
      }
    }
    if (f.verdict == Verdict::open) {
      f.minimal_hardening = minimal_hardening(policy, kind);
    }
    report.findings.push_back(std::move(f));
  }
  return report;
}

std::vector<std::string> StaticAnalyzer::minimal_hardening(
    const SeparationPolicy& policy, ChannelKind kind) const {
  // Candidate moves: harden any knob not already at its hardened value.
  std::vector<const KnobSpec*> moves;
  for (const KnobSpec& knob : knobs()) {
    if (!knob.is_hardened(policy)) moves.push_back(&knob);
  }
  auto closes = [&](const std::vector<const KnobSpec*>& subset) {
    SeparationPolicy p = policy;
    for (const KnobSpec* knob : subset) knob->set(p, true);
    return verdict(p, kind) == Verdict::closed;
  };
  for (const KnobSpec* a : moves) {
    if (closes({a})) return {a->name};
  }
  for (std::size_t i = 0; i < moves.size(); ++i) {
    for (std::size_t j = i + 1; j < moves.size(); ++j) {
      if (closes({moves[i], moves[j]})) {
        return {moves[i]->name, moves[j]->name};
      }
    }
  }
  for (std::size_t i = 0; i < moves.size(); ++i) {
    for (std::size_t j = i + 1; j < moves.size(); ++j) {
      for (std::size_t k = j + 1; k < moves.size(); ++k) {
        if (closes({moves[i], moves[j], moves[k]})) {
          return {moves[i]->name, moves[j]->name, moves[k]->name};
        }
      }
    }
  }
  return {};  // not closable by hardening (shouldn't happen: residuals
              // never reach here and every open channel has a knob)
}

std::string StaticAnalyzer::explain(const SeparationPolicy& p,
                                    ChannelKind kind,
                                    Verdict verdict) const {
  const bool exempt =
      facts_.observer_support_staff && p.hidepid_gid_exemption;
  switch (kind) {
    case ChannelKind::procfs_process_list:
      if (exempt) {
        return "observer is in the seepid staff group and the gid= mount "
               "flag exempts it from hidepid";
      }
      return verdict == Verdict::closed
                 ? "hidepid=2 removes foreign pid directories from /proc "
                   "entirely"
                 : strformat("hidepid=%d leaves foreign pid directories "
                             "statable, so the victim's pids (and their "
                             "uids) enumerate",
                             static_cast<int>(p.hidepid));
    case ChannelKind::procfs_cmdline:
      if (exempt) {
        return "observer is in the seepid staff group and the gid= mount "
               "flag exempts it from hidepid";
      }
      return verdict == Verdict::closed
                 ? strformat("hidepid=%d protects /proc/<pid> contents "
                             "(cmdline, status) of foreign processes",
                             static_cast<int>(p.hidepid))
                 : "hidepid=0 leaves /proc/<pid>/cmdline of every user "
                   "world-readable, secrets in argv included";
    case ChannelKind::scheduler_queue:
      if (facts_.observer_operator) {
        return "observer holds the Slurm Operator privilege, which is "
               "exempt from PrivateData filtering";
      }
      return verdict == Verdict::closed
                 ? "PrivateData=jobs restricts squeue to the caller's own "
                   "entries"
                 : "without PrivateData=jobs, squeue shows every user's "
                   "job names and commands";
    case ChannelKind::scheduler_accounting:
      if (facts_.observer_operator) {
        return "observer holds the Slurm Operator privilege, which is "
               "exempt from PrivateData filtering";
      }
      return verdict == Verdict::closed
                 ? "PrivateData=accounting restricts sacct to the "
                   "caller's own records"
                 : "without PrivateData=accounting, sacct exposes every "
                   "user's completed-job records";
    case ChannelKind::scheduler_usage:
      if (facts_.observer_operator) {
        return "observer holds the Slurm Operator privilege, which is "
               "exempt from PrivateData filtering";
      }
      return verdict == Verdict::closed
                 ? "PrivateData=usage restricts sreport to the caller's "
                   "own row"
                 : "without PrivateData=usage, sreport aggregates every "
                   "user's consumption";
    case ChannelKind::ssh_foreign_node:
      return verdict == Verdict::closed
                 ? "pam_slurm admits ssh only to nodes where the caller "
                   "has a running job"
                 : "without pam_slurm, any user can ssh onto any compute "
                   "node, including the victim's";
    case ChannelKind::fs_home_read:
      if (verdict != Verdict::closed) {
        return "home is user-owned and no effective smask strips the "
               "world bits, so an accidental `chmod 777 ~` exposes file "
               "content";
      }
      if (p.root_owned_homes && smask_effective(p)) {
        return "doubly protected: root-owned homes block the top-level "
               "chmod and the smask strips world bits from any chmod "
               "inside";
      }
      return p.root_owned_homes
                 ? "homes are root-owned (group = UPG, 0770): the user "
                   "cannot chmod their own home world-traversable"
                 : "the smask (enforced and honored) strips world bits "
                   "at create and chmod time";
    case ChannelKind::fs_tmp_content:
    case ChannelKind::fs_devshm_content:
      if (verdict != Verdict::closed) {
        if (p.fs.enforce_smask && !p.fs.honor_smask) {
          return "kernel smask patch is installed but the filesystem "
                 "does not honor it (the pre-LU-4746 Lustre gap): world "
                 "bits survive create/chmod";
        }
        return "no effective smask: a world-readable mode on a file in "
               "a world-writable directory exposes its content";
      }
      return "the smask (enforced and honored) strips world bits, so "
             "foreign files stay group-private even after `chmod 666`";
    case ChannelKind::fs_tmp_names:
      return "structural residual: /tmp is world-writable (1777), so "
             "file *names* are listable by anyone regardless of policy";
    case ChannelKind::fs_acl_user_grant:
      if (verdict != Verdict::closed) {
        return "setfacl u:<other>:r is permitted and the victim owns "
               "their home, so a direct user-to-user grant bypasses the "
               "approved-project-group flow";
      }
      return p.fs.restrict_acl
                 ? "the ACL-restriction patch rejects named-user grants "
                   "(grants only to groups the caller belongs to)"
                 : "homes are root-owned: the victim cannot ACL their "
                   "home open for the observer's traversal";
    case ChannelKind::tcp_cross_user:
    case ChannelKind::udp_cross_user:
      if (verdict != Verdict::closed) {
        if (p.ubf && p.ubf_group_peers && facts_.shared_service_group) {
          return "UBF rule (b): the service runs under a project group "
                 "the observer belongs to, an intentional opt-in";
        }
        if (p.ubf && facts_.service_port < facts_.ubf_inspect_from) {
          return "the service listens below the UBF's inspected port "
                 "range, so the connection bypasses the daemon";
        }
        return "no user-based firewall: any user may connect to any "
               "other user's network service";
      }
      return "the UBF drops new flows whose initiating uid neither "
             "matches the listener's uid nor its primary group";
    case ChannelKind::abstract_uds:
      return "structural residual: abstract-namespace unix sockets have "
             "no filesystem node and never traverse the nfqueue hook";
    case ChannelKind::rdma_tcp_setup:
      return verdict == Verdict::closed
                 ? "the QP's TCP control channel is an ordinary flow, so "
                   "the UBF inspects and drops it"
                 : "no UBF on the TCP control channel: cross-user QPs "
                   "come up unhindered";
    case ChannelKind::rdma_native_cm:
      return "structural residual: native IB CM rendezvous never touches "
             "the TCP stack, so nothing inspects it";
    case ChannelKind::portal_foreign_app:
      return verdict == Verdict::closed
                 ? "the portal forwards as the authenticated observer, so "
                   "the UBF drops the hop to the victim's listener"
                 : "the portal's forwarded hop is an uninspected network "
                   "flow: any authenticated user reaches any app";
    case ChannelKind::gpu_residue:
      if (!facts_.has_gpus) {
        return "moot: the cluster has no allocatable GPUs";
      }
      return verdict == Verdict::closed
                 ? "the epilog scrub wipes device memory between tenants"
                 : "no epilog scrub: the next tenant reads the previous "
                   "tenant's device memory through their own allocation "
                   "(dev binding does not help — the device is theirs "
                   "now)";
  }
  return "?";
}

}  // namespace heus::analyze
