#include "analyze/path_oracle.h"

#include <cstring>
#include <functional>
#include <optional>
#include <utility>

#include "analyze/channel_graph.h"
#include "analyze/policy_space.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/cluster.h"
#include "fed/federation.h"
#include "obs/decision.h"
#include "obs/taxonomy.h"
#include "portal/gateway.h"
#include "simos/credentials.h"

namespace heus::analyze {

using common::strformat;
using core::SeparationPolicy;

namespace {

class AlwaysPartitioned final : public fed::LinkFaultModel {
 public:
  [[nodiscard]] bool partitioned(fed::ClusterIdx,
                                 fed::ClusterIdx) const override {
    return true;
  }
  [[nodiscard]] std::int64_t extra_ns(fed::ClusterIdx,
                                      fed::ClusterIdx) const override {
    return 0;
  }
  bool drop_message(fed::ClusterIdx, fed::ClusterIdx) override {
    return true;
  }
};

core::ClusterConfig oracle_config(const SeparationPolicy& policy) {
  core::ClusterConfig cfg;
  cfg.compute_nodes = 1;  // placement refusals attribute `sharing`
  cfg.login_nodes = 1;
  cfg.cpus_per_node = 8;
  cfg.gpus_per_node = 1;
  cfg.gpu_mem_bytes = 1024;
  cfg.policy = policy;
  return cfg;
}

struct HopResult {
  bool crossed = false;
  std::string detail;
};

/// Mutable adversary state threaded through the hops of one path trial.
struct Ctx {
  core::Cluster* a = nullptr;  ///< mallory's home cluster
  core::Cluster* b = nullptr;  ///< federated peer
  fed::Federation* fed = nullptr;
  Uid victim_a{};
  Uid victim_b{};
  Uid mallory{};
  std::optional<core::Session> adv;  ///< mallory's login shell on a
  std::optional<NodeId> vantage_node;  ///< victim's node, once won
  std::optional<SessionId> portal_token;
  int* serial = nullptr;  ///< run-unique suffix for names/files
  /// Cross-hop resources (anchor jobs, shells, tokens), reverse-run at
  /// the end of the trial; single-hop resources tear down inline.
  std::vector<std::function<void()>> cleanup;
};

std::optional<NodeId> running_node(core::Cluster& c, JobId id) {
  const sched::Job* j = c.scheduler().find_job(id);
  if (j == nullptr || j->state != sched::JobState::running ||
      j->allocations.empty()) {
    return std::nullopt;
  }
  return j->allocations.front().node;
}

// ---------------------------------------------------------------------------
// Foothold hops
// ---------------------------------------------------------------------------

HopResult exec_ssh_gate(Ctx& ctx) {
  core::Cluster* a = ctx.a;
  auto vs = a->login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec spec;
  spec.name = "oracle-ssh-anchor";
  spec.duration_ns = 3600 * common::kSecond;
  auto job = a->submit(*vs, spec);
  ctx.cleanup.push_back([a, vs = *vs, job]() mutable {
    if (job) (void)a->scheduler().cancel(vs.cred, *job);
    a->logout(vs);
  });
  if (!job) return {false, "victim anchor job submit failed"};
  a->scheduler().step();
  const auto node = running_node(*a, *job);
  if (!node) return {false, "victim anchor job not running"};
  auto shell = a->ssh(*ctx.adv, *node);
  if (!shell) return {false, "ssh into victim's node denied"};
  ctx.vantage_node = *node;
  ctx.cleanup.push_back(
      [a, shell = *shell]() mutable { a->logout(shell); });
  return {true, "ssh into victim's node admitted"};
}

HopResult exec_colocation(Ctx& ctx) {
  core::Cluster* a = ctx.a;
  auto vs = a->login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec vspec;
  vspec.name = "oracle-coloc-victim";
  vspec.duration_ns = 3600 * common::kSecond;
  auto vjob = a->submit(*vs, vspec);
  ctx.cleanup.push_back([a, vs = *vs, vjob]() mutable {
    if (vjob) (void)a->scheduler().cancel(vs.cred, *vjob);
    a->logout(vs);
  });
  if (!vjob) return {false, "victim job submit failed"};
  a->scheduler().step();
  const auto vnode = running_node(*a, *vjob);
  if (!vnode) return {false, "victim job not running"};
  sched::JobSpec aspec;
  aspec.name = "oracle-coloc-adversary";
  aspec.duration_ns = 3600 * common::kSecond;
  auto ajob = a->submit(*ctx.adv, aspec);
  const simos::Credentials adv_cred = ctx.adv->cred;
  ctx.cleanup.push_back([a, adv_cred, ajob]() {
    if (ajob) (void)a->scheduler().cancel(adv_cred, *ajob);
  });
  if (!ajob) return {false, "adversary job submit failed"};
  a->scheduler().step();
  const auto anode = running_node(*a, *ajob);
  if (!anode || *anode != *vnode) {
    return {false, "co-scheduling refused (adversary job held pending)"};
  }
  ctx.vantage_node = *anode;
  return {true, "co-scheduled beside the victim's job"};
}

// ---------------------------------------------------------------------------
// Scheduler-query hops
// ---------------------------------------------------------------------------

HopResult exec_sched_queue(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec spec;
  spec.name = "oracle-sensitive-jobname";
  spec.command = "./proprietary_sim --input=/proj/secret";
  spec.duration_ns = 3600 * common::kSecond;
  auto job = a.submit(*vs, spec);
  HopResult r{false, "victim job invisible in squeue"};
  if (job) {
    for (const auto& view : a.scheduler().list_jobs(ctx.adv->cred)) {
      if (view.id == *job) {
        r = {true, "victim job visible in squeue"};
        break;
      }
    }
    (void)a.scheduler().cancel(vs->cred, *job);
  } else {
    r.detail = "victim submit failed";
  }
  a.logout(*vs);
  return r;
}

HopResult exec_sched_accounting(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec spec;
  spec.name = "oracle-acct-job";
  spec.duration_ns = common::kSecond;
  auto job = a.submit(*vs, spec);
  HopResult r{false, "victim sacct record hidden"};
  if (job) {
    a.run_jobs();
    for (const auto& rec : a.scheduler().accounting(ctx.adv->cred)) {
      if (rec.id == *job) {
        r = {true, "victim sacct record readable"};
        break;
      }
    }
  } else {
    r.detail = "victim submit failed";
  }
  a.logout(*vs);
  return r;
}

HopResult exec_sched_usage(Ctx& ctx) {
  auto usage = ctx.a->scheduler().usage_by_user(ctx.adv->cred);
  if (usage.contains(ctx.victim_a)) {
    return {true, "victim usage visible in sreport"};
  }
  return {false, "victim usage hidden"};
}

// ---------------------------------------------------------------------------
// Network hops
// ---------------------------------------------------------------------------

HopResult exec_flow(Ctx& ctx, net::Proto proto, std::uint16_t port) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  net::Network& nw = a.network();
  const HostId vhost = a.node(vs->node).host();
  (void)nw.listen(vhost, vs->cred, vs->shell, proto, port);
  auto flow = nw.connect(a.node(ctx.adv->node).host(), ctx.adv->cred,
                         ctx.adv->shell, vhost, proto, port);
  HopResult r{false, "flow dropped"};
  if (flow) {
    r = {true, "flow to the victim's service established"};
    (void)nw.close(*flow);
  }
  (void)nw.close_listener(vhost, proto, port);
  a.logout(*vs);
  return r;
}

HopResult exec_rdma_tcp(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  net::Network& nw = a.network();
  const HostId vhost = a.node(vs->node).host();
  const std::uint16_t port = 24000;
  (void)nw.listen(vhost, vs->cred, vs->shell, net::Proto::tcp, port);
  auto qp = a.rdma().setup_via_tcp(a.node(ctx.adv->node).host(),
                                   ctx.adv->cred, ctx.adv->shell, vhost,
                                   port);
  HopResult r{false, "QP setup blocked at the TCP control channel"};
  if (qp) {
    r = {true, "QP established via TCP control channel"};
    (void)a.rdma().destroy(*qp);
  }
  (void)nw.close_listener(vhost, net::Proto::tcp, port);
  a.logout(*vs);
  return r;
}

HopResult exec_rdma_cm(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  auto qp = a.rdma().setup_via_cm(a.node(ctx.adv->node).host(),
                                  ctx.adv->cred, a.node(vs->node).host(),
                                  ctx.victim_a);
  HopResult r{false, "QP setup via native CM failed"};
  if (qp) {
    r = {true, "QP established via native IB CM"};
    (void)a.rdma().destroy(*qp);
  }
  a.logout(*vs);
  return r;
}

HopResult exec_uds(Ctx& ctx, bool from_node) {
  core::Cluster& a = *ctx.a;
  if (from_node && !ctx.vantage_node) return {false, "no node vantage"};
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  net::Network& nw = a.network();
  const HostId host = from_node ? a.node(*ctx.vantage_node).host()
                                : a.node(vs->node).host();
  const std::string name = strformat("@oracle-%d", (*ctx.serial)++);
  (void)nw.unix_listen_abstract(host, vs->cred, name);
  auto peer = nw.unix_connect_abstract(host, ctx.adv->cred, name);
  HopResult r{false, "abstract socket rendezvous failed"};
  if (peer && *peer == ctx.victim_a) {
    r = {true, "abstract socket rendezvous with the victim"};
  }
  (void)nw.unix_close_abstract(host, name);
  a.logout(*vs);
  return r;
}

// ---------------------------------------------------------------------------
// Portal hops
// ---------------------------------------------------------------------------

HopResult exec_portal_auth(Ctx& ctx) {
  auto token = ctx.a->portal().login(ctx.adv->cred);
  if (!token) return {false, "portal login rejected"};
  ctx.portal_token = *token;
  core::Cluster* a = ctx.a;
  ctx.cleanup.push_back(
      [a, t = *token]() { (void)a->portal().logout(t); });
  return {true, "portal session established"};
}

HopResult exec_portal_forward(Ctx& ctx) {
  if (!ctx.portal_token) return {false, "no portal session"};
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec spec;
  spec.name = "oracle-jupyter";
  spec.interactive = true;
  spec.duration_ns = 3600 * common::kSecond;
  auto job = a.submit(*vs, spec);
  HopResult r{false, "portal forwarded hop denied"};
  if (job) {
    a.scheduler().step();
    const auto jn = running_node(a, *job);
    if (jn) {
      auto app = a.portal().register_app(
          vs->cred, Pid{}, *job, a.node(*jn).host(), 8888, "jupyter",
          [](const std::string&) {
            return std::string("NOTEBOOK-TOKEN");
          });
      if (app) {
        auto resp = a.portal().request(*ctx.portal_token, *app,
                                       "GET / HTTP/1.1");
        if (resp && resp->find("NOTEBOOK-TOKEN") != std::string::npos) {
          r = {true, "victim's notebook served through the portal"};
        }
        (void)a.portal().unregister_app(vs->cred, *app);
      }
    }
    (void)a.scheduler().cancel(vs->cred, *job);
  } else {
    r.detail = "victim submit failed";
  }
  a.logout(*vs);
  return r;
}

// ---------------------------------------------------------------------------
// Filesystem / procfs hops
// ---------------------------------------------------------------------------

HopResult exec_home_read(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto v_cred = simos::login(a.users(), ctx.victim_a);
  if (!v_cred) return {false, "victim login failed"};
  const simos::User* vu = a.users().find_user(ctx.victim_a);
  const std::string file =
      strformat("%s/oracle-secret-%d.dat", vu->home.c_str(),
                (*ctx.serial)++);
  vfs::FileSystem& fs = a.shared_fs();
  (void)fs.write_file(*v_cred, file, "HOME-SECRET");
  (void)fs.chmod(*v_cred, vu->home, 0777);
  (void)fs.chmod(*v_cred, file, 0666);
  auto read = fs.read_file(ctx.adv->cred, file);
  HopResult r{false, "world-chmod'ed home file unreadable"};
  if (read && read->find("HOME-SECRET") != std::string::npos) {
    r = {true, "world-chmod'ed home file read"};
  }
  (void)fs.unlink(*v_cred, file);
  return r;
}

HopResult exec_acl_grant(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto v_cred = simos::login(a.users(), ctx.victim_a);
  if (!v_cred) return {false, "victim login failed"};
  const simos::User* vu = a.users().find_user(ctx.victim_a);
  vfs::FileSystem& fs = a.shared_fs();
  const std::string file =
      strformat("%s/oracle-acl-%d.dat", vu->home.c_str(),
                (*ctx.serial)++);
  (void)fs.write_file(*v_cred, file, "ACL-SECRET");
  auto grant = fs.acl_set(
      *v_cred, file,
      vfs::AclEntry{vfs::AclTag::named_user, ctx.mallory, Gid{}, 4});
  (void)fs.acl_set(
      *v_cred, vu->home,
      vfs::AclEntry{vfs::AclTag::named_user, ctx.mallory, Gid{}, 5});
  HopResult r{false, "setfacl user grant rejected"};
  if (grant) {
    auto read = fs.read_file(ctx.adv->cred, file);
    if (read && read->find("ACL-SECRET") != std::string::npos) {
      r = {true, "setfacl grant succeeded and file read"};
    } else {
      r.detail = "grant stored but read denied";
    }
  }
  (void)fs.unlink(*v_cred, file);
  (void)fs.acl_remove(*v_cred, vu->home, vfs::AclTag::named_user,
                      ctx.mallory, Gid{});
  return r;
}

HopResult exec_tmp_names(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  vfs::FileSystem& fs = a.node(vs->node).local_fs();
  const std::string name =
      strformat("oracle-projectname-leak-%d", (*ctx.serial)++);
  (void)fs.write_file(vs->cred, "/tmp/" + name, "x");
  auto listing = fs.readdir(ctx.adv->cred, "/tmp");
  HopResult r{false, "victim /tmp file name invisible"};
  if (listing) {
    for (const auto& e : *listing) {
      if (e.name == name) {
        r = {true, "victim file name visible in /tmp"};
        break;
      }
    }
  }
  (void)fs.unlink(vs->cred, "/tmp/" + name);
  a.logout(*vs);
  return r;
}

/// /tmp and /dev/shm content, from the login node or from the victim's
/// node vantage (the multi-hop payoff: the node's local fs is only
/// reachable once ssh_gate or colocation has landed the adversary
/// there).
HopResult exec_tmp_content(Ctx& ctx, const char* base, bool from_node) {
  core::Cluster& a = *ctx.a;
  if (from_node && !ctx.vantage_node) return {false, "no node vantage"};
  auto v_cred = simos::login(a.users(), ctx.victim_a);
  if (!v_cred) return {false, "victim login failed"};
  std::optional<core::Session> vs;
  NodeId where{};
  if (from_node) {
    where = *ctx.vantage_node;
  } else {
    auto login = a.login(ctx.victim_a);
    if (!login) return {false, "victim login failed"};
    vs = *login;
    where = vs->node;
  }
  vfs::FileSystem& fs = a.node(where).local_fs();
  const std::string file =
      strformat("%s/oracle-%d.dat", base, (*ctx.serial)++);
  (void)fs.write_file(*v_cred, file, "TMP-SECRET");
  (void)fs.chmod(*v_cred, file, 0666);
  auto read = fs.read_file(ctx.adv->cred, file);
  HopResult r{false, strformat("%s content unreadable", base)};
  if (read && read->find("TMP-SECRET") != std::string::npos) {
    r = {true, strformat("%s content read cross-user", base)};
  }
  (void)fs.unlink(*v_cred, file);
  if (vs) a.logout(*vs);
  return r;
}

HopResult exec_procfs(Ctx& ctx, bool want_cmdline, bool from_node) {
  core::Cluster& a = *ctx.a;
  if (from_node && !ctx.vantage_node) return {false, "no node vantage"};
  auto v_cred = simos::login(a.users(), ctx.victim_a);
  if (!v_cred) return {false, "victim login failed"};
  std::optional<core::Session> vs;
  NodeId where{};
  if (from_node) {
    where = *ctx.vantage_node;
  } else {
    auto login = a.login(ctx.victim_a);
    if (!login) return {false, "victim login failed"};
    vs = *login;
    where = vs->node;
  }
  core::Node& nd = a.node(where);
  const Pid pid = nd.procs().spawn(
      *v_cred, "python train.py --api-key=ORACLE-PROC-SECRET");
  HopResult r{false,
              want_cmdline ? "victim command line unreadable"
                           : "victim pids invisible"};
  if (want_cmdline) {
    auto details = nd.procfs().read_details(ctx.adv->cred, pid);
    if (details && details->cmdline.find("ORACLE-PROC-SECRET") !=
                       std::string::npos) {
      r = {true, "victim command line (with secret) read"};
    }
  } else {
    for (Pid p : nd.procfs().list(ctx.adv->cred)) {
      auto st = nd.procfs().stat(ctx.adv->cred, p);
      if (st && st->uid == ctx.victim_a) {
        r = {true, "victim pid listed"};
        break;
      }
    }
  }
  (void)nd.procs().exit(pid);
  if (vs) a.logout(*vs);
  return r;
}

// ---------------------------------------------------------------------------
// GPU hop
// ---------------------------------------------------------------------------

HopResult exec_gpu_residue(Ctx& ctx) {
  core::Cluster& a = *ctx.a;
  auto vs = a.login(ctx.victim_a);
  if (!vs) return {false, "victim login failed"};
  sched::JobSpec vspec;
  vspec.name = "oracle-gpu-writer";
  vspec.gpus_per_task = 1;
  vspec.mem_mb_per_task = 512;
  vspec.duration_ns = 10 * common::kSecond;
  auto vjob = a.submit(*vs, vspec);
  HopResult r{false, "gpu residue not reproduced"};
  if (vjob) {
    a.scheduler().step();
    const sched::Job* j = a.scheduler().find_job(*vjob);
    if (j != nullptr && j->state == sched::JobState::running) {
      core::Node& nd = a.node(j->allocations.front().node);
      const GpuId g = j->allocations.front().gpus.front();
      auto dev = nd.local_fs().open_device(
          vs->cred, core::Node::gpu_dev_path(g.value()),
          vfs::Access::write);
      if (dev) {
        (void)nd.gpus().at(g.value()).write(ctx.victim_a, 0,
                                            "GPU-RESIDUE-SECRET");
      }
      a.run_jobs();  // the epilog scrubs (or not) per policy

      sched::JobSpec ospec;
      ospec.name = "oracle-gpu-reader";
      ospec.gpus_per_task = 1;
      ospec.mem_mb_per_task = 512;
      ospec.duration_ns = 10 * common::kSecond;
      auto ojob = a.submit(*ctx.adv, ospec);
      if (ojob) {
        a.scheduler().step();
        const sched::Job* oj = a.scheduler().find_job(*ojob);
        if (oj != nullptr && oj->state == sched::JobState::running) {
          core::Node& ond = a.node(oj->allocations.front().node);
          const GpuId og = oj->allocations.front().gpus.front();
          auto odev = ond.local_fs().open_device(
              ctx.adv->cred, core::Node::gpu_dev_path(og.value()),
              vfs::Access::read);
          if (odev) {
            auto mem = ond.gpus().at(og.value()).read(ctx.mallory, 0, 64);
            if (mem && mem->find("GPU-RESIDUE-SECRET") !=
                           std::string::npos) {
              r = {true, "previous tenant's GPU memory read"};
            } else {
              r.detail = "device memory scrubbed before reassignment";
            }
          }
        }
        a.run_jobs();
      }
    }
  }
  a.logout(*vs);
  return r;
}

// ---------------------------------------------------------------------------
// Federation hops
// ---------------------------------------------------------------------------

HopResult exec_fed_gateway(Ctx& ctx) {
  // The WAN hop every federated operation starts with: the enforcing
  // peer verifies mallory's claimed identity with their home cluster.
  auto ident = ctx.fed->remote_ident(1, 0, ctx.mallory);
  if (!ident) {
    return {false, "peer could not verify identity (failed closed)"};
  }
  return {true, "peer verified mallory with the home cluster"};
}

HopResult exec_fed_connect(Ctx& ctx) {
  core::Cluster& b = *ctx.b;
  auto vs = b.login(ctx.victim_b);
  if (!vs) return {false, "victim login failed on peer"};
  net::Network& nw = b.network();
  const HostId vhost = b.node(vs->node).host();
  const std::uint16_t port = 23456;
  (void)nw.listen(vhost, vs->cred, vs->shell, net::Proto::tcp, port);
  auto flow =
      ctx.fed->connect(0, ctx.adv->cred, 1, vhost, net::Proto::tcp, port);
  HopResult r{false, "federated connect denied"};
  if (flow) {
    r = {true, "federated flow to the victim's service established"};
    (void)nw.close(*flow);
  }
  (void)nw.close_listener(vhost, net::Proto::tcp, port);
  b.logout(*vs);
  return r;
}

HopResult exec_fed_portal(Ctx& ctx) {
  core::Cluster& b = *ctx.b;
  auto vs = b.login(ctx.victim_b);
  if (!vs) return {false, "victim login failed on peer"};
  sched::JobSpec spec;
  spec.name = "oracle-fed-jupyter";
  spec.interactive = true;
  spec.duration_ns = 3600 * common::kSecond;
  auto job = b.submit(*vs, spec);
  HopResult r{false, "federated portal forward denied"};
  if (job) {
    b.scheduler().step();
    const auto jn = running_node(b, *job);
    if (jn) {
      auto app = b.portal().register_app(
          vs->cred, Pid{}, *job, b.node(*jn).host(), 8888, "jupyter",
          [](const std::string&) {
            return std::string("NOTEBOOK-TOKEN");
          });
      if (app) {
        auto resp = ctx.fed->portal_request(0, ctx.adv->cred, 1, *app,
                                            "GET / HTTP/1.1");
        if (resp && resp->find("NOTEBOOK-TOKEN") != std::string::npos) {
          r = {true, "victim's notebook served across the federation"};
        }
        (void)b.portal().unregister_app(vs->cred, *app);
      }
    }
    (void)b.scheduler().cancel(vs->cred, *job);
  } else {
    r.detail = "victim submit failed";
  }
  b.logout(*vs);
  return r;
}

HopResult execute_edge(Ctx& ctx, const GraphEdge& e) {
  switch (e.spec->id) {
    case EdgeId::ssh_gate: return exec_ssh_gate(ctx);
    case EdgeId::colocation: return exec_colocation(ctx);
    case EdgeId::sched_queue: return exec_sched_queue(ctx);
    case EdgeId::sched_accounting: return exec_sched_accounting(ctx);
    case EdgeId::sched_usage: return exec_sched_usage(ctx);
    case EdgeId::tcp_direct: return exec_flow(ctx, net::Proto::tcp, 23456);
    case EdgeId::udp_direct: return exec_flow(ctx, net::Proto::udp, 23457);
    case EdgeId::rdma_tcp: return exec_rdma_tcp(ctx);
    case EdgeId::rdma_cm: return exec_rdma_cm(ctx);
    case EdgeId::uds_login: return exec_uds(ctx, false);
    case EdgeId::uds_node: return exec_uds(ctx, true);
    case EdgeId::portal_auth: return exec_portal_auth(ctx);
    case EdgeId::portal_forward: return exec_portal_forward(ctx);
    case EdgeId::home_read: return exec_home_read(ctx);
    case EdgeId::acl_grant: return exec_acl_grant(ctx);
    case EdgeId::tmp_names: return exec_tmp_names(ctx);
    case EdgeId::tmp_content_login:
      return exec_tmp_content(ctx, "/tmp", false);
    case EdgeId::devshm_login:
      return exec_tmp_content(ctx, "/dev/shm", false);
    case EdgeId::tmp_content_node:
      return exec_tmp_content(ctx, "/tmp", true);
    case EdgeId::devshm_node:
      return exec_tmp_content(ctx, "/dev/shm", true);
    case EdgeId::procfs_list_login: return exec_procfs(ctx, false, false);
    case EdgeId::procfs_cmdline_login:
      return exec_procfs(ctx, true, false);
    case EdgeId::procfs_list_node: return exec_procfs(ctx, false, true);
    case EdgeId::procfs_cmdline_node: return exec_procfs(ctx, true, true);
    case EdgeId::gpu_residue: return exec_gpu_residue(ctx);
    case EdgeId::fed_gateway: return exec_fed_gateway(ctx);
    case EdgeId::fed_connect: return exec_fed_connect(ctx);
    case EdgeId::fed_portal: return exec_fed_portal(ctx);
  }
  return {false, "no executor"};
}

/// The knob a Decision should attribute when this (statically absent)
/// edge fails to cross. "" = the block is silent by design (residual
/// channels never block; fs read denials carry no knob, so fs hops are
/// attributed through the victim-side chmod/acl denial inside the same
/// trace window).
std::string blocked_knob(const SeparationPolicy& p, EdgeId id) {
  switch (id) {
    case EdgeId::ssh_gate:
      return obs::knob::pam_slurm;
    case EdgeId::colocation:
      // The placement refusal is only attributed when the victim's
      // whole-node binding is what exhausts the cluster.
      return p.sharing == sched::SharingPolicy::user_whole_node
                 ? obs::knob::sharing
                 : "";
    case EdgeId::sched_queue:
      return obs::knob::private_data_jobs;
    case EdgeId::sched_accounting:
      return obs::knob::private_data_accounting;
    case EdgeId::sched_usage:
      return obs::knob::private_data_usage;
    case EdgeId::tcp_direct:
    case EdgeId::udp_direct:
    case EdgeId::rdma_tcp:
    case EdgeId::portal_forward:
    case EdgeId::fed_connect:
    case EdgeId::fed_portal:
      return obs::knob::ubf;
    case EdgeId::procfs_list_login:
    case EdgeId::procfs_cmdline_login:
    case EdgeId::procfs_list_node:
    case EdgeId::procfs_cmdline_node:
      return obs::knob::hidepid;
    case EdgeId::tmp_content_login:
    case EdgeId::devshm_login:
    case EdgeId::tmp_content_node:
    case EdgeId::devshm_node:
      return obs::knob::fs_enforce_smask;
    case EdgeId::home_read:
      return p.root_owned_homes ? obs::knob::root_owned_homes
                                : obs::knob::fs_enforce_smask;
    case EdgeId::acl_grant:
      return p.fs.restrict_acl ? obs::knob::fs_restrict_acl
                               : obs::knob::root_owned_homes;
    case EdgeId::gpu_residue:
      return obs::knob::gpu_epilog_scrub;
    default:
      return "";
  }
}

bool knob_in_window(core::Cluster& c, std::uint64_t start,
                    const std::string& knob) {
  for (const obs::Decision& d : c.trace().snapshot()) {
    if (d.seq >= start && d.knob != nullptr && knob == d.knob) {
      return true;
    }
  }
  return false;
}

PathTrial execute_path(const ChannelGraph& graph, const AttackPath& path,
                       Ctx ctx, bool partitioned) {
  PathTrial trial;
  trial.label = path_label(graph, path);
  trial.hops_total = path.edges.size();
  trial.multi_hop = path.edges.size() >= 2;
  trial.cross_cluster = path.cross_cluster;

  auto adv = ctx.a->login(ctx.mallory);
  if (!adv) {
    trial.agree = false;
    return trial;
  }
  ctx.adv = *adv;

  bool all_agree = true;
  for (const std::uint32_t ei : path.edges) {
    const GraphEdge& e = graph.edges().at(ei);
    HopTrial hop;
    hop.mechanism = e.spec->mechanism;
    hop.edge_index = ei;
    hop.static_present = e.present;
    const bool fed_layer = std::strcmp(e.spec->layer, "fed") == 0;
    // Partition is a dynamic fact the static graph does not model: any
    // fed-layer hop is expected severed while the WAN is down.
    hop.expected_cross = e.present && !(partitioned && fed_layer);
    if (e.spec->id == EdgeId::fed_gateway) {
      if (partitioned) {
        hop.predicted_knob =
            ctx.fed->breaker_state(1, 0) == fed::BreakerState::open
                ? obs::knob::fed_breaker
                : obs::knob::fed_fail_closed;
      }
    } else if (!hop.expected_cross) {
      hop.predicted_knob = blocked_knob(
          graph.clusters().at(e.enforcing_cluster).policy, e.spec->id);
    }
    const std::uint64_t start_a = ctx.a->trace().total();
    const std::uint64_t start_b = ctx.b->trace().total();
    const HopResult res = execute_edge(ctx, e);
    hop.crossed = res.crossed;
    hop.detail = res.detail;
    if (!hop.crossed && !hop.predicted_knob.empty()) {
      hop.knob_observed =
          knob_in_window(*ctx.a, start_a, hop.predicted_knob) ||
          knob_in_window(*ctx.b, start_b, hop.predicted_knob);
    }
    hop.agree =
        hop.crossed == hop.expected_cross &&
        (hop.crossed || hop.predicted_knob.empty() || hop.knob_observed);
    all_agree = all_agree && hop.agree;
    const bool stop = !hop.crossed;
    trial.hops.push_back(std::move(hop));
    if (stop) break;
  }
  for (auto it = ctx.cleanup.rbegin(); it != ctx.cleanup.rend(); ++it) {
    (*it)();
  }
  ctx.a->logout(*ctx.adv);
  trial.agree = all_agree;
  return trial;
}

}  // namespace

OracleRun run_path_oracle(const OracleOptions& opts) {
  OracleRun run;
  run.label = opts.label;
  run.policy_a = describe_policy(opts.policy_a);
  run.policy_b = describe_policy(opts.policy_b);
  run.partitioned = opts.partition_link;

  const std::vector<ClusterSpec> specs = {{"a", opts.policy_a},
                                          {"b", opts.policy_b}};
  const ChannelGraph graph = ChannelGraph::build(
      specs, PrincipalClass::unprivileged, TopologyFacts{}, false);
  const std::vector<AttackPath> universe =
      PathAnalyzer::enumerate(graph, /*include_absent=*/true);

  core::Cluster a(oracle_config(opts.policy_a));
  core::Cluster b(oracle_config(opts.policy_b));
  for (core::Cluster* c : {&a, &b}) {
    c->trace().set_capacity(65536);
    c->trace().set_enabled(true);
  }
  const Uid victim_a = *a.add_user("victim");
  const Uid mallory = *a.add_user("mallory");
  const Uid victim_b = *b.add_user("victim");
  (void)b.add_user("mallory");  // federated mapping is by account name

  fed::Federation fed;
  (void)fed.add_cluster("a", &a);
  (void)fed.add_cluster("b", &b);
  AlwaysPartitioned wan;
  if (opts.partition_link) fed.set_link_faults(&wan);

  int serial = 0;
  const auto run_one = [&](const AttackPath& path) {
    Ctx ctx;
    ctx.a = &a;
    ctx.b = &b;
    ctx.fed = &fed;
    ctx.victim_a = victim_a;
    ctx.victim_b = victim_b;
    ctx.mallory = mallory;
    ctx.serial = &serial;
    PathTrial trial =
        execute_path(graph, path, std::move(ctx), opts.partition_link);
    run.agree_count += trial.agree ? 1 : 0;
    run.multi_hop_count += trial.multi_hop ? 1 : 0;
    run.cross_cluster_count += trial.cross_cluster ? 1 : 0;
    run.trials.push_back(std::move(trial));
  };

  if (opts.partition_link) {
    // Repeat the WAN paths until the breaker arc is fully exercised:
    // the first trips record fed.fail_closed, the later fast-fails
    // record fed.breaker — the per-trial prediction tracks the state.
    for (int rep = 0; rep < 5; ++rep) {
      for (const AttackPath& p : universe) {
        if (p.cross_cluster) run_one(p);
      }
    }
  } else {
    for (const AttackPath& p : universe) run_one(p);
  }
  return run;
}

OracleReport run_standard_oracle() {
  const SeparationPolicy hard = SeparationPolicy::hardened();
  const SeparationPolicy base{};
  SeparationPolicy no_pam = hard;
  no_pam.pam_slurm = false;

  const OracleOptions matrix[] = {
      {hard, hard, false, "hardened/hardened"},
      {base, base, false, "baseline/baseline"},
      {hard, base, false, "hardened/baseline"},
      {base, hard, false, "baseline/hardened"},
      {no_pam, no_pam, false, "hardened minus pam_slurm"},
      {hard, hard, true, "hardened/hardened, WAN partitioned"},
  };

  OracleReport report;
  for (const OracleOptions& opts : matrix) {
    OracleRun run = run_path_oracle(opts);
    report.trials += run.trials.size();
    report.agreed += run.agree_count;
    report.multi_hop += run.multi_hop_count;
    report.cross_cluster += run.cross_cluster_count;
    for (const PathTrial& t : run.trials) {
      if (t.agree) continue;
      for (const HopTrial& h : t.hops) {
        if (h.agree) continue;
        std::string msg = strformat(
            "[%s] %s — hop '%s': expected %s, got %s", run.label.c_str(),
            t.label.c_str(), h.mechanism.c_str(),
            h.expected_cross ? "cross" : "block",
            h.crossed ? "cross" : "block");
        if (!h.crossed && !h.predicted_knob.empty() && !h.knob_observed) {
          msg += strformat("; knob '%s' not attributed",
                           h.predicted_knob.c_str());
        }
        msg += " (" + h.detail + ")";
        report.disagreements.push_back(std::move(msg));
        break;
      }
    }
    report.runs.push_back(std::move(run));
  }
  report.all_agree =
      report.trials > 0 && report.agreed == report.trials;
  return report;
}

std::string oracle_to_markdown(const OracleReport& report) {
  std::string out = "## differential path oracle\n\n";
  out += "| run | trials | agree | multi-hop | cross-cluster |\n";
  out += "|-----|--------|-------|-----------|---------------|\n";
  for (const OracleRun& run : report.runs) {
    out += strformat("| %s%s | %zu | %zu | %zu | %zu |\n",
                     run.label.c_str(),
                     run.partitioned ? " (partitioned)" : "",
                     run.trials.size(), run.agree_count,
                     run.multi_hop_count, run.cross_cluster_count);
  }
  out += strformat(
      "\ntotal: %zu trials, %zu agree, %zu multi-hop, %zu "
      "cross-cluster — %s\n",
      report.trials, report.agreed, report.multi_hop,
      report.cross_cluster,
      report.all_agree ? "static and dynamic agree on every hop"
                       : "DISAGREEMENT");
  for (const std::string& d : report.disagreements) {
    out += "- " + d + "\n";
  }
  return out;
}

}  // namespace heus::analyze
