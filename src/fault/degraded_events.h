// Degraded-mode event sets, derived from a FaultPlan (ISSUE 7, S1).
//
// The 64-seed fault sweeps prove the separation invariant empirically;
// this module states the *mechanism* behind that result as a table-level
// property. Each FaultKind can push the lifecycle tables through a
// known, small set of extra events — an ident outage makes flows take
// the hook-drop row, a crash storm injects node-fail into jobs and
// teardown/identity-reset into flows, a shared-FS outage drives the
// transfer retry loop, a WAN link fault drives the federation breaker's
// failure/cooldown edges. Everything else a fault can do is flip a
// guard branch of an event that occurs in healthy runs anyway.
//
// The derived set makes that claim checkable per plan instead of per
// seed: for any workload, every transition fired under an injected plan
// but never in the healthy run must carry an event that is either (a)
// in degraded_events(plan) or (b) fired by the healthy run on the same
// machine (a guard-branch flip). tests/fault/degraded_events_test.cpp
// asserts exactly this; the federation fault sweep reuses the predicate
// for the breaker table.
//
// Machines are identified by MachineDef::name, not by pointer: the
// fed-breaker table lives above this library (fed depends on fault),
// so the mapping names it without linking it.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.h"
#include "lifecycle/machine.h"

namespace heus::fault {

/// One lifecycle event a fault class can induce beyond healthy runs.
struct DegradedEvent {
  const char* machine = "";        ///< MachineDef::name
  lifecycle::EventId event = 0;

  friend bool operator==(const DegradedEvent&,
                         const DegradedEvent&) = default;
};

/// Machine name of the federation breaker table (fed/breaker_lifecycle.h
/// — referenced by name to keep fault below fed in the layering).
inline constexpr const char* kFedBreakerMachine = "fed-breaker";

/// The lifecycle events `kind` can induce. Kinds that only cost
/// availability before any table is consulted (prolog/epilog failures,
/// portal outages) or only flip guard branches of healthy events
/// (gpu_scrub_failure) derive an empty or guard-flip-only set.
[[nodiscard]] std::vector<DegradedEvent> degraded_events_for(FaultKind kind);

/// Union over every event kind present in `plan`, deduplicated, stable
/// order (first appearance).
[[nodiscard]] std::vector<DegradedEvent> degraded_events(
    const FaultPlan& plan);

/// Is (machine, event) within the degraded-mode envelope of `plan`?
[[nodiscard]] bool is_degraded_event(const FaultPlan& plan,
                                     const char* machine,
                                     lifecycle::EventId event);

/// "machine:event-id" lines for sweep failure messages and the census.
[[nodiscard]] std::string degraded_events_to_string(const FaultPlan& plan);

}  // namespace heus::fault
