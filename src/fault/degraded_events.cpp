#include "fault/degraded_events.h"

#include <cstring>

#include "net/flow_lifecycle.h"
#include "sched/job_lifecycle.h"
#include "xfer/transfer_lifecycle.h"

namespace heus::fault {
namespace {

[[nodiscard]] DegradedEvent flow_ev(net::FlowEvent e) {
  return {"flow", static_cast<lifecycle::EventId>(e)};
}
[[nodiscard]] DegradedEvent job_ev(sched::JobEvent e) {
  return {"job", static_cast<lifecycle::EventId>(e)};
}
[[nodiscard]] DegradedEvent xfer_ev(xfer::TransferEvent e) {
  return {"transfer", static_cast<lifecycle::EventId>(e)};
}
// The breaker enum lives in fed (above this library); the numeric
// values are pinned here and cross-checked against fed::BreakerEvent by
// tests/fault/degraded_events_test.cpp.
[[nodiscard]] DegradedEvent breaker_ev(lifecycle::EventId e) {
  return {kFedBreakerMachine, e};
}
constexpr lifecycle::EventId kBreakerFailure = 2;   // BreakerEvent::failure
constexpr lifecycle::EventId kBreakerCooldown = 3;  // BreakerEvent::cooldown

}  // namespace

std::vector<DegradedEvent> degraded_events_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::ident_outage:
    case FaultKind::ident_latency:
      // The UBF cannot attribute either endpoint: fail closed, the
      // flow takes the hook-drop row.
      return {flow_ev(net::FlowEvent::hook_drop)};
    case FaultKind::packet_loss:
      // Senders on a lossy path eventually give up and close; idle
      // entries surface in the conntrack GC.
      return {flow_ev(net::FlowEvent::teardown),
              flow_ev(net::FlowEvent::gc_due)};
    case FaultKind::network_partition:
      // Established flows across the cut stall and close; across the
      // heal a stale conntrack entry may face a changed listener.
      return {flow_ev(net::FlowEvent::teardown),
              flow_ev(net::FlowEvent::gc_due),
              flow_ev(net::FlowEvent::identity_reset)};
    case FaultKind::prolog_failure:
    case FaultKind::epilog_failure:
      // Availability only: the job stays pending / the node holds in
      // maintenance. No lifecycle table is pushed anywhere new.
      return {};
    case FaultKind::gpu_scrub_failure:
      // Flips the gpu-scrub guard branch of the finish events; those
      // events fire in healthy runs too, so nothing extra derives.
      return {};
    case FaultKind::fs_outage:
      // The DTN retry loop: transient error, backoff, and — with the
      // budget exhausted — the failed exit of the same event.
      return {xfer_ev(xfer::TransferEvent::fs_error_transient),
              xfer_ev(xfer::TransferEvent::backoff_elapsed)};
    case FaultKind::portal_outage:
      // Denied before the session table is consulted.
      return {};
    case FaultKind::node_crash_storm:
      return {job_ev(sched::JobEvent::node_fail),
              flow_ev(net::FlowEvent::teardown),
              flow_ev(net::FlowEvent::identity_reset)};
    case FaultKind::link_partition:
    case FaultKind::link_latency:
    case FaultKind::link_loss:
      // The federation breaker's degraded edges: exchange failures and
      // the cooldown that arms the recovery probe.
      return {breaker_ev(kBreakerFailure), breaker_ev(kBreakerCooldown)};
  }
  return {};
}

std::vector<DegradedEvent> degraded_events(const FaultPlan& plan) {
  std::vector<DegradedEvent> out;
  for (const FaultEvent& e : plan.events()) {
    for (const DegradedEvent& d : degraded_events_for(e.kind)) {
      bool seen = false;
      for (const DegradedEvent& x : out) {
        if (std::strcmp(x.machine, d.machine) == 0 && x.event == d.event) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(d);
    }
  }
  return out;
}

bool is_degraded_event(const FaultPlan& plan, const char* machine,
                       lifecycle::EventId event) {
  for (const DegradedEvent& d : degraded_events(plan)) {
    if (std::strcmp(d.machine, machine) == 0 && d.event == event) {
      return true;
    }
  }
  return false;
}

std::string degraded_events_to_string(const FaultPlan& plan) {
  std::string out;
  for (const DegradedEvent& d : degraded_events(plan)) {
    if (!out.empty()) out += ", ";
    out += d.machine;
    out += ':';
    out += std::to_string(d.event);
  }
  return out;
}

}  // namespace heus::fault
