// Deterministic, seed-driven fault schedules (robustness tentpole).
//
// A FaultPlan is a list of FaultEvents — timed windows during which some
// piece of the cluster misbehaves: the ident responder on a host stops
// answering (or answers slowly), links drop packets or partition outright,
// prolog/epilog scripts fail, the GPU scrub tool errors out, the shared
// ("lustre") filesystem mount hangs, the portal backend goes down, or a
// set of nodes crashes at once. Plans are either hand-built (unit tests)
// or drawn from a seeded Rng (property sweeps); either way the schedule is
// pure data, bit-reproducible from (seed, options), and independent of the
// cluster it will be applied to. FaultInjector (injector.h) applies one.
//
// The separation claim under test (tests/fault/fault_invariant_test.cpp):
// no fault schedule may OPEN a cross-user channel that the healthy
// hardened policy had closed. Faults may cost availability — connections
// refused, jobs delayed, transfers failed — but never isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/rng.h"

namespace heus::fault {

enum class FaultKind {
  ident_outage,       ///< ident responder on a host answers nothing
  ident_latency,      ///< ident responder answers, but slowly
  packet_loss,        ///< probabilistic drop on established flows
  network_partition,  ///< two host sets mutually unreachable
  prolog_failure,     ///< job prolog script fails on a node
  epilog_failure,     ///< job epilog script fails on a node
  gpu_scrub_failure,  ///< vendor scrub tool errors in the epilog
  fs_outage,          ///< shared-FS mount unavailable (EIO)
  portal_outage,      ///< portal daemon down (EHOSTUNREACH)
  node_crash_storm,   ///< listed nodes crash at window start
  // Inter-cluster link faults (ISSUE 7): scoped by *cluster* index via
  // `clusters`/`clusters_b`, consumed by fed::FedFaultInjector on the
  // federation's simulated WAN link rather than the intra-cluster fabric.
  link_partition,     ///< two cluster sets mutually unreachable
  link_latency,       ///< cross-cluster messages delayed by extra_ns
  link_loss,          ///< probabilistic drop of cross-cluster messages
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One fault window. Which scoping fields matter depends on the kind:
/// host-scoped faults (ident_*, packet_loss, network_partition) read
/// `hosts`/`hosts_b`; node-scoped faults (prolog/epilog/scrub,
/// node_crash_storm) read `nodes`; fs/portal outages are global.
struct FaultEvent {
  FaultKind kind = FaultKind::ident_outage;
  common::SimTime start{};
  std::int64_t duration_ns = 0;
  std::vector<HostId> hosts;    ///< primary host set (partition side A)
  std::vector<HostId> hosts_b;  ///< partition side B
  std::vector<NodeId> nodes;    ///< node-scoped fault targets
  /// Cluster-scoped link faults (link_*): federation member indices.
  std::vector<std::uint32_t> clusters;    ///< link side A
  std::vector<std::uint32_t> clusters_b;  ///< link side B (partition only)
  /// Per-attempt failure probability (packet_loss, link_loss, hook
  /// failures).
  double probability = 1.0;
  /// Added responder delay for ident_latency / link_latency, ns.
  std::int64_t extra_ns = 0;

  [[nodiscard]] bool active_at(common::SimTime t) const {
    return t.ns >= start.ns && t.ns < start.ns + duration_ns;
  }
  [[nodiscard]] bool targets_host(HostId h) const;
  [[nodiscard]] bool targets_node(NodeId n) const;
  [[nodiscard]] bool targets_cluster(std::uint32_t cluster) const;
};

/// Shape parameters for randomly drawn plans.
struct FaultPlanOptions {
  std::size_t events = 8;
  /// Event windows are drawn inside [0, horizon_ns).
  std::int64_t horizon_ns = 600 * common::kSecond;
  std::int64_t max_duration_ns = 120 * common::kSecond;
  double packet_loss_max = 0.5;
  double hook_failure_prob = 1.0;
  /// Kind gates, so sweeps can ablate fault classes.
  bool include_ident = true;
  bool include_network = true;
  bool include_hooks = true;
  bool include_fs = true;
  bool include_portal = true;
  bool include_crashes = true;
  /// Inter-cluster link faults are drawn only when a federation shape is
  /// declared (cluster_count >= 2); with the default 0 the Rng stream is
  /// bit-identical to pre-federation plans.
  bool include_links = true;
  std::size_t cluster_count = 0;
  std::int64_t link_latency_max_ns = 200 * common::kMillisecond;
  double link_loss_max = 0.5;
};

/// An immutable fault schedule.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultEvent event) {
    events_.push_back(std::move(event));
    return *this;
  }

  /// Draw a plan from a seed: every field of every event comes from one
  /// Rng stream, so (seed, opts, host_count, node_count) fully determine
  /// the schedule. `host_count`/`node_count` bound the target draws.
  [[nodiscard]] static FaultPlan random(std::uint64_t seed,
                                        const FaultPlanOptions& opts,
                                        std::size_t host_count,
                                        std::size_t node_count);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// One line per event, for test logs and repro reports.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace heus::fault
