#include "fault/fault.h"

#include <algorithm>

#include "common/strings.h"

namespace heus::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::ident_outage: return "ident-outage";
    case FaultKind::ident_latency: return "ident-latency";
    case FaultKind::packet_loss: return "packet-loss";
    case FaultKind::network_partition: return "network-partition";
    case FaultKind::prolog_failure: return "prolog-failure";
    case FaultKind::epilog_failure: return "epilog-failure";
    case FaultKind::gpu_scrub_failure: return "gpu-scrub-failure";
    case FaultKind::fs_outage: return "fs-outage";
    case FaultKind::portal_outage: return "portal-outage";
    case FaultKind::node_crash_storm: return "node-crash-storm";
    case FaultKind::link_partition: return "link-partition";
    case FaultKind::link_latency: return "link-latency";
    case FaultKind::link_loss: return "link-loss";
  }
  return "?";
}

bool FaultEvent::targets_host(HostId h) const {
  return std::find(hosts.begin(), hosts.end(), h) != hosts.end();
}

bool FaultEvent::targets_node(NodeId n) const {
  return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
}

bool FaultEvent::targets_cluster(std::uint32_t cluster) const {
  return std::find(clusters.begin(), clusters.end(), cluster) !=
         clusters.end();
}

namespace {

/// A random non-empty host subset of size <= half the fleet (so a
/// partition always leaves somebody on the other side).
std::vector<HostId> draw_hosts(common::Rng& rng, std::size_t host_count,
                               std::size_t max_size) {
  std::vector<HostId> out;
  if (host_count == 0) return out;
  const std::size_t want =
      1 + static_cast<std::size_t>(rng.bounded(std::max<std::size_t>(
              1, std::min(max_size, host_count))));
  for (std::size_t i = 0; i < want; ++i) {
    const HostId h{static_cast<std::uint32_t>(rng.bounded(host_count))};
    if (std::find(out.begin(), out.end(), h) == out.end()) out.push_back(h);
  }
  return out;
}

std::vector<NodeId> draw_nodes(common::Rng& rng, std::size_t node_count,
                               std::size_t max_size) {
  std::vector<NodeId> out;
  if (node_count == 0) return out;
  const std::size_t want =
      1 + static_cast<std::size_t>(rng.bounded(std::max<std::size_t>(
              1, std::min(max_size, node_count))));
  for (std::size_t i = 0; i < want; ++i) {
    const NodeId n{static_cast<std::uint32_t>(rng.bounded(node_count))};
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out;
}

/// A random non-empty cluster subset for link-scoped faults.
std::vector<std::uint32_t> draw_clusters(common::Rng& rng,
                                         std::size_t cluster_count,
                                         std::size_t max_size) {
  std::vector<std::uint32_t> out;
  if (cluster_count == 0) return out;
  const std::size_t want =
      1 + static_cast<std::size_t>(rng.bounded(std::max<std::size_t>(
              1, std::min(max_size, cluster_count))));
  for (std::size_t i = 0; i < want; ++i) {
    const auto c = static_cast<std::uint32_t>(rng.bounded(cluster_count));
    if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
  }
  return out;
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed,
                            const FaultPlanOptions& opts,
                            std::size_t host_count,
                            std::size_t node_count) {
  common::Rng rng(seed);
  std::vector<FaultKind> kinds;
  if (opts.include_ident) {
    kinds.push_back(FaultKind::ident_outage);
    kinds.push_back(FaultKind::ident_latency);
  }
  if (opts.include_network) {
    kinds.push_back(FaultKind::packet_loss);
    kinds.push_back(FaultKind::network_partition);
  }
  if (opts.include_hooks) {
    kinds.push_back(FaultKind::prolog_failure);
    kinds.push_back(FaultKind::epilog_failure);
    kinds.push_back(FaultKind::gpu_scrub_failure);
  }
  if (opts.include_fs) kinds.push_back(FaultKind::fs_outage);
  if (opts.include_portal) kinds.push_back(FaultKind::portal_outage);
  if (opts.include_crashes) kinds.push_back(FaultKind::node_crash_storm);
  if (opts.include_links && opts.cluster_count >= 2) {
    kinds.push_back(FaultKind::link_partition);
    kinds.push_back(FaultKind::link_latency);
    kinds.push_back(FaultKind::link_loss);
  }

  FaultPlan plan;
  if (kinds.empty()) return plan;
  for (std::size_t i = 0; i < opts.events; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.bounded(kinds.size())];
    e.start = common::SimTime{
        rng.uniform_int(0, std::max<std::int64_t>(0, opts.horizon_ns - 1))};
    e.duration_ns =
        rng.uniform_int(common::kMillisecond, opts.max_duration_ns);
    switch (e.kind) {
      case FaultKind::ident_outage:
        e.hosts = draw_hosts(rng, host_count, host_count);
        break;
      case FaultKind::ident_latency:
        e.hosts = draw_hosts(rng, host_count, host_count);
        e.extra_ns = rng.uniform_int(common::kMillisecond,
                                     50 * common::kMillisecond);
        break;
      case FaultKind::packet_loss:
        e.hosts = draw_hosts(rng, host_count, host_count);
        e.probability = rng.uniform01() * opts.packet_loss_max;
        break;
      case FaultKind::network_partition:
        e.hosts = draw_hosts(rng, host_count, host_count / 2);
        e.hosts_b = draw_hosts(rng, host_count, host_count / 2);
        break;
      case FaultKind::prolog_failure:
      case FaultKind::epilog_failure:
      case FaultKind::gpu_scrub_failure:
        e.nodes = draw_nodes(rng, node_count, node_count);
        e.probability = opts.hook_failure_prob;
        break;
      case FaultKind::fs_outage:
      case FaultKind::portal_outage:
        break;  // global
      case FaultKind::node_crash_storm:
        e.nodes = draw_nodes(rng, node_count,
                             std::max<std::size_t>(1, node_count / 2));
        break;
      case FaultKind::link_partition:
        e.clusters = draw_clusters(rng, opts.cluster_count,
                                   std::max<std::size_t>(
                                       1, opts.cluster_count / 2));
        e.clusters_b = draw_clusters(rng, opts.cluster_count,
                                     std::max<std::size_t>(
                                         1, opts.cluster_count / 2));
        break;
      case FaultKind::link_latency:
        e.clusters = draw_clusters(rng, opts.cluster_count,
                                   opts.cluster_count);
        e.extra_ns = rng.uniform_int(common::kMillisecond,
                                     opts.link_latency_max_ns);
        break;
      case FaultKind::link_loss:
        e.clusters = draw_clusters(rng, opts.cluster_count,
                                   opts.cluster_count);
        e.probability = rng.uniform01() * opts.link_loss_max;
        break;
    }
    plan.add(std::move(e));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += common::strformat(
        "%-18s start=%.3fs dur=%.3fs hosts=%zu/%zu nodes=%zu "
        "clusters=%zu/%zu p=%.2f\n",
        fault::to_string(e.kind), e.start.seconds(),
        static_cast<double>(e.duration_ns) * 1e-9, e.hosts.size(),
        e.hosts_b.size(), e.nodes.size(), e.clusters.size(),
        e.clusters_b.size(), e.probability);
  }
  return out;
}

}  // namespace heus::fault
