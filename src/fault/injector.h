// FaultInjector: applies a FaultPlan to a live core::Cluster.
//
// One object implements every injection surface:
//  - net::FaultModel (installed on the Network): ident outages and extra
//    latency, partitions refusing new connections, packet loss resetting
//    established flows.
//  - core::FaultHooks (installed on the Cluster): prolog/epilog script
//    failures and GPU-scrub failures, consulted per attempt so the
//    scheduler's drain/maintenance machinery sees realistic flapping.
//  - Outage probes on the shared filesystem and the portal gateway.
//  - pump(): fires node-crash storms whose window has opened (a crash is
//    an edge, not a level — each storm fires exactly once).
//
// Everything is driven by the cluster's own SimClock plus one seeded Rng,
// so a (plan, seed) pair replays identically. arm()/disarm() are
// symmetric; disarm restores a fully healthy cluster.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/cluster.h"
#include "fault/fault.h"
#include "net/network.h"

namespace heus::fault {

class FaultInjector final : public net::FaultModel {
 public:
  /// `seed` drives only the probabilistic checks (packet loss, hook
  /// failure probability); the schedule itself lives in `plan`.
  FaultInjector(core::Cluster* cluster, FaultPlan plan, std::uint64_t seed);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install on the cluster (network fault model, prolog/epilog/scrub
  /// hooks, FS + portal outage probes). Idempotent.
  void arm();
  /// Remove every installation; the cluster is healthy afterwards.
  void disarm();
  [[nodiscard]] bool armed() const { return armed_; }

  /// Fire node-crash storms whose start time has passed (each once).
  /// Call after advancing the clock. Returns storms fired this call.
  std::size_t pump();

  // ---- net::FaultModel ---------------------------------------------------

  [[nodiscard]] bool ident_down(HostId host) const override;
  [[nodiscard]] std::int64_t ident_extra_ns(HostId host) const override;
  [[nodiscard]] bool partitioned(HostId a, HostId b) const override;
  bool drop_packet(HostId a, HostId b) override;

  // ---- hook predicates (installed as core::FaultHooks) -------------------

  bool prolog_fails(NodeId node);
  bool epilog_fails(NodeId node);
  bool scrub_fails(NodeId node, GpuId gpu);
  [[nodiscard]] bool fs_down() const;
  [[nodiscard]] bool portal_down() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] common::SimTime now() const;
  /// Active node-scoped event of `kind` hitting `node`, if any.
  [[nodiscard]] const FaultEvent* active_on_node(FaultKind kind,
                                                 NodeId node) const;

  core::Cluster* cluster_;
  FaultPlan plan_;
  common::Rng rng_;
  std::vector<bool> storm_fired_;
  bool armed_ = false;
};

}  // namespace heus::fault
