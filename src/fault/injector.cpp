#include "fault/injector.h"

#include <algorithm>

namespace heus::fault {

FaultInjector::FaultInjector(core::Cluster* cluster, FaultPlan plan,
                             std::uint64_t seed)
    : cluster_(cluster),
      plan_(std::move(plan)),
      rng_(seed),
      storm_fired_(plan_.size(), false) {}

FaultInjector::~FaultInjector() {
  if (armed_) disarm();
}

common::SimTime FaultInjector::now() const {
  return cluster_->clock().now();
}

void FaultInjector::arm() {
  if (armed_) return;
  cluster_->network().set_fault_model(this);
  core::FaultHooks hooks;
  hooks.prolog_fails = [this](NodeId n) { return prolog_fails(n); };
  hooks.epilog_fails = [this](NodeId n) { return epilog_fails(n); };
  hooks.scrub_fails = [this](NodeId n, GpuId g) {
    return scrub_fails(n, g);
  };
  cluster_->set_fault_hooks(std::move(hooks));
  cluster_->shared_fs().set_outage_probe([this] { return fs_down(); });
  cluster_->portal().set_outage_probe([this] { return portal_down(); });
  armed_ = true;
}

void FaultInjector::disarm() {
  if (!armed_) return;
  cluster_->network().set_fault_model(nullptr);
  cluster_->set_fault_hooks({});
  cluster_->shared_fs().set_outage_probe(nullptr);
  cluster_->portal().set_outage_probe(nullptr);
  armed_ = false;
}

std::size_t FaultInjector::pump() {
  std::size_t fired = 0;
  const common::SimTime t = now();
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& e = plan_.events()[i];
    if (e.kind != FaultKind::node_crash_storm) continue;
    if (storm_fired_[i] || e.start > t) continue;
    storm_fired_[i] = true;
    ++fired;
    for (NodeId n : e.nodes) {
      // EBUSY (already down) and friends are expected mid-storm.
      (void)cluster_->scheduler().crash_node(n);
    }
  }
  return fired;
}

bool FaultInjector::ident_down(HostId host) const {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::ident_outage && e.active_at(t) &&
        e.targets_host(host)) {
      return true;
    }
  }
  return false;
}

std::int64_t FaultInjector::ident_extra_ns(HostId host) const {
  const common::SimTime t = now();
  std::int64_t extra = 0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::ident_latency && e.active_at(t) &&
        e.targets_host(host)) {
      extra += e.extra_ns;
    }
  }
  return extra;
}

bool FaultInjector::partitioned(HostId a, HostId b) const {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::network_partition || !e.active_at(t)) continue;
    if ((e.targets_host(a) && std::find(e.hosts_b.begin(), e.hosts_b.end(),
                                        b) != e.hosts_b.end()) ||
        (e.targets_host(b) && std::find(e.hosts_b.begin(), e.hosts_b.end(),
                                        a) != e.hosts_b.end())) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::drop_packet(HostId a, HostId b) {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::packet_loss || !e.active_at(t)) continue;
    if ((e.targets_host(a) || e.targets_host(b)) &&
        rng_.chance(e.probability)) {
      return true;
    }
  }
  return false;
}

const FaultEvent* FaultInjector::active_on_node(FaultKind kind,
                                                NodeId node) const {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == kind && e.active_at(t) && e.targets_node(node)) {
      return &e;
    }
  }
  return nullptr;
}

bool FaultInjector::prolog_fails(NodeId node) {
  const FaultEvent* e = active_on_node(FaultKind::prolog_failure, node);
  return e != nullptr && rng_.chance(e->probability);
}

bool FaultInjector::epilog_fails(NodeId node) {
  const FaultEvent* e = active_on_node(FaultKind::epilog_failure, node);
  return e != nullptr && rng_.chance(e->probability);
}

bool FaultInjector::scrub_fails(NodeId node, GpuId /*gpu*/) {
  const FaultEvent* e = active_on_node(FaultKind::gpu_scrub_failure, node);
  return e != nullptr && rng_.chance(e->probability);
}

bool FaultInjector::fs_down() const {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::fs_outage && e.active_at(t)) return true;
  }
  return false;
}

bool FaultInjector::portal_down() const {
  const common::SimTime t = now();
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::portal_outage && e.active_at(t)) return true;
  }
  return false;
}

}  // namespace heus::fault
