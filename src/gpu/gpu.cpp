#include "gpu/gpu.h"

#include <algorithm>
#include <cstring>

namespace heus::gpu {

Result<void> GpuDevice::assign(Uid user) {
  if (assigned_) return Errno::ebusy;
  assigned_ = user;
  ++stats_.assignments;
  return ok_result();
}

Result<void> GpuDevice::release() {
  if (!assigned_) return Errno::einval;
  assigned_.reset();
  return ok_result();
}

Result<void> GpuDevice::write(Uid user, std::size_t offset,
                              std::string_view data) {
  if (offset + data.size() > memory_.size()) return Errno::einval;
  std::memcpy(memory_.data() + offset, data.data(), data.size());
  last_writer_ = user;
  return ok_result();
}

Result<std::string> GpuDevice::read(Uid user, std::size_t offset,
                                    std::size_t len) {
  if (offset + len > memory_.size()) return Errno::einval;
  if (last_writer_ && *last_writer_ != user) {
    // The confidentiality failure the epilog scrub exists to prevent:
    // this read observes a previous tenant's bytes.
    ++stats_.residue_reads;
  }
  return std::string(reinterpret_cast<const char*>(memory_.data()) + offset,
                     len);
}

std::int64_t GpuDevice::scrub() {
  std::fill(memory_.begin(), memory_.end(), std::uint8_t{0});
  last_writer_.reset();
  ++stats_.scrubs;
  stats_.scrubbed_bytes += memory_.size();
  // Round up so even tiny (test-sized) buffers charge nonzero time.
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(memory_.size()) /
                                   kScrubBytesPerNs));
}

GpuSet::GpuSet(unsigned count, std::size_t mem_bytes_each) {
  devices_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    devices_.emplace_back(GpuId{i}, mem_bytes_each);
  }
}

std::int64_t GpuSet::scrub_all(const std::vector<GpuId>& indices) {
  std::int64_t total = 0;
  for (GpuId g : indices) total += devices_.at(g.value()).scrub();
  return total;
}

}  // namespace heus::gpu
