// Accelerator model (paper §IV-F).
//
// Two properties of real GPUs drive the design:
//  1. No internal ownership model: device memory has no concept of which
//     user's data it holds. Whoever can open the device can read all of it.
//  2. Memory is NOT cleared on reassignment: the previous job's data stays
//     resident in HBM and registers until something scrubs it.
//
// LLSC mitigates (1) by chgrp-ing the /dev character special files to the
// allocated user's private group (done by core::Cluster in the prolog) and
// (2) by running a vendor scrub in the scheduler epilog. The device model
// here keeps an actual byte buffer so tests can literally recover a
// previous tenant's plaintext when the scrub is disabled.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"

namespace heus::gpu {

/// Simulated scrub bandwidth: vendor tools sweep HBM at roughly memory
/// bandwidth; 1.5 TB/s is an A100-class figure. Only ratios matter.
inline constexpr double kScrubBytesPerNs = 1500.0;  // 1.5 TB/s

struct GpuStats {
  std::uint64_t assignments = 0;
  std::uint64_t scrubs = 0;
  std::uint64_t scrubbed_bytes = 0;
  std::uint64_t residue_reads = 0;  ///< reads that returned foreign data
  std::uint64_t failed_scrubs = 0;  ///< vendor scrub tool failures (fault)
};

class GpuDevice {
 public:
  GpuDevice(GpuId id, std::size_t mem_bytes)
      : id_(id), memory_(mem_bytes, std::uint8_t{0}) {}

  [[nodiscard]] GpuId id() const { return id_; }
  [[nodiscard]] std::size_t mem_bytes() const { return memory_.size(); }

  /// Scheduler prolog: hand the device to a user. The device itself does
  /// not scrub on assignment (property 2) — that is the epilog's job.
  Result<void> assign(Uid user);
  /// Scheduler epilog: release. Memory contents are left in place.
  Result<void> release();
  [[nodiscard]] std::optional<Uid> assigned_to() const { return assigned_; }

  /// cudaMemcpy-style access. Deliberately, there is NO ownership check
  /// here: real GPUs have no concept of data ownership inside device
  /// memory (paper §IV-F), so anyone who could open the /dev node (the
  /// VFS check, performed by the caller) gets the raw bytes. `user` is
  /// recorded purely for residue attribution.
  Result<void> write(Uid user, std::size_t offset, std::string_view data);
  Result<std::string> read(Uid user, std::size_t offset, std::size_t len);

  /// Vendor scrub: zero memory and registers. Returns the simulated
  /// duration in nanoseconds (proportional to memory size).
  std::int64_t scrub();

  /// Record a failed scrub attempt (the epilog's fault path): memory is
  /// left intact — which is exactly why the node must then be held.
  void note_scrub_failure() { ++stats_.failed_scrubs; }

  /// Who last wrote resident data (survives release). nullopt = clean.
  [[nodiscard]] std::optional<Uid> residue_owner() const {
    return last_writer_;
  }
  [[nodiscard]] bool dirty() const { return last_writer_.has_value(); }

  [[nodiscard]] const GpuStats& stats() const { return stats_; }

 private:
  GpuId id_;
  std::vector<std::uint8_t> memory_;
  std::optional<Uid> assigned_;
  std::optional<Uid> last_writer_;
  GpuStats stats_;
};

/// The GPUs of one node, indexed the way /dev/nvidia<N> is.
class GpuSet {
 public:
  GpuSet(unsigned count, std::size_t mem_bytes_each);

  [[nodiscard]] std::size_t size() const { return devices_.size(); }
  [[nodiscard]] GpuDevice& at(std::uint32_t index) {
    return devices_.at(index);
  }
  [[nodiscard]] const GpuDevice& at(std::uint32_t index) const {
    return devices_.at(index);
  }

  /// Epilog sweep: scrub every listed device; returns total simulated ns.
  std::int64_t scrub_all(const std::vector<GpuId>& indices);

 private:
  std::vector<GpuDevice> devices_;
};

}  // namespace heus::gpu
