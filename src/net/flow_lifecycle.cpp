#include "net/flow_lifecycle.h"

namespace heus::net {
namespace {

using lifecycle::Guard;
using lifecycle::GuardKind;
using lifecycle::kNoAction;
using lifecycle::kNoGuard;
using lifecycle::MachineDef;
using lifecycle::opens;
using lifecycle::Transition;

constexpr const char* kStates[] = {
    "nascent", "established", "denied", "closed", "reset", "expired",
};
constexpr const char* kEvents[] = {
    "hook-accept",  "hook-drop", "admit-uninspected", "activity",
    "teardown",     "identity-reset", "gc-due",
};
constexpr const char* kActions[] = {
    "establish", "refuse", "refresh-ttl", "reschedule-expiry", "destroy",
};

bool ubf_on(const lifecycle::PolicyView& p) { return p.ubf; }

constexpr Guard kGuards[] = {
    {"ubf-inspects", GuardKind::policy, obs::knob::ubf, ubf_on},
    {"flow-revived", GuardKind::env, nullptr, nullptr},
};

constexpr auto S = [](FlowState s) { return id(s); };
constexpr auto E = [](FlowEvent e) { return id(e); };
constexpr auto G = [](FlowGuard g) {
  return static_cast<lifecycle::GuardId>(g);
};
constexpr auto A = [](FlowAction a) {
  return static_cast<lifecycle::ActionId>(a);
};

const Transition kTransitions[] = {
    // Admission: the hook renders a verdict iff the UBF inspects the
    // port; otherwise the flow establishes with no enforcement at all —
    // the transition that opens the cross-user TCP/UDP channels.
    {S(FlowState::nascent), E(FlowEvent::hook_accept),
     G(FlowGuard::ubf_inspects), true, S(FlowState::established),
     A(FlowAction::establish)},
    {S(FlowState::nascent), E(FlowEvent::hook_drop),
     G(FlowGuard::ubf_inspects), true, S(FlowState::denied),
     A(FlowAction::refuse)},
    {S(FlowState::nascent), E(FlowEvent::admit_uninspected),
     G(FlowGuard::ubf_inspects), false, S(FlowState::established),
     A(FlowAction::establish),
     opens(obs::ChannelKind::tcp_cross_user,
           obs::ChannelKind::udp_cross_user)},
    // A teardown sweep (e.g. the hook itself calling close_sockets_of)
    // may reap a flow that never got its verdict.
    {S(FlowState::nascent), E(FlowEvent::teardown), kNoGuard, true,
     S(FlowState::closed), A(FlowAction::destroy)},
    // Fast path.
    {S(FlowState::established), E(FlowEvent::activity), kNoGuard, true,
     S(FlowState::established), A(FlowAction::refresh_ttl)},
    {S(FlowState::established), E(FlowEvent::teardown), kNoGuard, true,
     S(FlowState::closed), A(FlowAction::destroy)},
    {S(FlowState::established), E(FlowEvent::identity_reset), kNoGuard,
     true, S(FlowState::reset), A(FlowAction::destroy)},
    // GC: a revived flow (deadline refreshed since the heap entry was
    // pushed) is rescheduled, never torn down; only a genuinely idle
    // one expires. This pair is the single source of truth for
    // teardown eligibility the old code re-derived from timestamps.
    {S(FlowState::established), E(FlowEvent::gc_due),
     G(FlowGuard::flow_revived), true, S(FlowState::established),
     A(FlowAction::reschedule_expiry)},
    {S(FlowState::established), E(FlowEvent::gc_due),
     G(FlowGuard::flow_revived), false, S(FlowState::expired),
     A(FlowAction::destroy)},
};

}  // namespace

const lifecycle::MachineDef& flow_machine() {
  static const MachineDef def{
      "flow",
      kStates,
      id(FlowState::nascent),
      // denied | closed | reset | expired
      (1u << id(FlowState::denied)) | (1u << id(FlowState::closed)) |
          (1u << id(FlowState::reset)) | (1u << id(FlowState::expired)),
      kEvents,
      kGuards,
      kActions,
      kTransitions,
  };
  return def;
}

}  // namespace heus::net
