// Baseline firewall comparators from the paper's §IV-D argument.
//
// "Rather than a traditional firewall based on the source and destination,
// along with defined ports, protocols, and services (PPS) … A traditional
// PPS firewall would have no way to make an intelligent decision about a
// traffic flow consisting of a novel application still in its 'version 0'
// phase of development."  And on MAC labelling: "the coarse 'level'
// controls of MAC-based approaches do not address the fine-grained access
// control within a bucket needed for HPC systems."
//
// Both comparators are implemented as firewall hooks over the same
// simulated fabric so experiment E16 can race them against the UBF on the
// same traffic: per-port allowlists (PpsFirewall) and coarse user-zone
// labels (ZoneFirewall).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"
#include "net/network.h"

namespace heus::net {

/// A traditional ports/protocols/services firewall: a static table of
/// (proto, port-range) → allow. Default deny above the inspection floor.
/// It can see ports, not people — precisely its §IV-D inadequacy.
class PpsFirewall {
 public:
  struct Rule {
    Proto proto = Proto::tcp;
    std::uint16_t port_lo = 0;
    std::uint16_t port_hi = 0;
  };

  explicit PpsFirewall(Network* network) : network_(network) {}

  /// Allow a (proto, inclusive port range) service.
  void allow(Proto proto, std::uint16_t lo, std::uint16_t hi) {
    rules_.push_back({proto, lo, hi});
  }
  void allow_port(Proto proto, std::uint16_t port) {
    allow(proto, port, port);
  }

  [[nodiscard]] Verdict decide(const ConnRequest& req) const;
  void attach(std::uint16_t inspect_from_port = 1024);
  void detach() { network_->clear_hook(); }

  [[nodiscard]] std::uint64_t allowed() const { return allowed_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }

 private:
  Network* network_;
  std::vector<Rule> rules_;
  mutable std::uint64_t allowed_ = 0;
  mutable std::uint64_t denied_ = 0;
};

/// A coarse MAC/zoning model (the ClusterStor-SDA style the paper's
/// §IV-C/§IV-D discusses): every user is assigned to one zone, and
/// traffic is permitted iff both endpoints' owners share a zone. Inside a
/// zone there is NO finer control — the granularity failure the paper
/// calls out.
class ZoneFirewall {
 public:
  ZoneFirewall(const simos::UserDb* users, Network* network)
      : users_(users), network_(network) {}

  void assign_zone(Uid uid, int zone) { zones_[uid] = zone; }
  [[nodiscard]] std::optional<int> zone_of(Uid uid) const;

  [[nodiscard]] Verdict decide(const ConnRequest& req);
  void attach(std::uint16_t inspect_from_port = 1024);
  void detach() { network_->clear_hook(); }

  [[nodiscard]] std::uint64_t allowed() const { return allowed_; }
  [[nodiscard]] std::uint64_t denied() const { return denied_; }

 private:
  const simos::UserDb* users_;
  Network* network_;
  std::map<Uid, int> zones_;
  std::uint64_t allowed_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace heus::net
