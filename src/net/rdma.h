// InfiniBand/RDMA coverage model (paper §IV-D and appendix).
//
// The UBF controls RDMA *indirectly*: most frameworks bring up their queue
// pairs (QPs) over a TCP control channel, which the UBF inspects; an
// application that uses the native IB connection manager (CM) for QP setup
// bypasses the UBF entirely — the paper names this as a residual channel.
// Both paths are modelled so the coverage experiment (E6) can measure the
// fraction of RDMA traffic the UBF actually governs.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "net/network.h"
#include "obs/decision.h"

namespace heus::net {

struct QpIdTag {};
using QpId = StrongId<QpIdTag, std::uint64_t>;

enum class QpSetupPath { tcp_control_channel, native_cm };

struct QueuePair {
  QpId id{};
  HostId local_host{};
  HostId remote_host{};
  Uid local_uid{};
  Uid remote_uid{};
  QpSetupPath setup = QpSetupPath::tcp_control_channel;
  std::optional<FlowId> control_flow;  ///< present on the TCP path
  std::uint64_t bytes = 0;
  std::deque<std::string> inbox;
};

struct RdmaStats {
  std::uint64_t qp_setups_tcp = 0;
  std::uint64_t qp_setups_cm = 0;
  std::uint64_t qp_setups_blocked = 0;  ///< TCP path denied by the UBF
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
};

/// Manages simulated RDMA queue pairs over the simulated fabric.
class RdmaManager {
 public:
  explicit RdmaManager(Network* network) : network_(network) {}

  /// Route QP bring-up verdicts (blocked TCP rendezvous, cross-user
  /// native-CM setup) through the cluster decision trace. Null disables.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Bring up a QP the common way: a TCP control connection to the peer's
  /// rendezvous port carries the QP numbers. The connection is subject to
  /// whatever firewall hook the network has installed, so a UBF denial
  /// blocks the QP (ECONNREFUSED surfaces here).
  Result<QpId> setup_via_tcp(HostId local, const simos::Credentials& cred,
                             Pid pid, HostId remote,
                             std::uint16_t rendezvous_port);

  /// Bring up a QP through the native IB connection manager. No TCP is
  /// involved; nothing inspects this path (the residual channel). The
  /// remote side is identified only by its CM service id.
  Result<QpId> setup_via_cm(HostId local, const simos::Credentials& cred,
                            HostId remote, Uid remote_uid);

  /// One-sided RDMA write to the peer. Established QPs are never
  /// re-checked (exactly like conntrack-established TCP flows).
  Result<void> write(QpId qp, std::string payload);
  Result<std::string> poll(QpId qp);

  Result<void> destroy(QpId qp);
  [[nodiscard]] const QueuePair* find(QpId qp) const;
  [[nodiscard]] const RdmaStats& stats() const { return stats_; }

  /// QPs joining two different users — the residual-channel census input.
  [[nodiscard]] std::vector<QpId> cross_user_qps() const;

 private:
  Network* network_;
  obs::DecisionTrace* trace_ = nullptr;
  std::unordered_map<QpId, QueuePair> qps_;
  RdmaStats stats_;
  std::uint64_t next_qp_ = 1;
};

}  // namespace heus::net
