// The User-Based Firewall (paper §IV-D and the reproducibility appendix).
//
// A userspace daemon receives *new* connection requests from the nfqueue
// hook, performs an ident-like query against the initiating host and the
// local listener, and accepts iff:
//
//   (a) the initiating and listening processes are owned by the same uid, or
//   (b) the initiating uid is a member of the *primary (effective) group*
//       of the listening process.
//
// Rule (b) is the opt-in project-group extension: a server started under
// `newgrp <project>` accepts its project peers. Everything else is dropped.
// Established flows never reach the daemon (conntrack handles them), so the
// data path is unchanged — the zero-overhead property the paper leans on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/ids.h"
#include "net/network.h"
#include "simos/user_db.h"

namespace heus::net {

enum class UbfDecision {
  allow_same_user,
  allow_group_member,
  /// Degraded-mode allow under UbfDegradedMode::fail_open only: the ident
  /// path failed and the policy chose availability over attribution. Never
  /// the default; exists so E18 can measure what that trade costs.
  allow_fail_open,
  deny,
};

/// What the daemon does when the ident exchange cannot attribute an end.
enum class UbfDegradedMode {
  /// Drop immediately on the first ident failure (strict, cheapest).
  fail_closed,
  /// Retry timed-out queries with bounded exponential backoff, then drop.
  /// The default: transient responder outages cost latency, not service.
  retry_then_fail_closed,
  /// Allow unattributed connections (the strawman no real site should
  /// run; quantified by E18 to show faults then cost *isolation*).
  fail_open,
};

[[nodiscard]] constexpr const char* to_string(UbfDegradedMode m) {
  switch (m) {
    case UbfDegradedMode::fail_closed: return "fail-closed";
    case UbfDegradedMode::retry_then_fail_closed: return "retry+backoff";
    case UbfDegradedMode::fail_open: return "fail-open";
  }
  return "?";
}

struct UbfStats {
  std::uint64_t decisions = 0;
  std::uint64_t allowed_same_user = 0;
  std::uint64_t allowed_group = 0;
  std::uint64_t denied = 0;
  std::uint64_t ident_failures = 0;  ///< fail-closed drops (all causes)
  // Per-cause breakdown of the degraded ident path:
  std::uint64_t ident_retries = 0;          ///< backoff re-queries issued
  std::uint64_t ident_retry_successes = 0;  ///< queries saved by a retry
  std::uint64_t ident_timeout_drops = 0;    ///< exhausted on etimedout
  std::uint64_t ident_unattributed_drops = 0;  ///< responder said "nobody"
  std::uint64_t fail_open_allows = 0;  ///< fail_open mode only
};

struct UbfOptions {
  /// Inspect ports >= this (the appendix: "ports numbered 1024 and above").
  std::uint16_t inspect_from_port = 1024;
  /// Rule (b) opt-in group extension enabled.
  bool allow_group_peers = true;
};

/// One record of a decision, for audit trails / debugging examples.
struct UbfLogEntry {
  ConnRequest request;
  Uid client_uid{};
  Uid server_uid{};
  Gid server_egid{};
  UbfDecision decision = UbfDecision::deny;
};

class Ubf {
 public:
  Ubf(const simos::UserDb* users, Network* network, UbfOptions opts = {})
      : users_(users), network_(network), opts_(opts) {}

  /// Install this daemon as the network's new-connection hook.
  void attach();
  /// Remove the hook (reverting to an open network).
  void detach();

  /// The decision function itself (exposed for unit tests and for the
  /// microbenchmark of decision cost).
  [[nodiscard]] UbfDecision decide(const ConnRequest& req);

  /// Degraded-mode policy for ident failures. The clock (when provided)
  /// is charged the backoff waits, so retries cost simulated latency the
  /// way a real daemon's blocking re-query would.
  void set_degraded_mode(UbfDegradedMode mode,
                         common::BackoffPolicy backoff = {}) {
    degraded_ = mode;
    backoff_ = backoff;
  }
  [[nodiscard]] UbfDegradedMode degraded_mode() const { return degraded_; }
  void set_clock(common::SimClock* clock) { clock_ = clock; }

  [[nodiscard]] const UbfStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Ring buffer of recent decisions (bounded).
  [[nodiscard]] const std::vector<UbfLogEntry>& log() const { return log_; }
  void set_log_limit(std::size_t n) { log_limit_ = n; }

 private:
  /// One ident query under the active degraded-mode policy.
  [[nodiscard]] Result<IdentInfo> ident_with_retry(HostId host, Proto proto,
                                                   std::uint16_t port);

  const simos::UserDb* users_;
  Network* network_;
  UbfOptions opts_;
  UbfDegradedMode degraded_ = UbfDegradedMode::retry_then_fail_closed;
  common::BackoffPolicy backoff_;
  common::SimClock* clock_ = nullptr;
  UbfStats stats_;
  std::vector<UbfLogEntry> log_;
  std::size_t log_limit_ = 256;
};

}  // namespace heus::net
