// The User-Based Firewall (paper §IV-D and the reproducibility appendix).
//
// A userspace daemon receives *new* connection requests from the nfqueue
// hook, performs an ident-like query against the initiating host and the
// local listener, and accepts iff:
//
//   (a) the initiating and listening processes are owned by the same uid, or
//   (b) the initiating uid is a member of the *primary (effective) group*
//       of the listening process.
//
// Rule (b) is the opt-in project-group extension: a server started under
// `newgrp <project>` accepts its project peers. Everything else is dropped.
// Established flows never reach the daemon (conntrack handles them), so the
// data path is unchanged — the zero-overhead property the paper leans on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "net/network.h"
#include "simos/user_db.h"

namespace heus::net {

enum class UbfDecision { allow_same_user, allow_group_member, deny };

struct UbfStats {
  std::uint64_t decisions = 0;
  std::uint64_t allowed_same_user = 0;
  std::uint64_t allowed_group = 0;
  std::uint64_t denied = 0;
  std::uint64_t ident_failures = 0;  ///< fail-closed drops
};

struct UbfOptions {
  /// Inspect ports >= this (the appendix: "ports numbered 1024 and above").
  std::uint16_t inspect_from_port = 1024;
  /// Rule (b) opt-in group extension enabled.
  bool allow_group_peers = true;
};

/// One record of a decision, for audit trails / debugging examples.
struct UbfLogEntry {
  ConnRequest request;
  Uid client_uid{};
  Uid server_uid{};
  Gid server_egid{};
  UbfDecision decision = UbfDecision::deny;
};

class Ubf {
 public:
  Ubf(const simos::UserDb* users, Network* network, UbfOptions opts = {})
      : users_(users), network_(network), opts_(opts) {}

  /// Install this daemon as the network's new-connection hook.
  void attach();
  /// Remove the hook (reverting to an open network).
  void detach();

  /// The decision function itself (exposed for unit tests and for the
  /// microbenchmark of decision cost).
  [[nodiscard]] UbfDecision decide(const ConnRequest& req);

  [[nodiscard]] const UbfStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Ring buffer of recent decisions (bounded).
  [[nodiscard]] const std::vector<UbfLogEntry>& log() const { return log_; }
  void set_log_limit(std::size_t n) { log_limit_ = n; }

 private:
  const simos::UserDb* users_;
  Network* network_;
  UbfOptions opts_;
  UbfStats stats_;
  std::vector<UbfLogEntry> log_;
  std::size_t log_limit_ = 256;
};

}  // namespace heus::net
