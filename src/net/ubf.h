// The User-Based Firewall (paper §IV-D and the reproducibility appendix).
//
// A userspace daemon receives *new* connection requests from the nfqueue
// hook, performs an ident-like query against the initiating host and the
// local listener, and accepts iff:
//
//   (a) the initiating and listening processes are owned by the same uid, or
//   (b) the initiating uid is a member of the *primary (effective) group*
//       of the listening process.
//
// Rule (b) is the opt-in project-group extension: a server started under
// `newgrp <project>` accepts its project peers. Everything else is dropped.
// Established flows never reach the daemon (conntrack handles them), so the
// data path is unchanged — the zero-overhead property the paper leans on.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/flat_map.h"
#include "common/clock.h"
#include "common/ids.h"
#include "net/network.h"
#include "obs/decision.h"
#include "simos/user_db.h"

namespace heus::net {

enum class UbfDecision {
  allow_same_user,
  allow_group_member,
  /// Degraded-mode allow under UbfDegradedMode::fail_open only: the ident
  /// path failed and the policy chose availability over attribution. Never
  /// the default; exists so E18 can measure what that trade costs.
  allow_fail_open,
  deny,
};

/// What the daemon does when the ident exchange cannot attribute an end.
enum class UbfDegradedMode {
  /// Drop immediately on the first ident failure (strict, cheapest).
  fail_closed,
  /// Retry timed-out queries with bounded exponential backoff, then drop.
  /// The default: transient responder outages cost latency, not service.
  retry_then_fail_closed,
  /// Allow unattributed connections (the strawman no real site should
  /// run; quantified by E18 to show faults then cost *isolation*).
  fail_open,
};

[[nodiscard]] constexpr const char* to_string(UbfDegradedMode m) {
  switch (m) {
    case UbfDegradedMode::fail_closed: return "fail-closed";
    case UbfDegradedMode::retry_then_fail_closed: return "retry+backoff";
    case UbfDegradedMode::fail_open: return "fail-open";
  }
  return "?";
}

struct UbfStats {
  std::uint64_t decisions = 0;
  std::uint64_t allowed_same_user = 0;
  std::uint64_t allowed_group = 0;
  std::uint64_t denied = 0;
  std::uint64_t ident_failures = 0;  ///< fail-closed drops (all causes)
  // Per-cause breakdown of the degraded ident path:
  std::uint64_t ident_retries = 0;          ///< backoff re-queries issued
  std::uint64_t ident_retry_successes = 0;  ///< queries saved by a retry
  std::uint64_t ident_timeout_drops = 0;    ///< exhausted on etimedout
  std::uint64_t ident_unattributed_drops = 0;  ///< responder said "nobody"
  std::uint64_t fail_open_allows = 0;  ///< fail_open mode only
  // Decision cache (E20): attributed-path decisions memoized by
  // (initiator uid, listener uid, listener egid, degraded mode).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Cache clears triggered by an observed UserDb generation bump.
  std::uint64_t cache_invalidations = 0;
};

struct UbfOptions {
  /// Inspect ports >= this (the appendix: "ports numbered 1024 and above").
  std::uint16_t inspect_from_port = 1024;
  /// Rule (b) opt-in group extension enabled.
  bool allow_group_peers = true;
};

/// One record of a decision, for audit trails / debugging examples.
struct UbfLogEntry {
  ConnRequest request;
  Uid client_uid{};
  Uid server_uid{};
  Gid server_egid{};
  UbfDecision decision = UbfDecision::deny;
};

class Ubf {
 public:
  Ubf(const simos::UserDb* users, Network* network, UbfOptions opts = {})
      : users_(users), network_(network), opts_(opts) {}

  /// Install this daemon as the network's new-connection hook.
  void attach();
  /// Remove the hook (reverting to an open network).
  void detach();

  /// The decision function itself (exposed for unit tests and for the
  /// microbenchmark of decision cost).
  [[nodiscard]] UbfDecision decide(const ConnRequest& req);

  /// Degraded-mode policy for ident failures. The clock (when provided)
  /// is charged the backoff waits, so retries cost simulated latency the
  /// way a real daemon's blocking re-query would.
  void set_degraded_mode(UbfDegradedMode mode,
                         common::BackoffPolicy backoff = {}) {
    degraded_ = mode;
    backoff_ = backoff;
  }
  [[nodiscard]] UbfDegradedMode degraded_mode() const { return degraded_; }
  void set_clock(common::SimClock* clock) { clock_ = clock; }

  /// Route admission verdicts (cached hits and degraded-mode fallbacks
  /// included) through the cluster decision trace. Null disables it.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Aggregated over all shards (see the sharding note below). Each field
  /// is a sum of per-shard counters that depend only on that shard's
  /// serial decision stream, so the totals are interleaving-independent.
  [[nodiscard]] UbfStats stats() const {
    UbfStats s;
    for (const Shard& sh : shards_) {
      const UbfStats& x = sh.stats;
      s.decisions += x.decisions;
      s.allowed_same_user += x.allowed_same_user;
      s.allowed_group += x.allowed_group;
      s.denied += x.denied;
      s.ident_failures += x.ident_failures;
      s.ident_retries += x.ident_retries;
      s.ident_retry_successes += x.ident_retry_successes;
      s.ident_timeout_drops += x.ident_timeout_drops;
      s.ident_unattributed_drops += x.ident_unattributed_drops;
      s.fail_open_allows += x.fail_open_allows;
      s.cache_hits += x.cache_hits;
      s.cache_misses += x.cache_misses;
      s.cache_invalidations += x.cache_invalidations;
    }
    return s;
  }
  void reset_stats() {
    for (Shard& sh : shards_) sh.stats = {};
  }

  // ---- decision cache ---------------------------------------------------
  //
  // Memoizes the *attributed* decision path — the (same-uid || member of
  // listener's egid) evaluation against the account database — keyed by
  // (initiator uid, listener uid, listener egid, degraded mode). Ident
  // results are never cached: port ownership is connection-local state.
  //
  // Invalidation is epoch-based and fail-safe: every decide() compares the
  // cache's epoch against UserDb::generation() and clears the whole cache
  // on any mismatch. Any mutation anywhere in the database discards every
  // cached decision (over-invalidation), so a revoked membership can never
  // be served from cache (under-invalidation is structurally impossible).

  void set_cache_enabled(bool on) {
    cache_enabled_ = on;
    if (!on) {
      for (Shard& sh : shards_) sh.cache.clear();
    }
  }
  [[nodiscard]] bool cache_enabled() const { return cache_enabled_; }
  /// UserDb generation the current cache contents were computed against
  /// (shard 0's epoch; all shards converge on the same generation).
  [[nodiscard]] std::uint64_t cache_epoch() const {
    return shards_.front().cache_epoch;
  }
  [[nodiscard]] std::size_t cache_size() const {
    std::size_t n = 0;
    for (const Shard& sh : shards_) n += sh.cache.size();
    return n;
  }

  /// Recent decisions (bounded per shard), concatenated in shard order.
  [[nodiscard]] std::vector<UbfLogEntry> log() const {
    std::vector<UbfLogEntry> out;
    for (const Shard& sh : shards_) {
      out.insert(out.end(), sh.log.begin(), sh.log.end());
    }
    return out;
  }
  void set_log_limit(std::size_t n) { log_limit_ = n; }

 private:
  struct CacheKey {
    Uid initiator{};
    Uid listener{};
    Gid egid{};
    UbfDegradedMode mode = UbfDegradedMode::retry_then_fail_closed;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // FNV-1a over the four fields; cheap and deterministic.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (std::uint64_t v :
           {static_cast<std::uint64_t>(k.initiator.value()),
            static_cast<std::uint64_t>(k.listener.value()),
            static_cast<std::uint64_t>(k.egid.value()),
            static_cast<std::uint64_t>(k.mode)}) {
        h = (h ^ v) * 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  // ---- sharding (ISSUE 9) -----------------------------------------------
  //
  // The daemon's mutable state — stats, decision log, decision cache —
  // is partitioned exactly like the network's flow table: one Shard per
  // network bucket (G group shards + the cross-group shard). decide()
  // touches only the shard of the operation's bucket, so intra-group
  // admission verdicts can run on the engine's worker threads with no
  // shared mutable state, and the per-shard cache hit/miss streams are
  // serial (hence deterministic) regardless of worker count. attach()
  // sizes the shard vector from the network; call enable_sharding()
  // before attaching (Cluster::apply_policy rebuilds + reattaches).
  struct Shard {
    UbfStats stats;
    std::vector<UbfLogEntry> log;
    std::uint64_t cache_epoch = 0;
    /// Open-addressing over a dense entry array (common::FlatMap): the
    /// admission fast path probes one contiguous index instead of
    /// chasing unordered_map node pointers, and the epoch clear() is a
    /// pair of vector clears rather than a bucket-by-bucket teardown.
    common::FlatMap<CacheKey, UbfDecision, CacheKeyHash> cache;
  };

  /// The shard owning this request: the network bucket of its endpoints.
  /// Out-of-range means the network was sharded after attach() — the
  /// daemon must be re-attached (Cluster::apply_policy) first.
  [[nodiscard]] Shard& shard_for(const ConnRequest& req) {
    const std::uint32_t b = network_->op_bucket(req.src_host, req.dst_host);
    assert(b < shards_.size() && "re-attach the UBF after enable_sharding");
    return shards_[b];
  }

  /// One ident query under the active degraded-mode policy; retry
  /// accounting lands in the caller's shard.
  [[nodiscard]] Result<IdentInfo> ident_with_retry(Shard& sh, HostId host,
                                                   Proto proto,
                                                   std::uint16_t port);

  const simos::UserDb* users_;
  Network* network_;
  UbfOptions opts_;
  UbfDegradedMode degraded_ = UbfDegradedMode::retry_then_fail_closed;
  common::BackoffPolicy backoff_;
  common::SimClock* clock_ = nullptr;
  obs::DecisionTrace* trace_ = nullptr;
  std::size_t log_limit_ = 256;
  bool cache_enabled_ = true;
  std::vector<Shard> shards_{Shard{}};
};

}  // namespace heus::net
