#include "net/ubf.h"

namespace heus::net {

void Ubf::attach() {
  // Mirror the network's bucket layout (1 while unsharded; G+1 once the
  // engine has partitioned the fabric). Serial-phase only: attach happens
  // at cluster assembly / policy application, never inside a tick.
  if (shards_.size() != network_->bucket_count()) {
    shards_.clear();
    shards_.resize(network_->bucket_count());
  }
  network_->set_hook(
      [this](const ConnRequest& req) {
        return decide(req) == UbfDecision::deny ? Verdict::drop
                                                : Verdict::accept;
      },
      opts_.inspect_from_port);
}

void Ubf::detach() { network_->clear_hook(); }

Result<IdentInfo> Ubf::ident_with_retry(Shard& sh, HostId host, Proto proto,
                                        std::uint16_t port) {
  auto r = network_->ident_lookup(host, proto, port);
  if (degraded_ != UbfDegradedMode::retry_then_fail_closed) return r;
  // Only timeouts are worth re-asking: a responder that answered "nobody
  // owns that port" (ENOENT) is healthy and will say it again.
  for (unsigned attempt = 0;
       !r && r.error() == Errno::etimedout && attempt < backoff_.max_retries;
       ++attempt) {
    if (clock_ != nullptr) clock_->advance(backoff_.delay_ns(attempt));
    ++sh.stats.ident_retries;
    r = network_->ident_lookup(host, proto, port);
    if (r) ++sh.stats.ident_retry_successes;
  }
  return r;
}

UbfDecision Ubf::decide(const ConnRequest& req) {
  Shard& sh = shard_for(req);
  ++sh.stats.decisions;

  // Epoch check first: any UserDb mutation since this shard's cache was
  // filled discards all of it. Over-invalidation by design — the clear is
  // cheap and a stale allow after a revoke is impossible by construction.
  if (cache_enabled_ && sh.cache_epoch != users_->generation()) {
    ++sh.stats.cache_invalidations;
    sh.cache.clear();
    sh.cache_epoch = users_->generation();
  }

  // Ident exchange: who is listening locally, who is connecting remotely.
  auto listener =
      ident_with_retry(sh, req.dst_host, req.proto, req.dst_port);
  auto initiator =
      ident_with_retry(sh, req.src_host, req.proto, req.src_port);

  UbfLogEntry entry;
  entry.request = req;

  UbfDecision decision = UbfDecision::deny;
  bool from_cache = false;
  if (!listener || !initiator) {
    // An end could not be attributed. Classify the cause, then apply the
    // degraded-mode policy — fail closed unless explicitly configured to
    // the fail-open strawman.
    const Errno cause = !listener ? listener.error() : initiator.error();
    if (degraded_ == UbfDegradedMode::fail_open) {
      decision = UbfDecision::allow_fail_open;
      ++sh.stats.fail_open_allows;
    } else {
      if (cause == Errno::etimedout) {
        ++sh.stats.ident_timeout_drops;
      } else {
        ++sh.stats.ident_unattributed_drops;
      }
      ++sh.stats.ident_failures;
    }
  } else {
    entry.client_uid = initiator->uid;
    entry.server_uid = listener->uid;
    entry.server_egid = listener->egid;
    const CacheKey key{initiator->uid, listener->uid, listener->egid,
                       degraded_};
    if (const UbfDecision* hit =
            cache_enabled_ ? sh.cache.find(key) : nullptr;
        hit != nullptr) {
      // Memoized attributed decision: the directory-service membership
      // evaluation is skipped entirely. Valid because the epoch check
      // above proved the account database is unchanged since this entry
      // was computed.
      ++sh.stats.cache_hits;
      from_cache = true;
      decision = *hit;
    } else {
      if (cache_enabled_) ++sh.stats.cache_misses;
      if (initiator->uid == listener->uid) {
        decision = UbfDecision::allow_same_user;
      } else if (opts_.allow_group_peers &&
                 users_->is_member(initiator->uid, listener->egid)) {
        // Membership is evaluated against the account database (the real
        // daemon resolves the listener's egid and the initiator's group
        // list from the directory service).
        const simos::Group* g = users_->find_group(listener->egid);
        // A user-private group contains only its owner, so rule (b) can
        // only ever fire for genuine shared groups — but the membership
        // test alone already guarantees that; the kind check is not
        // needed.
        (void)g;
        decision = UbfDecision::allow_group_member;
      }
      if (cache_enabled_) sh.cache.emplace(key, decision);
    }
  }

  switch (decision) {
    case UbfDecision::allow_same_user: ++sh.stats.allowed_same_user; break;
    case UbfDecision::allow_group_member: ++sh.stats.allowed_group; break;
    case UbfDecision::allow_fail_open: break;  // counted above
    case UbfDecision::deny: ++sh.stats.denied; break;
  }

  if (trace_ != nullptr) {
    const bool attributed =
        static_cast<bool>(listener) && static_cast<bool>(initiator);
    const bool cross_user =
        attributed && initiator->uid != listener->uid;
    // Same-user traffic is not a separation event; everything else —
    // cross-user verdicts, cached replays, and unattributed degraded-mode
    // fallbacks — is.
    if (!attributed || cross_user) {
      const char* knob = nullptr;
      if (decision == UbfDecision::deny) {
        knob = obs::knob::ubf;
      } else if (decision == UbfDecision::allow_group_member) {
        knob = obs::knob::ubf_group_peers;
      }
      trace_->record(obs::DecisionPoint::ubf_admission,
                     decision == UbfDecision::deny ? obs::Outcome::deny
                                                   : obs::Outcome::allow,
                     attributed ? initiator->uid : Uid{},
                     attributed ? initiator->egid : Gid{},
                     attributed ? listener->uid : Uid{},
                     req.proto == Proto::udp
                         ? obs::ChannelKind::udp_cross_user
                         : obs::ChannelKind::tcp_cross_user,
                     knob,
                     [&](std::string& out) {
                       out += "host ";
                       obs::append_uint(out, req.dst_host.value());
                       out += " port ";
                       obs::append_uint(out, req.dst_port);
                       out += req.proto == Proto::udp ? " udp" : " tcp";
                     },
                     from_cache);
    }
  }

  entry.decision = decision;
  if (sh.log.size() < log_limit_) sh.log.push_back(entry);
  return decision;
}

}  // namespace heus::net
