// Simulated cluster network: hosts, TCP/UDP sockets, connection tracking,
// and the nfqueue-style hook point where the user-based firewall attaches
// (paper §IV-D).
//
// Fidelity notes:
//  - Only *new* connections traverse the hook; established flows hit the
//    conntrack table and bypass it, exactly the property that lets the UBF
//    add zero per-packet cost.
//  - An RFC1413-style ident service answers "which uid/egid owns local
//    port P" for both nascent and established flows; the UBF queries it on
//    both ends of a candidate connection.
//  - Abstract-namespace unix domain sockets are modelled with *no*
//    permission checks, because the paper's Results section lists them as
//    a residual cross-user channel; the leakage auditor probes them.
//
// Memory layout (DESIGN.md §8): flow state is stored struct-of-arrays —
// a dense hot array (FlowHot: ids, endpoints, state, deadline) that GC
// and audit sweeps touch, and a parallel cold array (FlowCold: message
// rings, byte counters) that only send/recv touch. Message queues and the
// freed-ephemeral-port pool are arena-backed rings owned by the flow's
// bucket, so steady-state connection churn performs no global-heap
// allocation. Every index is a FlatMap/FlatSet whose iteration order is a
// pure function of the operation sequence (never of hash internals), the
// property the pinned golden digests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/clock.h"
#include "common/flat_map.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/slot_map.h"
#include "net/flow_lifecycle.h"
#include "obs/decision.h"
#include "simos/credentials.h"

namespace heus::net {

enum class Proto { tcp, udp };

/// What identd reports about the process that owns a local port.
struct IdentInfo {
  Uid uid{};
  Gid egid{};
  Pid pid{};
};

/// A connection attempt as seen by the receiving host's firewall hook.
struct ConnRequest {
  HostId src_host{};
  std::uint16_t src_port = 0;
  HostId dst_host{};
  std::uint16_t dst_port = 0;
  Proto proto = Proto::tcp;
};

enum class Verdict { accept, drop };

/// Decision callback installed at the nfqueue hook point.
using FirewallHook = std::function<Verdict(const ConnRequest&)>;

struct Listener {
  simos::Credentials cred;  ///< captured at listen(); egid set via newgrp/sg
  Pid pid{};
  std::uint16_t port = 0;
  Proto proto = Proto::tcp;
};

/// Fault-injection surface for the fabric. Implemented by
/// fault::FaultInjector; declared here (abstract, no fault dependency) so
/// the network can consult it without a layering inversion. All
/// predicates are evaluated against the simulated clock by the
/// implementation; the network just asks.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  /// The ident responder on `host` is down (queries time out).
  [[nodiscard]] virtual bool ident_down(HostId host) const = 0;
  /// Extra latency (ns) an ident query against `host` incurs right now.
  [[nodiscard]] virtual std::int64_t ident_extra_ns(HostId host) const = 0;
  /// Hosts `a` and `b` cannot currently exchange packets.
  [[nodiscard]] virtual bool partitioned(HostId a, HostId b) const = 0;
  /// Should this packet between `a` and `b` be dropped? Non-const: the
  /// implementation may consume seeded randomness.
  virtual bool drop_packet(HostId a, HostId b) = 0;
};

/// A by-value snapshot of one flow, as returned by find_flow(). The
/// network stores flows struct-of-arrays internally (hot fields dense,
/// message queues in arena rings), so there is no stable Flow object to
/// point at; callers get a copy of the fields that outlive the call.
struct Flow {
  FlowId id{};
  Proto proto = Proto::tcp;
  HostId client_host{};
  std::uint16_t client_port = 0;
  HostId server_host{};
  std::uint16_t server_port = 0;
  Uid client_uid{};
  Uid server_uid{};
  /// Driven exclusively through the flow lifecycle table
  /// (net/flow_lifecycle.h); nascent until the admission verdict.
  FlowState state = FlowState::nascent;
  std::size_t to_server_len = 0;  ///< in-flight client->server messages
  std::size_t to_client_len = 0;
  std::uint64_t bytes = 0;
  /// Conntrack idle-expiry deadline (ns); refreshed on activity when a
  /// flow TTL is configured. 0 = never expires.
  std::int64_t expires_at_ns = 0;
};

enum class FlowEnd { client, server };

/// Simulated latency cost of network operations, in nanoseconds. These are
/// order-of-magnitude figures for a modern cluster fabric; experiments
/// report ratios, which are insensitive to the absolute values.
struct LatencyModel {
  std::int64_t base_syn_ns = 15'000;       ///< SYN handling w/o any hook
  std::int64_t conntrack_lookup_ns = 120;  ///< established-path check
  std::int64_t hook_dispatch_ns = 2'500;   ///< kernel->userspace nfqueue hop
  std::int64_t ident_local_ns = 1'800;     ///< identd query on same host
  std::int64_t ident_remote_ns = 55'000;   ///< cross-host ident RTT
  std::int64_t per_packet_ns = 900;        ///< per-message fixed cost
  double fabric_bytes_per_ns = 25.0;       ///< ~25 GB/s (200Gb-class link)
  /// How long a caller waits before declaring an ident query dead. This is
  /// the fail-closed budget the UBF's retry policy multiplies.
  std::int64_t ident_timeout_ns = 2 * common::kMillisecond;
};

struct NetworkStats {
  std::uint64_t connections_attempted = 0;
  std::uint64_t connections_established = 0;
  std::uint64_t connections_refused = 0;   ///< no listener
  std::uint64_t connections_dropped = 0;   ///< hook verdict drop
  std::uint64_t hook_invocations = 0;
  std::uint64_t conntrack_hits = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t ident_queries = 0;
  std::uint64_t ident_timeouts = 0;        ///< responder down (fault)
  std::uint64_t partition_refusals = 0;    ///< connect across a partition
  std::uint64_t packets_dropped = 0;       ///< loss/partition on send
  /// Established flows reset because the listener's identity no longer
  /// matches the conntrack entry (e.g. changed across a partition heal).
  std::uint64_t flows_reset_identity_changed = 0;
  // -- hot-path accounting (E20): work is measured in entries touched, --
  // -- not wall clock, so the numbers are machine-independent.         --
  std::uint64_t flows_expired = 0;     ///< idle conntrack entries GC'd
  std::uint64_t gc_runs = 0;           ///< gc() invocations
  /// Entries examined by GC and teardown sweeps (heap pops, per-flow and
  /// per-listener visits). The scale benchmark compares this against what
  /// a full-table scan would have touched.
  std::uint64_t gc_entries_touched = 0;
  std::uint64_t ephemeral_exhausted = 0;  ///< connect() hit an empty pool
};

/// RAII guard a sharded-engine worker installs while running one node
/// group's intra-shard phase. While a scope is active on a thread, every
/// Network operation on that thread asserts that it touches only the
/// scoped bucket — catching cross-shard state access at the exact call
/// site instead of as a data race. Serial (barrier-phase) code runs with
/// no scope installed and may touch anything.
class ShardScope {
 public:
  explicit ShardScope(std::uint32_t bucket);
  ~ShardScope();
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;
  /// The active bucket on this thread, or -1 when unscoped.
  [[nodiscard]] static int current();

 private:
  int prev_;
};

/// The cluster fabric. Single instance shared by all nodes.
///
/// Sharding model (ISSUE 9): flow-table state is internally partitioned
/// into G per-group buckets plus one cross-group bucket. A host belongs
/// to exactly one node group; an operation whose endpoints share a group
/// is *intra-group* and touches only that group's bucket (plus the
/// per-host state of that group's hosts), so the sharded engine can run
/// different groups' operation streams on different worker threads with
/// no shared mutable state. Operations spanning two groups are
/// *cross-group*: they live in the cross bucket and are only legal in
/// the serial barrier phase. Flow ids carry their bucket in the top 16
/// bits, which makes id->bucket routing O(1) and — because bucket-local
/// counters, not a global one, allocate the low bits — keeps every id a
/// pure function of the per-group operation stream, independent of
/// thread interleaving and worker count. The default (one group) is
/// bit-identical to the pre-sharding network: every id is (0 << 48) | n
/// with n counting from 1.
class Network {
 public:
  Network(const common::SimClock* clock, common::SimClock* mutable_clock)
      : clock_(clock), mutable_clock_(mutable_clock) {
    buckets_.resize(1);  // Bucket owns an Arena: not copy-initialisable
  }
  explicit Network(common::SimClock* clock) : Network(clock, clock) {}

  HostId add_host(const std::string& name);
  [[nodiscard]] std::optional<HostId> find_host(
      const std::string& name) const;
  [[nodiscard]] const std::string& host_name(HostId h) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Install/remove the firewall hook for *new* connections. Ports below
  /// `inspect_from_port` are never queued to the hook (the paper deploys
  /// the UBF on ports >= 1024; system services live below).
  void set_hook(FirewallHook hook, std::uint16_t inspect_from_port = 1024);
  void clear_hook();
  /// True iff a firewall hook would inspect new flows to `port`.
  [[nodiscard]] bool inspects(std::uint16_t port) const {
    return static_cast<bool>(hook_) && port >= inspect_from_port_;
  }

  /// Route uninspected cross-user flow establishment (no hook installed,
  /// or port below the inspection floor) and abstract-socket connects
  /// through the cluster decision trace. Null disables recording.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Install/remove the fault model the fabric consults (nullptr = healthy
  /// network). Not owned; the injector outlives its armed window.
  void set_fault_model(FaultModel* model) { faults_ = model; }
  [[nodiscard]] FaultModel* fault_model() const { return faults_; }

  // ---- node-group sharding ---------------------------------------------

  /// Partition the fabric into `groups` node groups; `host_group[h]` is
  /// the group of host h (every value < groups; hosts added later join
  /// group 0). Must be called while no flows exist — typically right
  /// after cluster assembly. Allocates groups+1 buckets (the last is the
  /// cross-group bucket) and restarts every bucket-local flow counter.
  void enable_sharding(std::uint32_t groups,
                       std::vector<std::uint32_t> host_group);
  [[nodiscard]] std::uint32_t group_count() const { return groups_; }
  [[nodiscard]] std::uint32_t bucket_count() const {
    return static_cast<std::uint32_t>(buckets_.size());
  }
  /// The bucket cross-group operations land in (== group_count()).
  [[nodiscard]] std::uint32_t cross_bucket() const { return groups_; }
  [[nodiscard]] std::uint32_t group_of(HostId h) const {
    return h.value() < host_group_.size() ? host_group_[h.value()] : 0;
  }
  /// Which bucket an operation between these hosts belongs to: the shared
  /// group's bucket, or the cross bucket when the groups differ.
  [[nodiscard]] std::uint32_t op_bucket(HostId a, HostId b) const {
    const std::uint32_t ga = group_of(a);
    return ga == group_of(b) ? ga : cross_bucket();
  }
  /// Bucket that allocated flow `id` (top 16 bits of the id).
  [[nodiscard]] static std::uint32_t flow_bucket(FlowId id) {
    return static_cast<std::uint32_t>(id.value() >> kBucketShift);
  }

  /// Deferred-charge mode for the engine's parallel phase: charge() adds
  /// to a per-bucket accumulator instead of advancing the clock (which
  /// is not thread-safe and would make time depend on interleaving). The
  /// engine drains the accumulators deterministically at the barrier.
  void set_defer_charges(bool on) { defer_charges_ = on; }
  [[nodiscard]] bool defer_charges() const { return defer_charges_; }
  /// Simulated ns accumulated against one bucket since the last drain.
  [[nodiscard]] std::int64_t charged_ns(std::uint32_t bucket) const {
    return buckets_.at(bucket).charged_ns;
  }
  /// Sum and clear all per-bucket accumulators (bucket order). The caller
  /// (the engine, at its barrier) advances the clock by the result.
  std::int64_t drain_charges();

  // ---- socket API -------------------------------------------------------

  Result<void> listen(HostId host, const simos::Credentials& cred, Pid pid,
                      Proto proto, std::uint16_t port);
  Result<void> close_listener(HostId host, Proto proto, std::uint16_t port);
  [[nodiscard]] const Listener* find_listener(HostId host, Proto proto,
                                              std::uint16_t port) const;

  /// Establish a new connection. Runs the firewall hook (for inspected
  /// ports), charges simulated latency, and returns the flow id.
  Result<FlowId> connect(HostId src_host, const simos::Credentials& cred,
                         Pid pid, HostId dst_host, Proto proto,
                         std::uint16_t dst_port);

  /// Send on an established flow: conntrack fast path, no hook.
  Result<void> send(FlowId flow, FlowEnd from, std::string payload);
  /// Pop the oldest undelivered message at `at` end.
  Result<std::string> recv(FlowId flow, FlowEnd at);
  Result<void> close(FlowId flow);
  /// Snapshot of one flow's state, or nullopt if it is gone. By value:
  /// the SoA storage has no stable per-flow object to point at.
  [[nodiscard]] std::optional<Flow> find_flow(FlowId id) const;

  /// Kernel-side teardown when a user's processes on `host` are reaped
  /// (job epilog): their listeners close and their flows reset. Returns
  /// listeners + flows torn down. Indexed: touches only the (host, uid)
  /// endpoints, never the global tables.
  std::size_t close_sockets_of(HostId host, Uid uid);

  /// Power-loss teardown: every socket touching `host` vanishes
  /// (listeners, flows, abstract sockets). Returns objects torn down.
  std::size_t reset_host(HostId host);

  // ---- conntrack garbage collection -------------------------------------

  /// Enable idle-expiry of established flows: a flow with no send()
  /// activity for `ttl_ns` is eligible for gc(). 0 disables (default).
  void set_flow_ttl(std::int64_t ttl_ns) { flow_ttl_ns_ = ttl_ns; }
  [[nodiscard]] std::int64_t flow_ttl() const { return flow_ttl_ns_; }

  /// Collect idle flows due at the current simulated time. Expiry-ordered:
  /// the sweep pops a min-heap of deadlines and touches only due entries
  /// (plus refreshed entries it reschedules), never the whole table.
  /// Returns the number of flows expired. Sweeps every bucket in order.
  std::size_t gc();

  /// GC one bucket only — the engine's parallel phase calls this per
  /// group (a group's worker may only sweep its own bucket; the cross
  /// bucket is swept in the serial phase).
  std::size_t gc_bucket(std::uint32_t bucket);

  /// Earliest pending expiry deadline, if any (for event-driven callers).
  [[nodiscard]] std::optional<std::int64_t> next_expiry_ns() const;

  [[nodiscard]] std::size_t flow_count() const {
    std::size_t n = 0;
    for (const Bucket& b : buckets_) n += b.table.size();
    return n;
  }

  // ---- ident service ----------------------------------------------------

  /// RFC1413-ish: who owns `port` on `host` (listener or flow endpoint).
  Result<IdentInfo> ident_lookup(HostId host, Proto proto,
                                 std::uint16_t port);

  // ---- abstract unix domain sockets (residual channel) ------------------

  Result<void> unix_listen_abstract(HostId host,
                                    const simos::Credentials& cred,
                                    std::string_view name);
  /// No permission check, by (in)design of the kernel facility: any local
  /// user can connect to any abstract socket. Returns the listener's uid so
  /// audits can demonstrate the cross-user rendezvous.
  Result<Uid> unix_connect_abstract(HostId host,
                                    const simos::Credentials& cred,
                                    std::string_view name);
  Result<void> unix_close_abstract(HostId host, std::string_view name);

  // ---- diagnostics ------------------------------------------------------

  /// Aggregated over all buckets. Deterministic: each field is a sum of
  /// per-bucket values that are themselves functions of per-group
  /// operation streams, not of thread interleaving.
  [[nodiscard]] NetworkStats stats() const;
  /// One bucket's share (engine work accounting / sharding tests).
  [[nodiscard]] const NetworkStats& bucket_stats(std::uint32_t bucket) const {
    return buckets_.at(bucket).stats;
  }
  void reset_stats() {
    for (Bucket& b : buckets_) b.stats = {};
  }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }
  void set_latency(const LatencyModel& m) { latency_ = m; }

  /// Simulated nanoseconds consumed by the most recent connect() call
  /// (includes hook + ident costs). For experiment measurement; reported
  /// per bucket, so only meaningful under single-bucket (unsharded)
  /// operation or from serial phases that know the op's bucket.
  [[nodiscard]] std::int64_t last_connect_cost_ns() const {
    return buckets_.front().last_connect_cost_ns;
  }
  [[nodiscard]] std::int64_t last_send_cost_ns() const {
    return buckets_.front().last_send_cost_ns;
  }

  /// Flows currently established between two *different* users — the
  /// auditor's definition of a cross-user network channel.
  [[nodiscard]] std::vector<FlowId> cross_user_flows() const;

  /// The table driver behind every Flow::state change: per-transition
  /// fire counts and illegal-event tally, for tests and diagnostics.
  [[nodiscard]] const lifecycle::Driver& flow_lifecycle() const {
    return flow_lc_;
  }

  /// Per-entry footprint of the SoA flow storage (E26d): the bytes a GC
  /// deadline scan or cross-user sweep drags through cache per flow is
  /// the hot row alone, not the full snapshot record.
  [[nodiscard]] static std::size_t flow_hot_bytes() {
    return sizeof(FlowHot);
  }
  [[nodiscard]] static std::size_t flow_cold_bytes() {
    return sizeof(FlowCold);
  }

 private:
  /// Linux's default ip_local_port_range.
  static constexpr std::uint32_t kEphemeralLo = 32768;
  static constexpr std::uint32_t kEphemeralHi = 60999;  // inclusive

  /// Flow ids are (bucket << 48) | bucket-local counter.
  static constexpr unsigned kBucketShift = 48;

  /// (proto, port) packed for O(1) unordered lookups.
  [[nodiscard]] static constexpr std::uint32_t pkey(Proto proto,
                                                   std::uint16_t port) {
    return (static_cast<std::uint32_t>(proto) << 16) | port;
  }

  /// One end of a flow, as seen from a host's port table.
  struct PortEndpoint {
    FlowId flow{};
    FlowEnd end = FlowEnd::client;
  };

  /// The per-flow fields every sweep touches (GC deadline scans, audit
  /// scans, ident): 48 bytes, dense, SoA-split from the message queues.
  struct FlowHot {
    FlowId id{};
    Proto proto = Proto::tcp;
    HostId client_host{};
    std::uint16_t client_port = 0;
    HostId server_host{};
    std::uint16_t server_port = 0;
    Uid client_uid{};
    Uid server_uid{};
    FlowState state = FlowState::nascent;
    std::int64_t expires_at_ns = 0;
  };

  /// The per-flow fields only send/recv touch: in-flight message rings
  /// (storage in the owning bucket's arena) and the byte counter.
  struct FlowCold {
    common::RingBuffer<std::string> to_server;
    common::RingBuffer<std::string> to_client;
    std::uint64_t bytes = 0;
  };

  /// Hot/cold SoA flow storage for one bucket: a slot-map keeps the hot
  /// rows dense under erase (swap-with-last), the cold array mirrors
  /// every swap, and a flat map routes FlowId -> dense row.
  class FlowTable {
   public:
    static constexpr std::size_t npos = common::SlotMap<FlowHot>::npos;

    [[nodiscard]] std::size_t size() const { return hot_.size(); }
    [[nodiscard]] std::size_t find(FlowId id) const {
      const common::SlotHandle* h = index_.find(id);
      return h == nullptr ? npos : hot_.dense_index(*h);
    }
    FlowHot& hot(std::size_t i) { return hot_.dense(i); }
    [[nodiscard]] const FlowHot& hot(std::size_t i) const {
      return hot_.dense(i);
    }
    FlowCold& cold(std::size_t i) { return cold_[i]; }
    [[nodiscard]] const FlowCold& cold(std::size_t i) const {
      return cold_[i];
    }

    /// Returns the dense row of the inserted flow.
    std::size_t insert(FlowHot f) {
      const FlowId id = f.id;
      const common::SlotHandle h = hot_.insert(std::move(f));
      cold_.emplace_back();
      index_.emplace(id, h);
      return hot_.size() - 1;
    }

    /// Drains the cold rings back into `arena`, then erases the row,
    /// mirroring the hot array's swap-with-last in the cold array.
    bool erase(FlowId id, common::Arena& arena) {
      const common::SlotHandle* hp = index_.find(id);
      if (hp == nullptr) return false;
      const common::SlotHandle h = *hp;
      const std::size_t dead = hot_.dense_index(h);
      cold_[dead].to_server.clear(arena);
      cold_[dead].to_client.clear(arena);
      hot_.erase(h, [&](std::uint32_t from, std::uint32_t to) {
        cold_[to] = std::move(cold_[from]);
      });
      cold_.pop_back();
      index_.erase(id);
      return true;
    }

   private:
    common::FlatMap<FlowId, common::SlotHandle> index_;
    common::SlotMap<FlowHot> hot_;
    std::vector<FlowCold> cold_;  // parallel to the hot dense array
  };

  struct HostState {
    std::string name;
    /// O(1) listener index keyed by pkey(proto, port).
    common::FlatMap<std::uint32_t, Listener> listeners;
    /// Sorted (teardown sweeps iterate it) with transparent comparison so
    /// string_view lookups never materialise a temporary std::string.
    std::map<std::string, simos::Credentials, std::less<>> abstract_sockets;

    // Ephemeral-port allocator: a lazy cursor over [kEphemeralLo,
    // kEphemeralHi] plus a FIFO of freed ports, guarded by per-port
    // endpoint refcounts (listeners + flow endpoints, any proto). O(1)
    // amortized; an empty pool is a typed EADDRNOTAVAIL, never a
    // 65536-attempt spin.
    std::uint32_t ephemeral_cursor = kEphemeralLo;
    /// Storage lives in the host's group bucket arena (a worker only
    /// touches its own group's hosts, so that arena is thread-confined).
    common::RingBuffer<std::uint16_t> freed_ports;
    common::FlatMap<std::uint16_t, std::uint32_t> port_refs;

    /// (proto, port) -> flow endpoints on this host, insertion-ordered;
    /// backs O(1) ident_lookup for ephemeral and orphaned server ports.
    common::FlatMap<std::uint32_t, std::vector<PortEndpoint>> flow_ports;
    /// Flows touching this host, per owning uid and in total: teardown
    /// sweeps visit exactly these, never the global flow table. Unordered;
    /// teardown snapshots and sorts before erasing (the erase order feeds
    /// the freed-port FIFO, which the pinned digests observe).
    common::FlatMap<Uid, common::FlatSet<FlowId>> flows_by_uid;
    common::FlatSet<FlowId> flows;
  };

  struct ConntrackKey {
    HostId a;
    std::uint16_t ap;
    HostId b;
    std::uint16_t bp;
    int proto;
    friend bool operator==(const ConntrackKey&,
                           const ConntrackKey&) = default;
  };
  struct ConntrackKeyHash {
    std::uint64_t operator()(const ConntrackKey& k) const {
      std::uint64_t h = common::hash_mix(
          (static_cast<std::uint64_t>(k.a.value()) << 16) | k.ap);
      h = common::hash_mix(
          h ^ ((static_cast<std::uint64_t>(k.b.value()) << 16) | k.bp));
      return common::hash_mix(h ^ static_cast<std::uint64_t>(k.proto));
    }
  };

  /// Lazy min-heap entry for flow expiry; stale entries (flow gone or
  /// deadline refreshed past `deadline_ns`) are discarded on pop.
  struct ExpiryEntry {
    std::int64_t deadline_ns = 0;
    FlowId flow{};
    friend bool operator>(const ExpiryEntry& x, const ExpiryEntry& y) {
      if (x.deadline_ns != y.deadline_ns) {
        return x.deadline_ns > y.deadline_ns;
      }
      return x.flow > y.flow;
    }
  };

  /// All flow-table state one bucket owns. Intra-group operations touch
  /// exactly one bucket; no two engine workers ever share one. The arena
  /// feeds every ring the bucket's flows (and its hosts' freed-port
  /// pools) use, so it is touched only by the bucket's owner.
  struct Bucket {
    /// Declared first so it is destroyed last: the flow table's message
    /// rings (and the hosts' freed-port rings) run their element
    /// destructors over storage this arena owns.
    common::Arena arena;  ///< shard-confined ring/scratch storage
    FlowTable table;
    common::FlatMap<ConntrackKey, FlowId, ConntrackKeyHash> conntrack;
    /// Mutable: next_expiry_ns() lazily discards stale tops while peeking.
    mutable std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>,
                                std::greater<>>
        expiry_heap;
    std::uint64_t next_local = 1;  ///< low 48 bits of the next flow id
    NetworkStats stats;
    std::int64_t charged_ns = 0;  ///< deferred-charge accumulator
    std::int64_t last_connect_cost_ns = 0;
    std::int64_t last_send_cost_ns = 0;
  };

  HostState& host(HostId id) { return hosts_.at(id.value()); }
  [[nodiscard]] const HostState& host(HostId id) const {
    return hosts_.at(id.value());
  }
  Bucket& bucket(std::uint32_t b) { return buckets_.at(b); }
  [[nodiscard]] const Bucket& bucket(std::uint32_t b) const {
    return buckets_.at(b);
  }
  Bucket& bucket_of(FlowId id) { return buckets_.at(flow_bucket(id)); }
  [[nodiscard]] const Bucket& bucket_of(FlowId id) const {
    return buckets_.at(flow_bucket(id));
  }
  /// Debug-build check that `b` is legal under the thread's ShardScope.
  static void assert_scope(std::uint32_t b);
  /// As above, but for operations that may touch several buckets (host
  /// teardown, stats merges): legal only with no scope installed.
  static void assert_serial_phase();
  /// Find a flow's hot row by id across its owning bucket. Null if gone.
  FlowHot* lookup_hot(FlowId id);
  [[nodiscard]] const FlowHot* lookup_hot(FlowId id) const;

  /// 0 on exhaustion (caller reports EADDRNOTAVAIL).
  std::uint16_t alloc_ephemeral_port(HostState& h);
  void ref_port(HostId h, std::uint16_t port);
  void unref_port(HostId h, std::uint16_t port);
  /// Register/unregister a flow in every per-host index.
  void index_flow(const FlowHot& f);
  void unindex_flow(const FlowHot& f);
  /// Tear one flow down: conntrack entry, indices, port refs, SoA row.
  /// The single erase pass all teardown sweeps (close/GC/reset) funnel
  /// through. Invalidates `f`.
  void destroy_flow(FlowHot& f);
  void touch_flow(FlowHot& f);
  /// Charge simulated latency against `b`: advances the clock directly,
  /// or accumulates into the bucket under deferred-charge mode.
  void charge(Bucket& b, std::int64_t ns);
  /// Route one lifecycle event through the flow table. `outcome` answers
  /// whichever guard the resolved row consults (at most one per row).
  /// Returns the fired transition; nullptr means the event is illegal in
  /// the flow's current state (counted, state untouched).
  const lifecycle::Transition* fire_flow(FlowHot& f, FlowEvent event,
                                         bool outcome);

  const common::SimClock* clock_;
  common::SimClock* mutable_clock_;
  lifecycle::Driver flow_lc_{&flow_machine()};
  std::vector<HostState> hosts_;
  /// groups_ per-group buckets plus the cross bucket; exactly one bucket
  /// total while unsharded (the bit-identical legacy layout).
  std::vector<Bucket> buckets_;
  std::uint32_t groups_ = 1;
  std::vector<std::uint32_t> host_group_;  ///< empty: everyone group 0
  bool defer_charges_ = false;
  std::int64_t flow_ttl_ns_ = 0;
  FirewallHook hook_;
  obs::DecisionTrace* trace_ = nullptr;
  FaultModel* faults_ = nullptr;
  std::uint16_t inspect_from_port_ = 1024;
  LatencyModel latency_;
};

}  // namespace heus::net
