#include "net/firewall_models.h"

namespace heus::net {

Verdict PpsFirewall::decide(const ConnRequest& req) const {
  for (const Rule& rule : rules_) {
    if (rule.proto == req.proto && req.dst_port >= rule.port_lo &&
        req.dst_port <= rule.port_hi) {
      ++allowed_;
      return Verdict::accept;
    }
  }
  ++denied_;
  return Verdict::drop;
}

void PpsFirewall::attach(std::uint16_t inspect_from_port) {
  network_->set_hook(
      [this](const ConnRequest& req) { return decide(req); },
      inspect_from_port);
}

std::optional<int> ZoneFirewall::zone_of(Uid uid) const {
  auto it = zones_.find(uid);
  if (it == zones_.end()) return std::nullopt;
  return it->second;
}

Verdict ZoneFirewall::decide(const ConnRequest& req) {
  // Like the UBF, the zone model needs endpoint attribution (its real
  // deployments label traffic at the IP layer; ident is our stand-in).
  auto listener =
      network_->ident_lookup(req.dst_host, req.proto, req.dst_port);
  auto initiator =
      network_->ident_lookup(req.src_host, req.proto, req.src_port);
  if (!listener || !initiator) {
    ++denied_;
    return Verdict::drop;  // fail closed
  }
  const auto src_zone = zone_of(initiator->uid);
  const auto dst_zone = zone_of(listener->uid);
  if (src_zone && dst_zone && *src_zone == *dst_zone) {
    ++allowed_;
    return Verdict::accept;
  }
  ++denied_;
  return Verdict::drop;
}

void ZoneFirewall::attach(std::uint16_t inspect_from_port) {
  network_->set_hook(
      [this](const ConnRequest& req) { return decide(req); },
      inspect_from_port);
}

}  // namespace heus::net
