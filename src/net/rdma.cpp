#include "net/rdma.h"

namespace heus::net {

Result<QpId> RdmaManager::setup_via_tcp(HostId local,
                                        const simos::Credentials& cred,
                                        Pid pid, HostId remote,
                                        std::uint16_t rendezvous_port) {
  auto flow = network_->connect(local, cred, pid, remote, Proto::tcp,
                                rendezvous_port);
  if (!flow) {
    ++stats_.qp_setups_blocked;
    return flow.error();
  }
  const Flow* f = network_->find_flow(*flow);
  const QpId id{next_qp_++};
  QueuePair qp;
  qp.id = id;
  qp.local_host = local;
  qp.remote_host = remote;
  qp.local_uid = cred.uid;
  qp.remote_uid = f->server_uid;
  qp.setup = QpSetupPath::tcp_control_channel;
  qp.control_flow = *flow;
  qps_.emplace(id, std::move(qp));
  ++stats_.qp_setups_tcp;
  return id;
}

Result<QpId> RdmaManager::setup_via_cm(HostId local,
                                       const simos::Credentials& cred,
                                       HostId remote, Uid remote_uid) {
  // Nothing to consult: the CM exchange rides native IB management
  // datagrams that the UBF never sees.
  const QpId id{next_qp_++};
  QueuePair qp;
  qp.id = id;
  qp.local_host = local;
  qp.remote_host = remote;
  qp.local_uid = cred.uid;
  qp.remote_uid = remote_uid;
  qp.setup = QpSetupPath::native_cm;
  qps_.emplace(id, std::move(qp));
  ++stats_.qp_setups_cm;
  return id;
}

Result<void> RdmaManager::write(QpId id, std::string payload) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  QueuePair& qp = it->second;
  qp.bytes += payload.size();
  stats_.bytes_written += payload.size();
  ++stats_.writes;
  qp.inbox.push_back(std::move(payload));
  return ok_result();
}

Result<std::string> RdmaManager::poll(QpId id) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  if (it->second.inbox.empty()) return Errno::eagain;
  std::string out = std::move(it->second.inbox.front());
  it->second.inbox.pop_front();
  return out;
}

Result<void> RdmaManager::destroy(QpId id) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  if (it->second.control_flow) {
    (void)network_->close(*it->second.control_flow);
  }
  qps_.erase(it);
  return ok_result();
}

const QueuePair* RdmaManager::find(QpId id) const {
  auto it = qps_.find(id);
  return it == qps_.end() ? nullptr : &it->second;
}

std::vector<QpId> RdmaManager::cross_user_qps() const {
  std::vector<QpId> out;
  for (const auto& [id, qp] : qps_) {
    if (qp.local_uid != qp.remote_uid) out.push_back(id);
  }
  return out;
}

}  // namespace heus::net
