#include "net/rdma.h"

namespace heus::net {

Result<QpId> RdmaManager::setup_via_tcp(HostId local,
                                        const simos::Credentials& cred,
                                        Pid pid, HostId remote,
                                        std::uint16_t rendezvous_port) {
  auto flow = network_->connect(local, cred, pid, remote, Proto::tcp,
                                rendezvous_port);
  if (!flow) {
    ++stats_.qp_setups_blocked;
    // ECONNREFUSED with the UBF inspecting this port is a firewall drop;
    // without it the refusal is just a missing listener, not enforcement.
    if (trace_ != nullptr && flow.error() == Errno::econnrefused &&
        network_->inspects(rendezvous_port)) {
      trace_->record(obs::DecisionPoint::rdma_setup, obs::Outcome::deny,
                     cred.uid, cred.egid, Uid{},
                     obs::ChannelKind::rdma_tcp_setup, obs::knob::ubf, [&] {
                       return "rendezvous host " +
                              std::to_string(remote.value()) + " port " +
                              std::to_string(rendezvous_port);
                     });
    }
    return flow.error();
  }
  const std::optional<Flow> f = network_->find_flow(*flow);
  if (trace_ != nullptr && f.has_value() && f->server_uid != cred.uid) {
    trace_->record(obs::DecisionPoint::rdma_setup, obs::Outcome::allow,
                   cred.uid, cred.egid, f->server_uid,
                   obs::ChannelKind::rdma_tcp_setup, nullptr, [&] {
                     return "rendezvous host " +
                            std::to_string(remote.value()) + " port " +
                            std::to_string(rendezvous_port);
                   });
  }
  const QpId id{next_qp_++};
  QueuePair qp;
  qp.id = id;
  qp.local_host = local;
  qp.remote_host = remote;
  qp.local_uid = cred.uid;
  qp.remote_uid = f->server_uid;
  qp.setup = QpSetupPath::tcp_control_channel;
  qp.control_flow = *flow;
  qps_.emplace(id, std::move(qp));
  ++stats_.qp_setups_tcp;
  return id;
}

Result<QpId> RdmaManager::setup_via_cm(HostId local,
                                       const simos::Credentials& cred,
                                       HostId remote, Uid remote_uid) {
  // Nothing to consult: the CM exchange rides native IB management
  // datagrams that the UBF never sees. Cross-user bring-up is the
  // documented rdma-native-cm residual; the trace records the exposure.
  if (trace_ != nullptr && remote_uid != cred.uid) {
    trace_->record(obs::DecisionPoint::rdma_setup, obs::Outcome::allow,
                   cred.uid, cred.egid, remote_uid,
                   obs::ChannelKind::rdma_native_cm, nullptr, [&] {
                     return "cm host " + std::to_string(remote.value());
                   });
  }
  const QpId id{next_qp_++};
  QueuePair qp;
  qp.id = id;
  qp.local_host = local;
  qp.remote_host = remote;
  qp.local_uid = cred.uid;
  qp.remote_uid = remote_uid;
  qp.setup = QpSetupPath::native_cm;
  qps_.emplace(id, std::move(qp));
  ++stats_.qp_setups_cm;
  return id;
}

Result<void> RdmaManager::write(QpId id, std::string payload) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  QueuePair& qp = it->second;
  qp.bytes += payload.size();
  stats_.bytes_written += payload.size();
  ++stats_.writes;
  qp.inbox.push_back(std::move(payload));
  return ok_result();
}

Result<std::string> RdmaManager::poll(QpId id) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  if (it->second.inbox.empty()) return Errno::eagain;
  std::string out = std::move(it->second.inbox.front());
  it->second.inbox.pop_front();
  return out;
}

Result<void> RdmaManager::destroy(QpId id) {
  auto it = qps_.find(id);
  if (it == qps_.end()) return Errno::ebadf;
  if (it->second.control_flow) {
    (void)network_->close(*it->second.control_flow);
  }
  qps_.erase(it);
  return ok_result();
}

const QueuePair* RdmaManager::find(QpId id) const {
  auto it = qps_.find(id);
  return it == qps_.end() ? nullptr : &it->second;
}

std::vector<QpId> RdmaManager::cross_user_qps() const {
  std::vector<QpId> out;
  for (const auto& [id, qp] : qps_) {
    if (qp.local_uid != qp.remote_uid) out.push_back(id);
  }
  return out;
}

}  // namespace heus::net
