// Declarative lifecycle table for network flows (conntrack entries).
//
// Expands the old two-state FlowState (established/closed) into the
// real admission/teardown/GC phases the conntrack code was already
// implementing implicitly: a flow is *nascent* between SYN and the
// firewall verdict (the window where the UBF's ident exchange runs
// against it), *established* on the conntrack fast path, and ends in
// exactly one of four terminal ways — denied by the hook, closed by an
// application or teardown sweep, reset because the listener identity
// changed, or expired by idle GC. The table, not timestamps scattered
// through Network, is the source of truth for which teardown is legal
// when (tests/net/flow_gc_revival_test.cpp pins the GC corner).
//
// Policy guard: `ubf-inspects` (knob `ubf`). The admit-uninspected
// transition — a flow establishing *without* a firewall verdict — is
// only legal when that guard is false, and is annotated as opening the
// tcp/udp cross-user channels; the reachability checker proves it is
// unreachable under every policy where the analyzer holds those
// channels closed. At runtime the guard's ground truth is
// Network::inspects(port): hook installed and port at or above the
// inspection floor (the checker's default TopologyFacts models the
// inspected victim service; below-floor ports are the analyzer's
// service_port/ubf_inspect_from dimension, not a lifecycle one).
#pragma once

#include "lifecycle/machine.h"

namespace heus::net {

/// Flow lifecycle states. Packed ids double as lifecycle::StateId.
enum class FlowState : lifecycle::StateId {
  nascent,      ///< SYN seen, firewall verdict pending
  established,  ///< on the conntrack fast path
  denied,       ///< hook verdict drop (terminal)
  closed,       ///< closed by app or teardown sweep (terminal)
  reset,        ///< listener identity changed under the entry (terminal)
  expired,      ///< idle-GC collected (terminal)
};

enum class FlowEvent : lifecycle::EventId {
  hook_accept,        ///< inspected admission, verdict accept
  hook_drop,          ///< inspected admission, verdict drop
  admit_uninspected,  ///< established with no firewall verdict
  activity,           ///< traffic on the fast path
  teardown,           ///< close()/close_sockets_of/reset_host
  identity_reset,     ///< stale conntrack entry detected on send
  gc_due,             ///< expiry deadline surfaced in the GC heap
};

enum class FlowGuard : lifecycle::GuardId {
  ubf_inspects,  ///< policy: the UBF renders a verdict for this flow
  flow_revived,  ///< env: activity refreshed the deadline since push
};

enum class FlowAction : lifecycle::ActionId {
  establish,         ///< insert conntrack entry, start TTL
  refuse,            ///< surface ECONNREFUSED to the client
  refresh_ttl,       ///< push the idle-expiry deadline out
  reschedule_expiry, ///< re-queue the heap entry at the real deadline
  destroy,           ///< erase conntrack entry + indices + port refs
};

/// The shared flow table. One static instance; Network drives it.
[[nodiscard]] const lifecycle::MachineDef& flow_machine();

[[nodiscard]] constexpr lifecycle::StateId id(FlowState s) {
  return static_cast<lifecycle::StateId>(s);
}
[[nodiscard]] constexpr lifecycle::EventId id(FlowEvent e) {
  return static_cast<lifecycle::EventId>(e);
}

}  // namespace heus::net
