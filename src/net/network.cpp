#include "net/network.h"

#include <cassert>

namespace heus::net {

HostId Network::add_host(const std::string& name) {
  const HostId id{static_cast<std::uint32_t>(hosts_.size())};
  hosts_.push_back(HostState{name, {}, {}, 32768});
  return id;
}

std::optional<HostId> Network::find_host(const std::string& name) const {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].name == name) {
      return HostId{static_cast<std::uint32_t>(i)};
    }
  }
  return std::nullopt;
}

const std::string& Network::host_name(HostId h) const {
  return host(h).name;
}

void Network::set_hook(FirewallHook hook, std::uint16_t inspect_from_port) {
  hook_ = std::move(hook);
  inspect_from_port_ = inspect_from_port;
}

void Network::clear_hook() { hook_ = nullptr; }

void Network::charge(std::int64_t ns) {
  if (mutable_clock_ != nullptr) mutable_clock_->advance(ns);
}

Result<void> Network::listen(HostId h, const simos::Credentials& cred,
                             Pid pid, Proto proto, std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  if (port == 0) return Errno::einval;
  // Privileged ports require root, as on Linux.
  if (port < 1024 && !cred.is_root()) return Errno::eacces;
  HostState& hs = host(h);
  const auto key = std::make_pair(static_cast<int>(proto), port);
  if (hs.listeners.contains(key)) return Errno::eaddrinuse;
  hs.listeners.emplace(key, Listener{cred, pid, port, proto});
  return ok_result();
}

Result<void> Network::close_listener(HostId h, Proto proto,
                                     std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  HostState& hs = host(h);
  if (hs.listeners.erase({static_cast<int>(proto), port}) == 0) {
    return Errno::enoent;
  }
  return ok_result();
}

const Listener* Network::find_listener(HostId h, Proto proto,
                                       std::uint16_t port) const {
  if (h.value() >= hosts_.size()) return nullptr;
  const HostState& hs = host(h);
  auto it = hs.listeners.find({static_cast<int>(proto), port});
  return it == hs.listeners.end() ? nullptr : &it->second;
}

std::uint16_t Network::alloc_ephemeral_port(HostState& h) {
  // Skip ports already used by listeners or flows; with 16-bit wraparound.
  for (int attempts = 0; attempts < 65536; ++attempts) {
    const std::uint16_t p = h.next_ephemeral;
    h.next_ephemeral =
        (h.next_ephemeral >= 60999) ? 32768 : h.next_ephemeral + 1;
    bool taken = false;
    for (const auto& [key, l] : h.listeners) {
      if (key.second == p) {
        taken = true;
        break;
      }
    }
    if (!taken) return p;
  }
  return 0;
}

Result<FlowId> Network::connect(HostId src_host,
                                const simos::Credentials& cred, Pid pid,
                                HostId dst_host, Proto proto,
                                std::uint16_t dst_port) {
  (void)pid;  // retained in the signature: a fuller ident would report it
  if (src_host.value() >= hosts_.size() ||
      dst_host.value() >= hosts_.size()) {
    return Errno::enetunreach;
  }
  ++stats_.connections_attempted;
  std::int64_t cost = latency_.base_syn_ns;

  // A partitioned fabric never completes the handshake: the SYN (or the
  // SYN-ACK) is lost and the client sees the route as unreachable.
  if (faults_ != nullptr && faults_->partitioned(src_host, dst_host)) {
    ++stats_.partition_refusals;
    last_connect_cost_ns_ = cost;
    charge(cost);
    return Errno::enetunreach;
  }

  const Listener* listener = find_listener(dst_host, proto, dst_port);
  if (listener == nullptr) {
    ++stats_.connections_refused;
    last_connect_cost_ns_ = cost;
    charge(cost);
    return Errno::econnrefused;
  }

  HostState& src = host(src_host);
  const std::uint16_t src_port = alloc_ephemeral_port(src);
  if (src_port == 0) return Errno::eaddrnotavail;

  // Register the nascent flow *before* the hook runs so the UBF's ident
  // query against the initiating host can see who owns the source port —
  // this mirrors the real daemon's ident exchange.
  const FlowId id{next_flow_++};
  Flow flow;
  flow.id = id;
  flow.proto = proto;
  flow.client_host = src_host;
  flow.client_port = src_port;
  flow.server_host = dst_host;
  flow.server_port = dst_port;
  flow.client_uid = cred.uid;
  flow.server_uid = listener->cred.uid;
  flows_.emplace(id, std::move(flow));

  if (hook_ && dst_port >= inspect_from_port_) {
    ++stats_.hook_invocations;
    cost += latency_.hook_dispatch_ns;
    ConnRequest req{src_host, src_port, dst_host, dst_port, proto};
    const Verdict v = hook_(req);
    // Ident costs are charged by ident_lookup itself via stats; the
    // latency is attributed here: one local + one remote query.
    cost += latency_.ident_local_ns;
    cost += (src_host == dst_host) ? latency_.ident_local_ns
                                   : latency_.ident_remote_ns;
    if (v == Verdict::drop) {
      flows_.erase(id);
      ++stats_.connections_dropped;
      last_connect_cost_ns_ = cost;
      charge(cost);
      return Errno::econnrefused;  // client observes refusal/timeout
    }
  }

  conntrack_.emplace(
      ConntrackKey{src_host, src_port, dst_host, dst_port,
                   static_cast<int>(proto)},
      id);
  ++stats_.connections_established;
  last_connect_cost_ns_ = cost;
  charge(cost);
  return id;
}

Result<void> Network::send(FlowId id, FlowEnd from, std::string payload) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Errno::ebadf;
  Flow& f = it->second;
  if (f.state != FlowState::established) return Errno::enotconn;

  // Established path: a conntrack lookup and delivery; the firewall hook
  // is *not* consulted (the zero-overhead property the paper relies on).
  auto ct = conntrack_.find(ConntrackKey{f.client_host, f.client_port,
                                         f.server_host, f.server_port,
                                         static_cast<int>(f.proto)});
  assert(ct != conntrack_.end());
  (void)ct;
  ++stats_.conntrack_hits;

  // Fail-safe on the fast path: the conntrack entry was admitted against
  // the listener identity at connect() time. If the server port is now
  // owned by a *different* uid (the original listener died — e.g. while
  // the hosts were partitioned — and someone else bound the port), the
  // entry is stale and must not keep bypassing the firewall hook. Reset
  // the flow; a legitimate peer reconnects and traverses the hook afresh.
  if (const Listener* l =
          find_listener(f.server_host, f.proto, f.server_port);
      l != nullptr && l->cred.uid != f.server_uid) {
    ++stats_.flows_reset_identity_changed;
    const std::int64_t reset_cost = latency_.conntrack_lookup_ns;
    last_send_cost_ns_ = reset_cost;
    charge(reset_cost);
    (void)close(id);
    return Errno::econnreset;
  }

  // Packet loss / partition on the established path: the segment vanishes
  // and the sender's retransmits eventually give up.
  if (faults_ != nullptr &&
      (faults_->partitioned(f.client_host, f.server_host) ||
       faults_->drop_packet(f.client_host, f.server_host))) {
    ++stats_.packets_dropped;
    const std::int64_t drop_cost =
        latency_.conntrack_lookup_ns + latency_.per_packet_ns;
    last_send_cost_ns_ = drop_cost;
    charge(drop_cost);
    return Errno::etimedout;
  }
  ++stats_.packets_delivered;
  f.bytes += payload.size();
  const auto serialization_ns = static_cast<std::int64_t>(
      static_cast<double>(payload.size()) / latency_.fabric_bytes_per_ns);
  if (from == FlowEnd::client) {
    f.to_server.push_back(std::move(payload));
  } else {
    f.to_client.push_back(std::move(payload));
  }
  last_send_cost_ns_ = latency_.conntrack_lookup_ns +
                       latency_.per_packet_ns + serialization_ns;
  charge(last_send_cost_ns_);
  return ok_result();
}

Result<std::string> Network::recv(FlowId id, FlowEnd at) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Errno::ebadf;
  Flow& f = it->second;
  auto& queue = (at == FlowEnd::server) ? f.to_server : f.to_client;
  if (queue.empty()) return Errno::eagain;
  std::string out = std::move(queue.front());
  queue.pop_front();
  return out;
}

Result<void> Network::close(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Errno::ebadf;
  const Flow& f = it->second;
  conntrack_.erase(ConntrackKey{f.client_host, f.client_port, f.server_host,
                                f.server_port, static_cast<int>(f.proto)});
  flows_.erase(it);
  return ok_result();
}

const Flow* Network::find_flow(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

std::size_t Network::close_sockets_of(HostId h, Uid uid) {
  if (h.value() >= hosts_.size()) return 0;
  std::size_t closed = 0;
  HostState& hs = host(h);
  for (auto it = hs.listeners.begin(); it != hs.listeners.end();) {
    if (it->second.cred.uid == uid) {
      it = hs.listeners.erase(it);
      ++closed;
    } else {
      ++it;
    }
  }
  for (auto it = hs.abstract_sockets.begin();
       it != hs.abstract_sockets.end();) {
    if (it->second.uid == uid) {
      it = hs.abstract_sockets.erase(it);
      ++closed;
    } else {
      ++it;
    }
  }
  std::vector<FlowId> dead;
  for (const auto& [id, f] : flows_) {
    if ((f.client_host == h && f.client_uid == uid) ||
        (f.server_host == h && f.server_uid == uid)) {
      dead.push_back(id);
    }
  }
  for (FlowId id : dead) {
    (void)close(id);
    ++closed;
  }
  return closed;
}

std::size_t Network::reset_host(HostId h) {
  if (h.value() >= hosts_.size()) return 0;
  HostState& hs = host(h);
  std::size_t closed = hs.listeners.size() + hs.abstract_sockets.size();
  hs.listeners.clear();
  hs.abstract_sockets.clear();
  std::vector<FlowId> dead;
  for (const auto& [id, f] : flows_) {
    if (f.client_host == h || f.server_host == h) dead.push_back(id);
  }
  for (FlowId id : dead) {
    (void)close(id);
    ++closed;
  }
  return closed;
}

Result<IdentInfo> Network::ident_lookup(HostId h, Proto proto,
                                        std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::enetunreach;
  ++stats_.ident_queries;
  if (faults_ != nullptr) {
    // A degraded responder answers late; a dead one eats the caller's
    // whole timeout budget before the query fails.
    charge(faults_->ident_extra_ns(h));
    if (faults_->ident_down(h)) {
      ++stats_.ident_timeouts;
      charge(latency_.ident_timeout_ns);
      return Errno::etimedout;
    }
  }
  // A listener owns the port...
  if (const Listener* l = find_listener(h, proto, port)) {
    return IdentInfo{l->cred.uid, l->cred.egid, l->pid};
  }
  // ...or a flow endpoint does (client ephemeral ports live here).
  for (const auto& [id, f] : flows_) {
    if (f.proto != proto) continue;
    if (f.client_host == h && f.client_port == port) {
      // The client side has no captured egid snapshot distinct from uid's
      // session; the UBF only needs the uid on the initiating side.
      return IdentInfo{f.client_uid, Gid{}, Pid{}};
    }
    if (f.server_host == h && f.server_port == port) {
      return IdentInfo{f.server_uid, Gid{}, Pid{}};
    }
  }
  return Errno::enoent;
}

Result<void> Network::unix_listen_abstract(HostId h,
                                           const simos::Credentials& cred,
                                           const std::string& name) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  HostState& hs = host(h);
  if (hs.abstract_sockets.contains(name)) return Errno::eaddrinuse;
  hs.abstract_sockets.emplace(name, cred);
  return ok_result();
}

Result<Uid> Network::unix_connect_abstract(HostId h,
                                           const simos::Credentials& cred,
                                           const std::string& name) {
  (void)cred;  // deliberately unchecked: this is the residual channel
  if (h.value() >= hosts_.size()) return Errno::einval;
  HostState& hs = host(h);
  auto it = hs.abstract_sockets.find(name);
  if (it == hs.abstract_sockets.end()) return Errno::econnrefused;
  return it->second.uid;
}

Result<void> Network::unix_close_abstract(HostId h,
                                          const std::string& name) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  if (host(h).abstract_sockets.erase(name) == 0) return Errno::enoent;
  return ok_result();
}

std::vector<FlowId> Network::cross_user_flows() const {
  std::vector<FlowId> out;
  for (const auto& [id, f] : flows_) {
    if (f.state == FlowState::established && f.client_uid != f.server_uid) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace heus::net
