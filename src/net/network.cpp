#include "net/network.h"

#include <algorithm>
#include <cassert>

namespace heus::net {

namespace {
/// Active ShardScope bucket on this thread; -1 = unscoped (serial phase).
thread_local int tl_shard_scope = -1;
}  // namespace

ShardScope::ShardScope(std::uint32_t bucket) : prev_(tl_shard_scope) {
  tl_shard_scope = static_cast<int>(bucket);
}

ShardScope::~ShardScope() { tl_shard_scope = prev_; }

int ShardScope::current() { return tl_shard_scope; }

void Network::assert_scope(std::uint32_t b) {
  assert(tl_shard_scope < 0 || tl_shard_scope == static_cast<int>(b));
  (void)b;
}

void Network::assert_serial_phase() { assert(tl_shard_scope < 0); }

HostId Network::add_host(const std::string& name) {
  const HostId id{static_cast<std::uint32_t>(hosts_.size())};
  HostState hs;
  hs.name = name;
  hosts_.push_back(std::move(hs));
  return id;
}

std::optional<HostId> Network::find_host(const std::string& name) const {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].name == name) {
      return HostId{static_cast<std::uint32_t>(i)};
    }
  }
  return std::nullopt;
}

const std::string& Network::host_name(HostId h) const {
  return host(h).name;
}

void Network::set_hook(FirewallHook hook, std::uint16_t inspect_from_port) {
  hook_ = std::move(hook);
  inspect_from_port_ = inspect_from_port;
}

void Network::clear_hook() { hook_ = nullptr; }

void Network::enable_sharding(std::uint32_t groups,
                              std::vector<std::uint32_t> host_group) {
  // Resharding a live flow table would have to re-tag every id; requiring
  // an empty table keeps every id a pure function of the post-shard
  // workload.
  assert(flow_count() == 0 && "enable_sharding requires an empty flow table");
  assert(groups >= 1);
  for ([[maybe_unused]] const std::uint32_t g : host_group) {
    assert(g < groups);
  }
  groups_ = groups;
  host_group_ = std::move(host_group);
  // The freed-port rings park their storage in the old buckets' arenas;
  // they are empty here (no flow has ever closed), so just drop the
  // storage before the arenas go away.
  for (HostState& hs : hosts_) {
    assert(hs.freed_ports.empty());
    hs.freed_ports = {};
  }
  buckets_.clear();
  buckets_.resize(static_cast<std::size_t>(groups_) + 1);
}

std::int64_t Network::drain_charges() {
  assert_serial_phase();
  std::int64_t total = 0;
  for (Bucket& b : buckets_) {
    total += b.charged_ns;
    b.charged_ns = 0;
  }
  return total;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const Bucket& b : buckets_) {
    const NetworkStats& x = b.stats;
    s.connections_attempted += x.connections_attempted;
    s.connections_established += x.connections_established;
    s.connections_refused += x.connections_refused;
    s.connections_dropped += x.connections_dropped;
    s.hook_invocations += x.hook_invocations;
    s.conntrack_hits += x.conntrack_hits;
    s.packets_delivered += x.packets_delivered;
    s.ident_queries += x.ident_queries;
    s.ident_timeouts += x.ident_timeouts;
    s.partition_refusals += x.partition_refusals;
    s.packets_dropped += x.packets_dropped;
    s.flows_reset_identity_changed += x.flows_reset_identity_changed;
    s.flows_expired += x.flows_expired;
    s.gc_runs += x.gc_runs;
    s.gc_entries_touched += x.gc_entries_touched;
    s.ephemeral_exhausted += x.ephemeral_exhausted;
  }
  return s;
}

void Network::charge(Bucket& b, std::int64_t ns) {
  if (defer_charges_) {
    b.charged_ns += ns;
    return;
  }
  if (mutable_clock_ != nullptr) mutable_clock_->advance(ns);
}

Network::FlowHot* Network::lookup_hot(FlowId id) {
  const std::uint32_t b = flow_bucket(id);
  if (b >= buckets_.size()) return nullptr;
  const std::size_t i = buckets_[b].table.find(id);
  return i == FlowTable::npos ? nullptr : &buckets_[b].table.hot(i);
}

const Network::FlowHot* Network::lookup_hot(FlowId id) const {
  const std::uint32_t b = flow_bucket(id);
  if (b >= buckets_.size()) return nullptr;
  const std::size_t i = buckets_[b].table.find(id);
  return i == FlowTable::npos ? nullptr : &buckets_[b].table.hot(i);
}

void Network::ref_port(HostId h, std::uint16_t port) {
  ++host(h).port_refs[port];
}

void Network::unref_port(HostId h, std::uint16_t port) {
  HostState& hs = host(h);
  std::uint32_t* refs = hs.port_refs.find(port);
  assert(refs != nullptr && *refs > 0);
  if (--*refs == 0) {
    hs.port_refs.erase(port);
    // Return to the free pool only once the cursor has passed it; ports
    // still ahead of the cursor are found by the cursor itself (a second
    // pool entry would double-allocate).
    if (port >= kEphemeralLo && port <= kEphemeralHi &&
        port < hs.ephemeral_cursor) {
      hs.freed_ports.push_back(bucket(group_of(h)).arena, port);
    }
  }
}

Result<void> Network::listen(HostId h, const simos::Credentials& cred,
                             Pid pid, Proto proto, std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  if (port == 0) return Errno::einval;
  assert_scope(group_of(h));
  // Privileged ports require root, as on Linux.
  if (port < 1024 && !cred.is_root()) return Errno::eacces;
  HostState& hs = host(h);
  const auto key = pkey(proto, port);
  if (hs.listeners.contains(key)) return Errno::eaddrinuse;
  hs.listeners.emplace(key, Listener{cred, pid, port, proto});
  ref_port(h, port);
  return ok_result();
}

Result<void> Network::close_listener(HostId h, Proto proto,
                                     std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  assert_scope(group_of(h));
  HostState& hs = host(h);
  if (hs.listeners.erase(pkey(proto, port)) == 0) {
    return Errno::enoent;
  }
  unref_port(h, port);
  return ok_result();
}

const Listener* Network::find_listener(HostId h, Proto proto,
                                       std::uint16_t port) const {
  if (h.value() >= hosts_.size()) return nullptr;
  return host(h).listeners.find(pkey(proto, port));
}

std::uint16_t Network::alloc_ephemeral_port(HostState& h) {
  // Freed ports first (FIFO keeps reuse distance long, like the kernel's
  // cursor), with lazy validation against the refcounts: a pooled port a
  // listener has since bound is discarded, not handed out.
  while (!h.freed_ports.empty()) {
    const std::uint16_t p = h.freed_ports.pop_front();
    if (!h.port_refs.contains(p)) return p;
  }
  // Then the never-allocated remainder of the range.
  while (h.ephemeral_cursor <= kEphemeralHi) {
    const auto p = static_cast<std::uint16_t>(h.ephemeral_cursor++);
    if (!h.port_refs.contains(p)) return p;
  }
  return 0;  // pool exhausted — caller reports EADDRNOTAVAIL
}

void Network::index_flow(const FlowHot& f) {
  HostState& ch = host(f.client_host);
  ch.flow_ports[pkey(f.proto, f.client_port)].push_back(
      PortEndpoint{f.id, FlowEnd::client});
  ch.flows_by_uid[f.client_uid].insert(f.id);
  ch.flows.insert(f.id);
  ref_port(f.client_host, f.client_port);

  HostState& sh = host(f.server_host);
  sh.flow_ports[pkey(f.proto, f.server_port)].push_back(
      PortEndpoint{f.id, FlowEnd::server});
  sh.flows_by_uid[f.server_uid].insert(f.id);
  sh.flows.insert(f.id);
  ref_port(f.server_host, f.server_port);
}

void Network::unindex_flow(const FlowHot& f) {
  auto drop_endpoint = [this](HostId hid, Proto proto, std::uint16_t port,
                              FlowId id, FlowEnd end, Uid uid) {
    HostState& hs = host(hid);
    const auto key = pkey(proto, port);
    std::vector<PortEndpoint>* eps = hs.flow_ports.find(key);
    assert(eps != nullptr);
    std::erase_if(*eps, [&](const PortEndpoint& ep) {
      return ep.flow == id && ep.end == end;
    });
    if (eps->empty()) hs.flow_ports.erase(key);
    if (common::FlatSet<FlowId>* by_uid = hs.flows_by_uid.find(uid)) {
      by_uid->erase(id);
      if (by_uid->empty()) hs.flows_by_uid.erase(uid);
    }
    hs.flows.erase(id);
    unref_port(hid, port);
  };
  drop_endpoint(f.client_host, f.proto, f.client_port, f.id,
                FlowEnd::client, f.client_uid);
  drop_endpoint(f.server_host, f.proto, f.server_port, f.id,
                FlowEnd::server, f.server_uid);
}

void Network::destroy_flow(FlowHot& f) {
  Bucket& b = bucket_of(f.id);
  const FlowId id = f.id;
  b.conntrack.erase(ConntrackKey{f.client_host, f.client_port,
                                 f.server_host, f.server_port,
                                 static_cast<int>(f.proto)});
  unindex_flow(f);
  b.table.erase(id, b.arena);  // invalidates f
}

const lifecycle::Transition* Network::fire_flow(FlowHot& f, FlowEvent event,
                                                bool outcome) {
  lifecycle::StateId s = id(f.state);
  const lifecycle::Transition* t = flow_lc_.fire(
      s, id(event), [outcome](const lifecycle::Guard&) { return outcome; },
      f.client_uid, Gid{}, f.server_uid);
  f.state = static_cast<FlowState>(s);
  return t;
}

void Network::touch_flow(FlowHot& f) {
  if (flow_ttl_ns_ <= 0) return;
  const std::int64_t deadline = clock_->now().ns + flow_ttl_ns_;
  if (f.expires_at_ns == 0) {
    // First time under a TTL: this flow has no heap entry yet.
    bucket_of(f.id).expiry_heap.push(ExpiryEntry{deadline, f.id});
  }
  // Otherwise the existing entry is refreshed lazily: gc() re-pushes it
  // at the new deadline when the stale one surfaces.
  f.expires_at_ns = deadline;
}

Result<FlowId> Network::connect(HostId src_host,
                                const simos::Credentials& cred, Pid pid,
                                HostId dst_host, Proto proto,
                                std::uint16_t dst_port) {
  (void)pid;  // retained in the signature: a fuller ident would report it
  if (src_host.value() >= hosts_.size() ||
      dst_host.value() >= hosts_.size()) {
    return Errno::enetunreach;
  }
  // Intra-group connects belong to the shared group's bucket; cross-group
  // connects land in the cross bucket, which no ShardScope may touch.
  const std::uint32_t bi = op_bucket(src_host, dst_host);
  assert_scope(bi);
  Bucket& B = bucket(bi);
  ++B.stats.connections_attempted;
  std::int64_t cost = latency_.base_syn_ns;

  // A partitioned fabric never completes the handshake: the SYN (or the
  // SYN-ACK) is lost and the client sees the route as unreachable.
  if (faults_ != nullptr && faults_->partitioned(src_host, dst_host)) {
    ++B.stats.partition_refusals;
    B.last_connect_cost_ns = cost;
    charge(B, cost);
    return Errno::enetunreach;
  }

  const Listener* listener = find_listener(dst_host, proto, dst_port);
  if (listener == nullptr) {
    ++B.stats.connections_refused;
    B.last_connect_cost_ns = cost;
    charge(B, cost);
    return Errno::econnrefused;
  }

  HostState& src = host(src_host);
  const std::uint16_t src_port = alloc_ephemeral_port(src);
  if (src_port == 0) {
    ++B.stats.ephemeral_exhausted;
    return Errno::eaddrnotavail;
  }

  // Register the nascent flow *before* the hook runs so the UBF's ident
  // query against the initiating host can see who owns the source port —
  // this mirrors the real daemon's ident exchange.
  const FlowId id{(static_cast<std::uint64_t>(bi) << kBucketShift) |
                  B.next_local++};
  FlowHot flow;
  flow.id = id;
  flow.proto = proto;
  flow.client_host = src_host;
  flow.client_port = src_port;
  flow.server_host = dst_host;
  flow.server_port = dst_port;
  flow.client_uid = cred.uid;
  flow.server_uid = listener->cred.uid;
  const std::size_t row = B.table.insert(flow);
  index_flow(B.table.hot(row));

  if (hook_ && dst_port >= inspect_from_port_) {
    ++B.stats.hook_invocations;
    cost += latency_.hook_dispatch_ns;
    ConnRequest req{src_host, src_port, dst_host, dst_port, proto};
    const Verdict v = hook_(req);
    // Ident costs are charged by ident_lookup itself via stats; the
    // latency is attributed here: one local + one remote query.
    cost += latency_.ident_local_ns;
    cost += (src_host == dst_host) ? latency_.ident_local_ns
                                   : latency_.ident_remote_ns;
    if (v == Verdict::drop) {
      // The hook may itself have closed flows; re-find rather than trust
      // the row index.
      const std::size_t fi = B.table.find(id);
      if (fi != FlowTable::npos) {
        FlowHot& f = B.table.hot(fi);
        fire_flow(f, FlowEvent::hook_drop, /*outcome=*/true);
        unindex_flow(f);
        B.table.erase(id, B.arena);
      }
      ++B.stats.connections_dropped;
      B.last_connect_cost_ns = cost;
      charge(B, cost);
      return Errno::econnrefused;  // client observes refusal/timeout
    }
  } else if (trace_ != nullptr && cred.uid != listener->cred.uid) {
    // No firewall hook saw this cross-user flow — either no UBF is
    // attached or the port is below the inspection floor. That silent
    // non-enforcement is precisely what the trace must make visible.
    trace_->record(obs::DecisionPoint::net_uninspected, obs::Outcome::allow,
                   cred.uid, cred.egid, listener->cred.uid,
                   proto == Proto::udp ? obs::ChannelKind::udp_cross_user
                                       : obs::ChannelKind::tcp_cross_user,
                   nullptr, [&](std::string& out) {
                     out += "host ";
                     obs::append_uint(out, dst_host.value());
                     out += " port ";
                     obs::append_uint(out, dst_port);
                     out += proto == Proto::udp ? " udp" : " tcp";
                   });
  }

  B.conntrack.emplace(
      ConntrackKey{src_host, src_port, dst_host, dst_port,
                   static_cast<int>(proto)},
      id);
  const std::size_t fi = B.table.find(id);
  assert(fi != FlowTable::npos);
  // Admission through the table: an inspected flow establishes on the
  // hook's accept verdict (guard `ubf-inspects` true); an uninspected
  // one takes the annotated admit-uninspected row (guard false).
  const bool inspected = hook_ && dst_port >= inspect_from_port_;
  fire_flow(B.table.hot(fi),
            inspected ? FlowEvent::hook_accept : FlowEvent::admit_uninspected,
            inspected);
  touch_flow(B.table.hot(fi));
  ++B.stats.connections_established;
  B.last_connect_cost_ns = cost;
  charge(B, cost);
  return id;
}

Result<void> Network::send(FlowId id, FlowEnd from, std::string payload) {
  const std::uint32_t bi = flow_bucket(id);
  if (bi >= buckets_.size()) return Errno::ebadf;
  assert_scope(bi);
  Bucket& B = bucket(bi);
  const std::size_t fi = B.table.find(id);
  if (fi == FlowTable::npos) return Errno::ebadf;
  FlowHot& f = B.table.hot(fi);
  if (f.state != FlowState::established) return Errno::enotconn;

  // Established path: a conntrack lookup and delivery; the firewall hook
  // is *not* consulted (the zero-overhead property the paper relies on).
  [[maybe_unused]] const FlowId* ct =
      B.conntrack.find(ConntrackKey{f.client_host, f.client_port,
                                    f.server_host, f.server_port,
                                    static_cast<int>(f.proto)});
  assert(ct != nullptr);
  ++B.stats.conntrack_hits;

  // Fail-safe on the fast path: the conntrack entry was admitted against
  // the listener identity at connect() time. If the server port is now
  // owned by a *different* uid (the original listener died — e.g. while
  // the hosts were partitioned — and someone else bound the port), the
  // entry is stale and must not keep bypassing the firewall hook. Reset
  // the flow; a legitimate peer reconnects and traverses the hook afresh.
  if (const Listener* l =
          find_listener(f.server_host, f.proto, f.server_port);
      l != nullptr && l->cred.uid != f.server_uid) {
    ++B.stats.flows_reset_identity_changed;
    const std::int64_t reset_cost = latency_.conntrack_lookup_ns;
    B.last_send_cost_ns = reset_cost;
    charge(B, reset_cost);
    fire_flow(f, FlowEvent::identity_reset, /*outcome=*/false);
    destroy_flow(f);
    return Errno::econnreset;
  }

  // Packet loss / partition on the established path: the segment vanishes
  // and the sender's retransmits eventually give up.
  if (faults_ != nullptr &&
      (faults_->partitioned(f.client_host, f.server_host) ||
       faults_->drop_packet(f.client_host, f.server_host))) {
    ++B.stats.packets_dropped;
    const std::int64_t drop_cost =
        latency_.conntrack_lookup_ns + latency_.per_packet_ns;
    B.last_send_cost_ns = drop_cost;
    charge(B, drop_cost);
    return Errno::etimedout;
  }
  ++B.stats.packets_delivered;
  FlowCold& c = B.table.cold(fi);
  c.bytes += payload.size();
  const auto serialization_ns = static_cast<std::int64_t>(
      static_cast<double>(payload.size()) / latency_.fabric_bytes_per_ns);
  if (from == FlowEnd::client) {
    c.to_server.push_back(B.arena, std::move(payload));
  } else {
    c.to_client.push_back(B.arena, std::move(payload));
  }
  B.last_send_cost_ns = latency_.conntrack_lookup_ns +
                        latency_.per_packet_ns + serialization_ns;
  charge(B, B.last_send_cost_ns);
  fire_flow(f, FlowEvent::activity, /*outcome=*/false);
  touch_flow(f);  // activity refreshes the idle-expiry deadline
  return ok_result();
}

Result<std::string> Network::recv(FlowId id, FlowEnd at) {
  const std::uint32_t bi = flow_bucket(id);
  if (bi >= buckets_.size()) return Errno::ebadf;
  assert_scope(bi);
  Bucket& B = bucket(bi);
  const std::size_t fi = B.table.find(id);
  if (fi == FlowTable::npos) return Errno::ebadf;
  FlowCold& c = B.table.cold(fi);
  auto& queue = (at == FlowEnd::server) ? c.to_server : c.to_client;
  if (queue.empty()) return Errno::eagain;
  return queue.pop_front();
}

Result<void> Network::close(FlowId id) {
  FlowHot* fp = lookup_hot(id);
  if (fp == nullptr) return Errno::ebadf;
  assert_scope(flow_bucket(id));
  fire_flow(*fp, FlowEvent::teardown, /*outcome=*/false);
  destroy_flow(*fp);
  return ok_result();
}

std::optional<Flow> Network::find_flow(FlowId id) const {
  const std::uint32_t bi = flow_bucket(id);
  if (bi >= buckets_.size()) return std::nullopt;
  const Bucket& B = bucket(bi);
  const std::size_t fi = B.table.find(id);
  if (fi == FlowTable::npos) return std::nullopt;
  const FlowHot& h = B.table.hot(fi);
  const FlowCold& c = B.table.cold(fi);
  Flow f;
  f.id = h.id;
  f.proto = h.proto;
  f.client_host = h.client_host;
  f.client_port = h.client_port;
  f.server_host = h.server_host;
  f.server_port = h.server_port;
  f.client_uid = h.client_uid;
  f.server_uid = h.server_uid;
  f.state = h.state;
  f.to_server_len = c.to_server.size();
  f.to_client_len = c.to_client.size();
  f.bytes = c.bytes;
  f.expires_at_ns = h.expires_at_ns;
  return f;
}

std::size_t Network::gc() {
  if (flow_ttl_ns_ <= 0) return 0;
  std::size_t expired = 0;
  for (std::uint32_t b = 0; b < bucket_count(); ++b) {
    expired += gc_bucket(b);
  }
  return expired;
}

std::size_t Network::gc_bucket(std::uint32_t bi) {
  if (flow_ttl_ns_ <= 0) return 0;
  assert_scope(bi);
  Bucket& B = bucket(bi);
  ++B.stats.gc_runs;
  const std::int64_t now = clock_->now().ns;
  std::size_t expired = 0;
  while (!B.expiry_heap.empty() &&
         B.expiry_heap.top().deadline_ns <= now) {
    const ExpiryEntry e = B.expiry_heap.top();
    B.expiry_heap.pop();
    ++B.stats.gc_entries_touched;
    const std::size_t fi = B.table.find(e.flow);
    if (fi == FlowTable::npos) continue;  // already closed; stale entry
    FlowHot& f = B.table.hot(fi);
    // The table decides teardown eligibility: gc-due on a revived flow
    // resolves to the reschedule self-loop, otherwise to expiry. A flow
    // closed earlier never reaches this point (erased above), so no
    // entry is ever torn down twice.
    const bool revived = f.expires_at_ns > e.deadline_ns;
    const lifecycle::Transition* t = fire_flow(f, FlowEvent::gc_due, revived);
    if (t != nullptr &&
        static_cast<FlowState>(t->to) == FlowState::established) {
      // Activity refreshed the deadline since this entry was pushed:
      // reschedule at the real expiry (one live entry per flow).
      B.expiry_heap.push(ExpiryEntry{f.expires_at_ns, f.id});
      continue;
    }
    destroy_flow(f);
    ++B.stats.flows_expired;
    ++expired;
  }
  return expired;
}

std::optional<std::int64_t> Network::next_expiry_ns() const {
  std::optional<std::int64_t> earliest;
  for (const Bucket& B : buckets_) {
    while (!B.expiry_heap.empty()) {
      const ExpiryEntry e = B.expiry_heap.top();
      const std::size_t fi = B.table.find(e.flow);
      if (fi == FlowTable::npos) {
        B.expiry_heap.pop();
        continue;
      }
      const std::int64_t real = B.table.hot(fi).expires_at_ns;
      if (real > e.deadline_ns) {
        B.expiry_heap.pop();
        B.expiry_heap.push(ExpiryEntry{real, e.flow});
        continue;
      }
      if (!earliest || e.deadline_ns < *earliest) earliest = e.deadline_ns;
      break;
    }
  }
  return earliest;
}

std::size_t Network::close_sockets_of(HostId h, Uid uid) {
  if (h.value() >= hosts_.size()) return 0;
  // May tear down this user's cross-group flows too: serial-phase only.
  assert_serial_phase();
  std::size_t closed = 0;
  HostState& hs = host(h);
  NetworkStats& st = bucket(group_of(h)).stats;
  // Index loop over the dense entries; erase swap-removes, so stay put
  // after an erase and advance otherwise.
  for (std::size_t i = 0; i < hs.listeners.size();) {
    ++st.gc_entries_touched;
    const auto& entry = *(hs.listeners.begin() + static_cast<std::ptrdiff_t>(i));
    if (entry.value.cred.uid == uid) {
      const std::uint32_t key = entry.key;
      const std::uint16_t port = entry.value.port;
      hs.listeners.erase(key);
      unref_port(h, port);
      ++closed;
    } else {
      ++i;
    }
  }
  for (auto it = hs.abstract_sockets.begin();
       it != hs.abstract_sockets.end();) {
    ++st.gc_entries_touched;
    if (it->second.uid == uid) {
      it = hs.abstract_sockets.erase(it);
      ++closed;
    } else {
      ++it;
    }
  }
  // Indexed teardown: exactly this user's flows on this host, one erase
  // pass each — never a scan of the global flow table. Snapshot the id
  // set first (destroy_flow edits it underneath us) and sort it: the
  // erase order feeds the freed-port FIFO the pinned digests observe.
  if (const common::FlatSet<FlowId>* by_uid = hs.flows_by_uid.find(uid)) {
    std::vector<FlowId> dead(by_uid->begin(), by_uid->end());
    std::sort(dead.begin(), dead.end());
    for (FlowId id : dead) {
      ++st.gc_entries_touched;
      FlowHot* fp = lookup_hot(id);
      if (fp == nullptr) continue;
      fire_flow(*fp, FlowEvent::teardown, /*outcome=*/false);
      destroy_flow(*fp);
      ++closed;
    }
  }
  return closed;
}

std::size_t Network::reset_host(HostId h) {
  if (h.value() >= hosts_.size()) return 0;
  assert_serial_phase();
  HostState& hs = host(h);
  NetworkStats& st = bucket(group_of(h)).stats;
  std::size_t closed = hs.listeners.size() + hs.abstract_sockets.size();
  st.gc_entries_touched += closed;
  for (const auto& [key, l] : hs.listeners) unref_port(h, l.port);
  hs.listeners.clear();
  hs.abstract_sockets.clear();
  // Per-host flow index: touch only flows with an endpoint here. Sorted
  // so the teardown order (and the freed-port FIFO it feeds) matches the
  // id order the digests were pinned against.
  std::vector<FlowId> dead(hs.flows.begin(), hs.flows.end());
  std::sort(dead.begin(), dead.end());
  for (FlowId id : dead) {
    ++st.gc_entries_touched;
    FlowHot* fp = lookup_hot(id);
    if (fp == nullptr) continue;
    fire_flow(*fp, FlowEvent::teardown, /*outcome=*/false);
    destroy_flow(*fp);
    ++closed;
  }
  return closed;
}

Result<IdentInfo> Network::ident_lookup(HostId h, Proto proto,
                                        std::uint16_t port) {
  if (h.value() >= hosts_.size()) return Errno::enetunreach;
  // Ident work is accounted to the queried host's group bucket. A worker
  // may ident its own group's hosts; cross-group ident happens inside
  // serial-phase connects.
  assert_scope(group_of(h));
  Bucket& B = bucket(group_of(h));
  ++B.stats.ident_queries;
  if (faults_ != nullptr) {
    // A degraded responder answers late; a dead one eats the caller's
    // whole timeout budget before the query fails.
    charge(B, faults_->ident_extra_ns(h));
    if (faults_->ident_down(h)) {
      ++B.stats.ident_timeouts;
      charge(B, latency_.ident_timeout_ns);
      return Errno::etimedout;
    }
  }
  const HostState& hs = host(h);
  // A listener owns the port...
  if (const Listener* l = find_listener(h, proto, port)) {
    return IdentInfo{l->cred.uid, l->cred.egid, l->pid};
  }
  // ...or a flow endpoint does (client ephemeral ports live here) — O(1)
  // via the per-host port index, not a scan of the flow table.
  if (const std::vector<PortEndpoint>* eps =
          hs.flow_ports.find(pkey(proto, port));
      eps != nullptr && !eps->empty()) {
    const PortEndpoint& ep = eps->front();
    const FlowHot* f = lookup_hot(ep.flow);
    assert(f != nullptr);
    if (ep.end == FlowEnd::client) {
      // The client side has no captured egid snapshot distinct from uid's
      // session; the UBF only needs the uid on the initiating side.
      return IdentInfo{f->client_uid, Gid{}, Pid{}};
    }
    return IdentInfo{f->server_uid, Gid{}, Pid{}};
  }
  return Errno::enoent;
}

Result<void> Network::unix_listen_abstract(HostId h,
                                           const simos::Credentials& cred,
                                           std::string_view name) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  assert_scope(group_of(h));
  HostState& hs = host(h);
  if (hs.abstract_sockets.contains(name)) return Errno::eaddrinuse;
  hs.abstract_sockets.emplace(std::string(name), cred);
  return ok_result();
}

Result<Uid> Network::unix_connect_abstract(HostId h,
                                           const simos::Credentials& cred,
                                           std::string_view name) {
  // Deliberately unchecked: this is the residual channel. The trace still
  // sees every cross-user connect so the exposure is measurable.
  if (h.value() >= hosts_.size()) return Errno::einval;
  assert_scope(group_of(h));
  HostState& hs = host(h);
  auto it = hs.abstract_sockets.find(name);
  if (it == hs.abstract_sockets.end()) return Errno::econnrefused;
  if (trace_ != nullptr && it->second.uid != cred.uid) {
    trace_->record(obs::DecisionPoint::net_uninspected, obs::Outcome::allow,
                   cred.uid, cred.egid, it->second.uid,
                   obs::ChannelKind::abstract_uds, nullptr,
                   [&](std::string& out) {
                     out += '@';
                     out += name;
                   });
  }
  return it->second.uid;
}

Result<void> Network::unix_close_abstract(HostId h, std::string_view name) {
  if (h.value() >= hosts_.size()) return Errno::einval;
  assert_scope(group_of(h));
  HostState& hs = host(h);
  auto it = hs.abstract_sockets.find(name);
  if (it == hs.abstract_sockets.end()) return Errno::enoent;
  hs.abstract_sockets.erase(it);
  return ok_result();
}

std::vector<FlowId> Network::cross_user_flows() const {
  assert_serial_phase();
  std::vector<FlowId> out;
  for (const Bucket& B : buckets_) {
    for (std::size_t i = 0; i < B.table.size(); ++i) {
      const FlowHot& f = B.table.hot(i);
      if (f.state == FlowState::established &&
          f.client_uid != f.server_uid) {
        out.push_back(f.id);
      }
    }
  }
  // Dense order is churn-dependent; report in id order so audits are
  // stable.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace heus::net
