// Table-driven lifecycle machines (ISSUE 6 tentpole, ROADMAP item 3).
//
// Five lifecycles in this codebase used to be implicit in scattered
// conditionals: network flows (conntrack admission/teardown/GC), jobs,
// DTN transfers, portal sessions and container entries. This header is
// the shared vocabulary that makes them explicit: a MachineDef is a
// declarative table of states, events, guards and actions, and every
// state change in the owning subsystem goes through Driver::fire()
// against that table. The payoff is twofold:
//
//  - at runtime, the table is the single source of truth for which
//    event is legal in which state (teardown eligibility, retry
//    eligibility, …), with per-transition counters and optional
//    decision-trace rows for free;
//  - statically, `heus::analyze::ReachabilityChecker` walks the same
//    tables over the full policy lattice and proves that no reachable
//    transition sequence opens a channel the per-channel analyzer
//    holds closed (src/analyze/reachability.h).
//
// Guards come in two kinds. A *policy* guard is a pure predicate over
// PolicyView — a flat mirror of core::SeparationPolicy — and names the
// single obs::knob::* knob it depends on; the checker verifies that
// claim exhaustively (the transition/knob agreement rule, DESIGN.md
// §3). An *environment* guard is runtime ground truth the policy does
// not determine (retries left, requeue budget, listener identity); the
// checker explores both outcomes of every environment guard.
//
// Layering: this library depends only on common + obs, so every
// subsystem (net, sched, xfer, portal, container) can define its table
// here without cycles, and `analyze` can read all five through core.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/decision.h"
#include "obs/taxonomy.h"

namespace heus::lifecycle {

// Packed ids: states/events/guards/actions are small dense enums in the
// owning subsystem; tables index them as bytes.
using StateId = std::uint8_t;
using EventId = std::uint8_t;
using GuardId = std::uint8_t;
using ActionId = std::uint8_t;

inline constexpr GuardId kNoGuard = 0xff;
inline constexpr ActionId kNoAction = 0xff;

/// Flat mirror of core::SeparationPolicy, so policy guards stay pure
/// function pointers without a core dependency. `analyze::view_of()`
/// projects a SeparationPolicy into this; field encodings match the
/// knob registry (`heus-lint --list-knobs`) value-for-value.
struct PolicyView {
  std::uint8_t hidepid = 0;  ///< 0 off, 1 restrict, 2 invisible
  bool hidepid_gid_exemption = false;
  bool private_data_jobs = false;
  bool private_data_accounting = false;
  bool private_data_usage = false;
  std::uint8_t sharing = 0;  ///< 0 shared, 1 exclusive-job, 2 user-whole-node
  bool pam_slurm = false;
  bool fs_enforce_smask = false;
  bool fs_honor_smask = false;
  bool fs_restrict_acl = false;
  bool root_owned_homes = false;
  bool ubf = false;
  bool ubf_group_peers = true;
  bool gpu_dev_binding = false;
  bool gpu_epilog_scrub = false;
};

enum class GuardKind {
  policy,  ///< pure predicate over PolicyView; `knob` names its knob
  env,     ///< runtime ground truth; the checker explores both outcomes
};

/// A named predicate gating transitions. For policy guards, `eval` must
/// be a function of `knob`'s value alone — the reachability checker
/// enforces this over the whole policy lattice.
struct Guard {
  const char* name = "";
  GuardKind kind = GuardKind::env;
  const char* knob = nullptr;  ///< obs::knob::* for policy guards
  bool (*eval)(const PolicyView&) = nullptr;  ///< null for env guards
};

/// Channels a transition opens *without* an enforcement decision — the
/// property the reachability checker cross-examines against the static
/// analyzer's per-channel verdicts. Most transitions open nothing.
struct Opens {
  std::uint8_t count = 0;
  std::array<obs::ChannelKind, 2> channel{};
};

[[nodiscard]] constexpr Opens opens(obs::ChannelKind a) {
  return Opens{1, {a, a}};
}
[[nodiscard]] constexpr Opens opens(obs::ChannelKind a, obs::ChannelKind b) {
  return Opens{2, {a, b}};
}

struct Transition {
  StateId from = 0;
  EventId event = 0;
  GuardId guard = kNoGuard;  ///< kNoGuard: unconditional
  bool when = true;          ///< fires when the guard evaluates to `when`
  StateId to = 0;
  ActionId action = kNoAction;
  Opens opens_channels{};
};

/// One lifecycle, fully declarative. All spans reference static storage
/// in the owning subsystem; a MachineDef is immutable and shareable.
struct MachineDef {
  const char* name = "";
  std::span<const char* const> states;
  StateId initial = 0;
  std::uint32_t terminal_mask = 0;  ///< bit i set: state i is terminal
  std::span<const char* const> events;
  std::span<const Guard> guards;
  std::span<const char* const> actions;
  std::span<const Transition> transitions;

  [[nodiscard]] bool is_terminal(StateId s) const {
    return (terminal_mask >> s) & 1u;
  }
  [[nodiscard]] const char* state_name(StateId s) const {
    return s < states.size() ? states[s] : "?";
  }
  [[nodiscard]] const char* event_name(EventId e) const {
    return e < events.size() ? events[e] : "?";
  }
  [[nodiscard]] const char* action_name(ActionId a) const {
    return a == kNoAction ? "-" : (a < actions.size() ? actions[a] : "?");
  }
};

/// Find the transition the table prescribes for (state, event), with
/// guard outcomes supplied by `guard_true(const Guard&) -> bool`. First
/// match wins; the reachability checker rejects tables where two rows
/// could match the same (state, event, outcome). Returns nullptr when
/// the table has no row — an illegal event in this state.
template <typename GuardFn>
[[nodiscard]] const Transition* resolve(const MachineDef& def, StateId state,
                                        EventId event, GuardFn&& guard_true) {
  for (const Transition& t : def.transitions) {
    if (t.from != state || t.event != event) continue;
    if (t.guard == kNoGuard) return &t;
    if (static_cast<bool>(guard_true(def.guards[t.guard])) == t.when) {
      return &t;
    }
  }
  return nullptr;
}

/// "state --event[guard]--> state" label for traces and reports.
[[nodiscard]] std::string describe(const MachineDef& def,
                                   const Transition& t);

/// Runtime driver: the subsystem owns one per machine, keeps the state
/// variable wherever it likes (typically a packed enum field on the
/// domain object) and routes every change through fire(). Guard
/// outcomes come from the subsystem's ground truth — e.g. the flow
/// table answers "is this port inspected" from the installed hook, the
/// scheduler answers "requeue budget left" from the job spec — while
/// the static checker evaluates the same guards from policy.
class Driver {
 public:
  explicit Driver(const MachineDef* def)
      : def_(def), fired_(def->transitions.size()) {}

  [[nodiscard]] const MachineDef& def() const { return *def_; }

  /// Route fired transitions through a decision trace (one
  /// lifecycle_transition row each, opened channel and guard knob
  /// attached). Null disables recording.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Fire `event` on `state`: resolve against the table, advance the
  /// state, bump the per-transition counter, optionally record a trace
  /// row. Returns the transition, or nullptr (counted as an illegal
  /// event) when the table has no row for (state, event, outcome) —
  /// callers treat that as a hard logic error.
  template <typename GuardFn>
  const Transition* fire(StateId& state, EventId event, GuardFn&& guard_true,
                         Uid subject = Uid{}, Gid subject_gid = Gid{},
                         Uid object_owner = Uid{}) {
    const Transition* t = resolve(*def_, state, event, guard_true);
    if (t == nullptr) {
      illegal_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    state = t->to;
    fired_[static_cast<std::size_t>(t - def_->transitions.data())]
        .fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->record(obs::DecisionPoint::lifecycle_transition,
                     obs::Outcome::allow, subject, subject_gid, object_owner,
                     t->opens_channels.count > 0
                         ? std::optional<obs::ChannelKind>(
                               t->opens_channels.channel[0])
                         : std::nullopt,
                     t->guard != kNoGuard ? def_->guards[t->guard].knob
                                          : nullptr,
                     [&] { return describe(*def_, *t); });
    }
    return t;
  }

  /// Convenience for events whose rows are all guardless (guards, if
  /// any were present, would resolve as false).
  const Transition* fire(StateId& state, EventId event) {
    return fire(state, event, [](const Guard&) { return false; });
  }

  [[nodiscard]] std::uint64_t fired(std::size_t transition_index) const {
    return fired_.at(transition_index).load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired_total() const {
    std::uint64_t n = 0;
    for (const auto& f : fired_) n += f.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] std::uint64_t illegal_events() const {
    return illegal_.load(std::memory_order_relaxed);
  }

 private:
  const MachineDef* def_;
  obs::DecisionTrace* trace_ = nullptr;
  /// Atomic (relaxed): the sharded engine fires disjoint subsystem state
  /// from worker threads; the *totals* are deterministic (the multiset of
  /// fired transitions is), only the interleaving of increments is not.
  std::vector<std::atomic<std::uint64_t>> fired_;
  std::atomic<std::uint64_t> illegal_{0};
};

}  // namespace heus::lifecycle
