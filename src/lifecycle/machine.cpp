#include "lifecycle/machine.h"

namespace heus::lifecycle {

std::string describe(const MachineDef& def, const Transition& t) {
  std::string out = def.name;
  out += ": ";
  out += def.state_name(t.from);
  out += " --";
  out += def.event_name(t.event);
  if (t.guard != kNoGuard) {
    const Guard& g = def.guards[t.guard];
    out += "[";
    if (!t.when) out += "!";
    out += g.name;
    out += "]";
  }
  out += "--> ";
  out += def.state_name(t.to);
  if (t.action != kNoAction) {
    out += " / ";
    out += def.action_name(t.action);
  }
  return out;
}

}  // namespace heus::lifecycle
