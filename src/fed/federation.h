// Federated multi-cluster separation (ISSUE 7 tentpole; ROADMAP item 2).
//
// The paper's user-based firewall asks an ident responder on the *other
// host* before admitting a connection. This module generalises that move
// across *clusters*: N independent `core::Cluster` instances — each with
// its own UserDb, its own SimClock, its own SeparationPolicy — exchange
// ident queries, portal forwards and DTN transfers over a simulated
// inter-cluster WAN link. Accounts are federated by *name*: a principal
// is admitted on a remote cluster only if (a) their home cluster verifies
// the claimed identity over the link and (b) the name maps to a local
// account on the enforcing cluster. The mapped local credentials then go
// through the enforcing cluster's own stack — its UBF hook, its portal,
// its VFS — so federation never introduces a second enforcement engine
// that could drift from the local one.
//
// Partition tolerance is where the separation claim gets sharp. The link
// fails in all the ways WANs fail (fault::FaultKind::link_partition /
// link_latency / link_loss, drawn into the same seeded FaultPlans the
// intra-cluster sweeps replay), and every remote operation is wrapped in
// typed timeout/retry (common::BackoffPolicy) plus a per-directed-peer
// circuit breaker driven through the `fed-breaker` lifecycle table
// (breaker_lifecycle.h — the sixth table the reachability checker
// proves over the policy lattice). When retries exhaust or the breaker
// is open the operation FAILS CLOSED: a typed errno plus an
// `obs::Decision` at DecisionPoint::fed_admission naming the federation
// knob responsible (`fed.fail_closed` for link failures, `fed.breaker`
// for fast-fails), so an availability casualty is attributable and never
// silently admits an unverified identity. The `fail_open` strawman
// exists to let experiments measure what that rule buys.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "fault/fault.h"
#include "fed/breaker_lifecycle.h"
#include "lifecycle/machine.h"
#include "obs/decision.h"
#include "portal/gateway.h"
#include "xfer/staging.h"

namespace heus::fed {

/// Federation member index (position in Federation::add_cluster order).
using ClusterIdx = std::uint32_t;

/// Fault surface of the inter-cluster link. Implemented by
/// FedFaultInjector; declared separately so tests can hand-roll models.
/// All predicates are evaluated against the *originating* cluster's
/// clock by the implementation; the federation just asks.
class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;
  /// Clusters `a` and `b` cannot currently exchange messages.
  [[nodiscard]] virtual bool partitioned(ClusterIdx a, ClusterIdx b) const = 0;
  /// Extra one-way latency (ns) a message from `a` to `b` incurs now.
  [[nodiscard]] virtual std::int64_t extra_ns(ClusterIdx a,
                                              ClusterIdx b) const = 0;
  /// Should this message from `a` to `b` be dropped? Non-const: the
  /// implementation may consume seeded randomness.
  virtual bool drop_message(ClusterIdx a, ClusterIdx b) = 0;
};

/// Tunables of the federation daemon pair on each member.
struct FedOptions {
  /// Retry schedule for transient link failures. Policy denials are
  /// deterministic and never retried; a half-open breaker allows exactly
  /// one probe regardless of this budget.
  common::BackoffPolicy retry{};
  /// Consecutive exchange failures before the per-peer breaker trips.
  unsigned trip_threshold = 3;
  /// Open-state dwell before a probe is allowed (originating clock).
  std::int64_t cooldown_ns = 5 * common::kSecond;
  /// Healthy request/reply round trip over the WAN link.
  std::int64_t link_rtt_ns = 10 * common::kMillisecond;
  /// Per-attempt budget before an exchange is declared dead.
  std::int64_t link_timeout_ns = 50 * common::kMillisecond;
  /// DTN uplink bandwidth for cross-cluster staging (~10 Gb/s).
  double link_bytes_per_ns = 1.25;
  /// Strawman: when identity verification fails from link trouble, relay
  /// the *unverified* claim instead of failing closed. Exists so
  /// experiments can price the fail-closed rule; never the default.
  bool fail_open = false;
};

/// What a home cluster answers about one of its accounts.
struct RemoteIdentity {
  std::string name;   ///< account name (the federated principal)
  Uid home_uid{};     ///< uid on the answering cluster
  Gid home_gid{};     ///< user-private group on the answering cluster
};

struct FedStats {
  std::uint64_t remote_ops = 0;        ///< guarded link exchanges attempted
  std::uint64_t exchanges_ok = 0;      ///< exchanges that round-tripped
  std::uint64_t retries = 0;           ///< backoff retries attempted
  std::uint64_t retry_successes = 0;   ///< retries that went through
  std::uint64_t verified = 0;          ///< remote identities verified
  std::uint64_t denied_link = 0;       ///< fail closed: retries exhausted
  std::uint64_t denied_breaker = 0;    ///< fail closed: breaker open
  std::uint64_t denied_no_account = 0; ///< verified name has no local account
  std::uint64_t denied_spoofed = 0;    ///< claimed uid unknown to home cluster
  std::uint64_t fail_open_admits = 0;  ///< strawman relays w/o verification
  std::uint64_t breaker_trips = 0;     ///< closed -> open
  std::uint64_t breaker_reopens = 0;   ///< half-open probe failed
  std::uint64_t breaker_recoveries = 0;///< half-open probe verified
  std::uint64_t connects = 0;          ///< federated flows established
  std::uint64_t portal_forwards = 0;   ///< federated portal requests served
  std::uint64_t transfers_done = 0;    ///< cross-cluster stagings landed
  std::uint64_t transfers_failed = 0;
  std::uint64_t bytes_moved = 0;
};

/// The federation: membership, per-peer breakers, and the three remote
/// operation types. Owns no cluster; members outlive it.
class Federation {
 public:
  explicit Federation(FedOptions opts = {});

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  // ---- membership -----------------------------------------------------

  /// Register a member. Creates the cluster's federation gateway host on
  /// its fabric (remote principals enter through it, so the member's own
  /// UBF inspects every federated flow) and a DTN endpoint on the shared
  /// link buffer.
  ClusterIdx add_cluster(std::string name, core::Cluster* cluster);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] core::Cluster& cluster(ClusterIdx idx) {
    return *members_.at(idx).cluster;
  }
  [[nodiscard]] const std::string& cluster_name(ClusterIdx idx) const {
    return members_.at(idx).name;
  }
  /// The member's ingress host for federated flows.
  [[nodiscard]] HostId gateway_host(ClusterIdx idx) const {
    return members_.at(idx).gateway;
  }

  /// Install/remove the link fault model (nullptr = healthy WAN).
  void set_link_faults(LinkFaultModel* faults) { faults_ = faults; }

  [[nodiscard]] const FedOptions& options() const { return opts_; }
  void set_options(const FedOptions& opts);

  // ---- remote operations ----------------------------------------------

  /// Cross-cluster ident query: `local` asks `peer` which account owns
  /// `peer_uid` there. The UBF remote path, one link up: same question,
  /// cluster-scoped responder, breaker-guarded. ESRCH: no such account.
  Result<RemoteIdentity> remote_ident(ClusterIdx local, ClusterIdx peer,
                                      Uid peer_uid);

  /// Federated connect: a user of `src` (their home cluster) connects to
  /// `dst_port` on `dst_host` of cluster `dst`. The enforcing side
  /// verifies the identity with `src` over the link, maps the name to a
  /// dst-local account, and admits through its own fabric + UBF from the
  /// federation gateway host — so the final verdict is rendered by the
  /// same hook that governs local flows.
  Result<FlowId> connect(ClusterIdx src, const simos::Credentials& cred,
                         ClusterIdx dst, HostId dst_host, net::Proto proto,
                         std::uint16_t dst_port);

  /// Federated portal forward: a user of `src` fetches app `app` on
  /// cluster `dst` through dst's own portal, as their mapped account.
  Result<std::string> portal_request(ClusterIdx src,
                                     const simos::Credentials& cred,
                                     ClusterIdx dst, portal::AppId app,
                                     const std::string& http_request);

  /// Cross-cluster DTN transfer: stage `src_path` out of src's shared FS
  /// as the requesting user, move it over the link, land it at
  /// `dst_path` on dst's shared FS as the *mapped* account — both
  /// filesystem halves run under their cluster's own DAC/smask. Returns
  /// bytes moved.
  Result<std::uint64_t> transfer(ClusterIdx src,
                                 const simos::Credentials& cred,
                                 const std::string& src_path, ClusterIdx dst,
                                 const std::string& dst_path);

  // ---- time -----------------------------------------------------------

  /// Advance every member clock by `delta_ns` (fault windows and breaker
  /// cooldowns are per-member-clock; sweeps keep them loosely in step).
  void advance_all(std::int64_t delta_ns);
  /// Jump every member clock forward to `t` (never backwards).
  void advance_all_to(common::SimTime t);

  // ---- observation ----------------------------------------------------

  [[nodiscard]] BreakerState breaker_state(ClusterIdx local,
                                           ClusterIdx peer) const;
  /// The table driver behind every breaker state change (per-transition
  /// fire counts, illegal-event tally), shared by all directed pairs.
  [[nodiscard]] const lifecycle::Driver& breaker_lifecycle() const {
    return breaker_lc_;
  }
  [[nodiscard]] const FedStats& stats() const { return stats_; }
  [[nodiscard]] const xfer::ExternalStore& link_buffer() const {
    return link_store_;
  }

 private:
  struct Member {
    std::string name;
    core::Cluster* cluster = nullptr;
    HostId gateway{};
    std::unique_ptr<xfer::StagingService> dtn;
  };

  /// Breaker + failure accounting for one directed (local, peer) pair.
  struct PeerLink {
    BreakerState state = BreakerState::closed;
    unsigned consecutive_failures = 0;
    std::int64_t cooldown_until_ns = -1;  ///< on local clock; <0 = none
  };

  /// Who/what a guarded exchange is about, for decision attribution.
  struct OpContext {
    Uid subject{};
    Gid subject_gid{};
    Uid object_owner{};
    std::optional<obs::ChannelKind> channel;
    std::string object;
  };

  [[nodiscard]] static constexpr std::uint64_t pair_key(ClusterIdx local,
                                                        ClusterIdx peer) {
    return (static_cast<std::uint64_t>(local) << 32) | peer;
  }
  [[nodiscard]] PeerLink& link_between(ClusterIdx local, ClusterIdx peer) {
    return links_[pair_key(local, peer)];
  }

  /// remote_ident with caller-supplied attribution context.
  Result<RemoteIdentity> remote_ident_ctx(ClusterIdx local, ClusterIdx peer,
                                          Uid peer_uid, const OpContext& ctx);

  /// One request/reply over the WAN, charged to `from`'s clock. Errors:
  /// EHOSTUNREACH (partition), ETIMEDOUT (drop or latency past budget).
  Result<void> exchange_once(ClusterIdx from, ClusterIdx to);

  /// The fail-closed funnel every remote operation passes through:
  /// breaker gate (open → fast deny; cooldown elapsed → probe), one
  /// exchange, backoff retries while closed, breaker bookkeeping, and a
  /// deny Decision on `local`'s trace naming fed.breaker/fed.fail_closed
  /// when the operation fails closed.
  Result<void> guarded_exchange(ClusterIdx local, ClusterIdx peer,
                                const OpContext& ctx);

  /// Route one breaker event for (local, peer) through the shared table.
  /// `env_outcome` answers the trip-threshold guard; the ubf-governs
  /// policy guard reads `local`'s live policy.
  const lifecycle::Transition* fire_breaker(ClusterIdx local, PeerLink& link,
                                            BreakerEvent event,
                                            bool env_outcome,
                                            const OpContext& ctx);

  /// Verify `cred`'s claimed identity with its home cluster and map the
  /// name to an account on `enforcing`. Fail-closed on link trouble
  /// (unless the fail_open strawman is on); EPERM when unmapped.
  Result<simos::Credentials> map_identity(ClusterIdx enforcing,
                                          ClusterIdx home,
                                          const simos::Credentials& cred,
                                          const OpContext& ctx);

  void record_deny(ClusterIdx at, const OpContext& ctx, const char* knob);

  FedOptions opts_;
  std::vector<Member> members_;
  /// Directed-pair breaker state, keyed pair_key(local, peer); created
  /// lazily on first exchange.
  std::map<std::uint64_t, PeerLink> links_;
  lifecycle::Driver breaker_lc_{&breaker_machine()};
  LinkFaultModel* faults_ = nullptr;
  xfer::ExternalStore link_store_;
  FedStats stats_;
};

/// Applies the link_* events of a FaultPlan to a federation's WAN link.
/// Windows are evaluated against the *originating* cluster's clock, and
/// one seeded Rng drives the loss draws, so a (plan, seed) pair replays
/// identically. Non-link events in the plan are ignored here (arm a
/// fault::FaultInjector per member cluster for those).
class FedFaultInjector final : public LinkFaultModel {
 public:
  FedFaultInjector(Federation* fed, fault::FaultPlan plan,
                   std::uint64_t seed);
  ~FedFaultInjector() override;

  FedFaultInjector(const FedFaultInjector&) = delete;
  FedFaultInjector& operator=(const FedFaultInjector&) = delete;

  /// Install on the federation. Idempotent.
  void arm();
  void disarm();
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] bool partitioned(ClusterIdx a, ClusterIdx b) const override;
  [[nodiscard]] std::int64_t extra_ns(ClusterIdx a,
                                      ClusterIdx b) const override;
  bool drop_message(ClusterIdx a, ClusterIdx b) override;

  [[nodiscard]] const fault::FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] common::SimTime now_at(ClusterIdx origin) const;

  Federation* fed_;
  fault::FaultPlan plan_;
  common::Rng rng_;
  bool armed_ = false;
};

}  // namespace heus::fed
