#include "fed/federation.h"

#include <utility>

#include "simos/credentials.h"

namespace heus::fed {

Federation::Federation(FedOptions opts) : opts_(opts) {}

ClusterIdx Federation::add_cluster(std::string name, core::Cluster* cluster) {
  const ClusterIdx idx = static_cast<ClusterIdx>(members_.size());
  Member m;
  m.name = std::move(name);
  m.cluster = cluster;
  // Federated principals enter through a dedicated gateway host on the
  // member's own fabric, so the member's own UBF hook inspects every
  // federated flow exactly as it inspects local ones.
  m.gateway = cluster->network().add_host("fedgw-" + m.name);
  m.dtn = std::make_unique<xfer::StagingService>(
      &cluster->shared_fs(), &link_store_, &cluster->clock(),
      opts_.link_bytes_per_ns);
  m.dtn->set_retry(opts_.retry);
  members_.push_back(std::move(m));
  return idx;
}

void Federation::set_options(const FedOptions& opts) {
  opts_ = opts;
  for (Member& m : members_) m.dtn->set_retry(opts_.retry);
}

void Federation::advance_all(std::int64_t delta_ns) {
  for (Member& m : members_) m.cluster->clock().advance(delta_ns);
}

void Federation::advance_all_to(common::SimTime t) {
  for (Member& m : members_) m.cluster->clock().advance_to(t);
}

BreakerState Federation::breaker_state(ClusterIdx local,
                                       ClusterIdx peer) const {
  auto it = links_.find(pair_key(local, peer));
  return it == links_.end() ? BreakerState::closed : it->second.state;
}

void Federation::record_deny(ClusterIdx at, const OpContext& ctx,
                             const char* knob) {
  members_.at(at).cluster->trace().record(
      obs::DecisionPoint::fed_admission, obs::Outcome::deny, ctx.subject,
      ctx.subject_gid, ctx.object_owner, ctx.channel, knob,
      [&] { return ctx.object; });
}

const lifecycle::Transition* Federation::fire_breaker(ClusterIdx local,
                                                      PeerLink& link,
                                                      BreakerEvent event,
                                                      bool env_outcome,
                                                      const OpContext& ctx) {
  // The ubf-governs policy guard reads the member's live policy; the
  // trip-threshold environment guard is answered by the caller.
  const bool ubf_on = members_.at(local).cluster->policy().ubf;
  lifecycle::StateId s = static_cast<lifecycle::StateId>(link.state);
  const lifecycle::Transition* t = breaker_lc_.fire(
      s, static_cast<lifecycle::EventId>(event),
      [&](const lifecycle::Guard& g) {
        return g.kind == lifecycle::GuardKind::policy ? ubf_on : env_outcome;
      },
      ctx.subject, ctx.subject_gid, ctx.object_owner);
  link.state = static_cast<BreakerState>(s);
  return t;
}

Result<void> Federation::exchange_once(ClusterIdx from, ClusterIdx to) {
  common::SimClock& clk = members_.at(from).cluster->clock();
  if (faults_ == nullptr) {
    clk.advance(opts_.link_rtt_ns);
    return ok_result();
  }
  if (faults_->partitioned(from, to)) {
    clk.advance(opts_.link_timeout_ns);
    return Errno::ehostunreach;
  }
  // Request and reply are independent loss draws.
  const bool lost_req = faults_->drop_message(from, to);
  const bool lost_rep = !lost_req && faults_->drop_message(to, from);
  if (lost_req || lost_rep) {
    clk.advance(opts_.link_timeout_ns);
    return Errno::etimedout;
  }
  const std::int64_t rtt = opts_.link_rtt_ns + faults_->extra_ns(from, to) +
                           faults_->extra_ns(to, from);
  if (rtt >= opts_.link_timeout_ns) {
    clk.advance(opts_.link_timeout_ns);
    return Errno::etimedout;
  }
  clk.advance(rtt);
  return ok_result();
}

Result<void> Federation::guarded_exchange(ClusterIdx local, ClusterIdx peer,
                                          const OpContext& ctx) {
  ++stats_.remote_ops;
  PeerLink& link = link_between(local, peer);
  common::SimClock& clk = members_.at(local).cluster->clock();

  if (link.state == BreakerState::open) {
    if (link.cooldown_until_ns >= 0 &&
        clk.now().ns >= link.cooldown_until_ns) {
      fire_breaker(local, link, BreakerEvent::cooldown, false, ctx);
      link.cooldown_until_ns = -1;
    } else {
      // Fail closed, fast: no remote traffic against a peer known dead.
      fire_breaker(local, link, BreakerEvent::remote_op, false, ctx);
      ++stats_.denied_breaker;
      record_deny(local, ctx, obs::knob::fed_breaker);
      return Errno::ehostunreach;
    }
  }

  // Half-open allows exactly one probe; closed gets the retry budget.
  const bool probe = link.state == BreakerState::half_open;
  fire_breaker(local, link, BreakerEvent::remote_op, false, ctx);
  auto r = exchange_once(local, peer);
  if (!probe) {
    for (unsigned attempt = 0; !r && attempt < opts_.retry.max_retries;
         ++attempt) {
      clk.advance(opts_.retry.delay_ns(attempt));
      ++stats_.retries;
      r = exchange_once(local, peer);
      if (r) ++stats_.retry_successes;
    }
  }

  if (!r) {
    if (probe) {
      fire_breaker(local, link, BreakerEvent::failure, false, ctx);
      ++stats_.breaker_reopens;
    } else {
      ++link.consecutive_failures;
      const bool trip = link.consecutive_failures >= opts_.trip_threshold;
      fire_breaker(local, link, BreakerEvent::failure, trip, ctx);
      if (trip) ++stats_.breaker_trips;
    }
    if (link.state == BreakerState::open) {
      link.cooldown_until_ns = clk.now().ns + opts_.cooldown_ns;
    }
    ++stats_.denied_link;
    record_deny(local, ctx, obs::knob::fed_fail_closed);
    return r.error();
  }

  ++stats_.exchanges_ok;
  if (probe) ++stats_.breaker_recoveries;
  fire_breaker(local, link, BreakerEvent::success, false, ctx);
  link.consecutive_failures = 0;
  return ok_result();
}

Result<RemoteIdentity> Federation::remote_ident_ctx(ClusterIdx local,
                                                    ClusterIdx peer,
                                                    Uid peer_uid,
                                                    const OpContext& ctx) {
  auto gate = guarded_exchange(local, peer, ctx);
  if (!gate) return gate.error();
  const simos::User* u =
      members_.at(peer).cluster->users().find_user(peer_uid);
  if (u == nullptr) return Errno::esrch;
  return RemoteIdentity{u->name, u->uid, u->private_group};
}

Result<RemoteIdentity> Federation::remote_ident(ClusterIdx local,
                                                ClusterIdx peer,
                                                Uid peer_uid) {
  OpContext ctx;
  ctx.subject = peer_uid;
  ctx.object_owner = peer_uid;
  ctx.object = "ident " + cluster_name(peer) + " uid " +
               std::to_string(peer_uid.value());
  return remote_ident_ctx(local, peer, peer_uid, ctx);
}

Result<simos::Credentials> Federation::map_identity(
    ClusterIdx enforcing, ClusterIdx home, const simos::Credentials& cred,
    const OpContext& ctx) {
  auto ident = remote_ident_ctx(enforcing, home, cred.uid, ctx);
  std::string name;
  if (ident) {
    ++stats_.verified;
    name = ident->name;
  } else if (ident.error() == Errno::esrch) {
    // The claimed uid is unknown to its alleged home cluster: a spoofed
    // or stale claim. Deterministic identity denial, attributed to the
    // UBF rule that unattributable principals are dropped.
    ++stats_.denied_spoofed;
    record_deny(enforcing, ctx, obs::knob::ubf);
    return Errno::eperm;
  } else if (opts_.fail_open) {
    // Strawman: the original request carried the claimed account name
    // (stamped by the home cluster before the link failed); relay it
    // without verification. This is exactly the admission the default
    // fail-closed rule forbids — counted so experiments can price it.
    const simos::User* claimed =
        members_.at(home).cluster->users().find_user(cred.uid);
    if (claimed == nullptr) return Errno::eperm;
    ++stats_.fail_open_admits;
    name = claimed->name;
  } else {
    // Fail closed. The deny Decision naming the federation knob was
    // recorded by guarded_exchange on the enforcing cluster's trace.
    return ident.error();
  }

  const simos::User* local =
      members_.at(enforcing).cluster->users().find_user_by_name(name);
  if (local == nullptr) {
    // Verified principal, but no account here: federation maps names,
    // it never mints accounts.
    ++stats_.denied_no_account;
    record_deny(enforcing, ctx, obs::knob::ubf);
    return Errno::eperm;
  }
  auto mapped = simos::login(members_.at(enforcing).cluster->users(),
                             local->uid);
  if (!mapped) return mapped.error();
  return *mapped;
}

Result<FlowId> Federation::connect(ClusterIdx src,
                                   const simos::Credentials& cred,
                                   ClusterIdx dst, HostId dst_host,
                                   net::Proto proto,
                                   std::uint16_t dst_port) {
  OpContext ctx;
  ctx.subject = cred.uid;
  ctx.subject_gid = cred.egid;
  ctx.channel = obs::ChannelKind::tcp_cross_user;
  ctx.object = "connect " + cluster_name(src) + "->" + cluster_name(dst) +
               " host " + std::to_string(dst_host.value()) + " port " +
               std::to_string(dst_port);
  // Transport leg: the home cluster's daemon reaches the peer (its
  // breaker toward dst governs; a denial lands on src's trace).
  auto fwd = guarded_exchange(src, dst, ctx);
  if (!fwd) return fwd.error();
  // Enforcement leg: dst verifies the claimed identity with src over the
  // link (its breaker toward src governs) and maps the name locally.
  auto mapped = map_identity(dst, src, cred, ctx);
  if (!mapped) return mapped.error();
  // Final admission by dst's own fabric + UBF, from the gateway host.
  auto flow = members_.at(dst).cluster->network().connect(
      members_.at(dst).gateway, *mapped, Pid{}, dst_host, proto, dst_port);
  if (flow) ++stats_.connects;
  return flow;
}

Result<std::string> Federation::portal_request(ClusterIdx src,
                                               const simos::Credentials& cred,
                                               ClusterIdx dst,
                                               portal::AppId app,
                                               const std::string&
                                                   http_request) {
  OpContext ctx;
  ctx.subject = cred.uid;
  ctx.subject_gid = cred.egid;
  ctx.channel = obs::ChannelKind::portal_foreign_app;
  ctx.object = "portal " + cluster_name(src) + "->" + cluster_name(dst) +
               " app " + std::to_string(app.value());
  auto fwd = guarded_exchange(src, dst, ctx);
  if (!fwd) return fwd.error();
  auto mapped = map_identity(dst, src, cred, ctx);
  if (!mapped) return mapped.error();
  auto response =
      members_.at(dst).cluster->portal().federated_request(*mapped, app,
                                                           http_request);
  if (response) ++stats_.portal_forwards;
  return response;
}

Result<std::uint64_t> Federation::transfer(ClusterIdx src,
                                           const simos::Credentials& cred,
                                           const std::string& src_path,
                                           ClusterIdx dst,
                                           const std::string& dst_path) {
  OpContext ctx;
  ctx.subject = cred.uid;
  ctx.subject_gid = cred.egid;
  ctx.object = "transfer " + cluster_name(src) + ":" + src_path + " -> " +
               cluster_name(dst) + ":" + dst_path;
  auto fwd = guarded_exchange(src, dst, ctx);
  if (!fwd) return fwd.error();
  auto mapped = map_identity(dst, src, cred, ctx);
  if (!mapped) return mapped.error();

  Member& a = members_.at(src);
  Member& b = members_.at(dst);
  const std::string key = "fedlink/" + a.name + "/" +
                          std::to_string(cred.uid.value()) + src_path;
  // Outbound half: read from src's shared FS as the *requesting* user —
  // src-side DAC/smask applies to what may leave the cluster.
  auto out = a.dtn->submit(cred, xfer::Direction::stage_out, key, src_path);
  if (!out) return out.error();
  a.dtn->process_all();
  const xfer::Transfer* ot = a.dtn->find(*out);
  if (ot == nullptr || ot->state != xfer::TransferState::done) {
    ++stats_.transfers_failed;
    link_store_.erase(key);
    return ot != nullptr && ot->error != Errno::ok ? ot->error : Errno::eio;
  }
  // Inbound half: land on dst's shared FS as the *mapped* account —
  // dst-side DAC/smask applies to where it may land.
  auto in = b.dtn->submit(*mapped, xfer::Direction::stage_in, key, dst_path);
  if (!in) {
    link_store_.erase(key);
    return in.error();
  }
  b.dtn->process_all();
  const xfer::Transfer* it = b.dtn->find(*in);
  // The link buffer is a staging area, not storage: drain it so a later
  // transfer with a guessable key can never read another tenant's bytes.
  link_store_.erase(key);
  if (it == nullptr || it->state != xfer::TransferState::done) {
    ++stats_.transfers_failed;
    return it != nullptr && it->error != Errno::ok ? it->error : Errno::eio;
  }
  ++stats_.transfers_done;
  stats_.bytes_moved += it->bytes;
  return it->bytes;
}

// ---- FedFaultInjector ---------------------------------------------------

FedFaultInjector::FedFaultInjector(Federation* fed, fault::FaultPlan plan,
                                   std::uint64_t seed)
    : fed_(fed), plan_(std::move(plan)), rng_(seed) {}

FedFaultInjector::~FedFaultInjector() { disarm(); }

void FedFaultInjector::arm() {
  if (armed_) return;
  fed_->set_link_faults(this);
  armed_ = true;
}

void FedFaultInjector::disarm() {
  if (!armed_) return;
  fed_->set_link_faults(nullptr);
  armed_ = false;
}

common::SimTime FedFaultInjector::now_at(ClusterIdx origin) const {
  return fed_->cluster(origin).clock().now();
}

bool FedFaultInjector::partitioned(ClusterIdx a, ClusterIdx b) const {
  const common::SimTime t = now_at(a);
  for (const fault::FaultEvent& e : plan_.events()) {
    if (e.kind != fault::FaultKind::link_partition || !e.active_at(t)) {
      continue;
    }
    const bool a_in_a = e.targets_cluster(a);
    const bool b_in_a = e.targets_cluster(b);
    auto in_b = [&e](ClusterIdx c) {
      for (const std::uint32_t x : e.clusters_b) {
        if (x == c) return true;
      }
      return false;
    };
    if ((a_in_a && in_b(b)) || (b_in_a && in_b(a))) return true;
  }
  return false;
}

std::int64_t FedFaultInjector::extra_ns(ClusterIdx a, ClusterIdx b) const {
  const common::SimTime t = now_at(a);
  std::int64_t extra = 0;
  for (const fault::FaultEvent& e : plan_.events()) {
    if (e.kind != fault::FaultKind::link_latency || !e.active_at(t)) {
      continue;
    }
    if (e.targets_cluster(a) || e.targets_cluster(b)) extra += e.extra_ns;
  }
  return extra;
}

bool FedFaultInjector::drop_message(ClusterIdx a, ClusterIdx b) {
  const common::SimTime t = now_at(a);
  for (const fault::FaultEvent& e : plan_.events()) {
    if (e.kind != fault::FaultKind::link_loss || !e.active_at(t)) continue;
    if (!(e.targets_cluster(a) || e.targets_cluster(b))) continue;
    if (rng_.uniform01() < e.probability) return true;
  }
  return false;
}

}  // namespace heus::fed
