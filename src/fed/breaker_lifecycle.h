// Declarative lifecycle table for the per-peer federation circuit
// breaker (ISSUE 7 tentpole).
//
// Every cross-cluster operation — remote ident query, federated portal
// forward, inter-cluster DTN transfer — flows through a breaker scoped
// to the (local cluster, remote peer) directed pair. The breaker is the
// fail-closed spine of the federation: while it is *open* (the peer has
// exceeded its consecutive-failure budget) every remote operation fails
// fast with a typed denial and an `obs::Decision` naming the
// `fed.breaker` knob — no retry amplification against a peer that is
// known dead, and structurally no way to admit an identity the peer
// never verified.
//
// That last property is exactly what the reachability checker proves:
// the only rows that relay a remote operation without a verification
// verdict are the `relay-unverified` rows, reachable solely under
// policies where the UBF knob is off — the same policies under which
// the static analyzer already holds the cross-user TCP and portal
// channels open. Under every UBF-enabled policy point, all reachable
// breaker transitions either verify remotely or fail closed; a seeded
// mutation that admits through an open breaker is flagged as a
// separation-opening with the responsible knob named
// (tests/analyze/reachability_test.cpp).
#pragma once

#include "lifecycle/machine.h"

namespace heus::fed {

enum class BreakerState : lifecycle::StateId {
  closed,     ///< healthy: remote operations verify against the peer
  open,       ///< tripped: every remote operation fails closed, fast
  half_open,  ///< probation after cooldown: one probe allowed through
};

enum class BreakerEvent : lifecycle::EventId {
  remote_op,  ///< a cross-cluster operation attempt against this peer
  success,    ///< the operation completed and the peer verified it
  failure,    ///< timeout/partition after exhausted retries
  cooldown,   ///< the open-state cooldown window elapsed
};

enum class BreakerGuard : lifecycle::GuardId {
  ubf_governs,     ///< policy: the UBF governs cross-cluster admission
  trip_threshold,  ///< env: consecutive failures reached the trip budget
};

enum class BreakerAction : lifecycle::ActionId {
  verify_remote_ident,  ///< op proceeds through the peer's ident verdict
  relay_unverified,     ///< no UBF: op relayed with no enforcement verdict
  reset_failures,       ///< success clears the consecutive-failure count
  count_failure,        ///< below threshold: count and stay closed
  trip_breaker,         ///< threshold reached: go open
  fail_closed_fast,     ///< open: deny immediately, no remote traffic
  arm_probe,            ///< cooldown elapsed: allow a single probe
  close_breaker,        ///< probe verified: peer is healthy again
  reopen_breaker,       ///< probe failed: back to open, cooldown restarts
};

/// The shared breaker table. One static instance; fed::Federation drives
/// one state variable per directed (local, peer) pair through it.
[[nodiscard]] const lifecycle::MachineDef& breaker_machine();

}  // namespace heus::fed
