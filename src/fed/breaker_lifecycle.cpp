#include "fed/breaker_lifecycle.h"

namespace heus::fed {
namespace {

using lifecycle::Guard;
using lifecycle::GuardKind;
using lifecycle::kNoGuard;
using lifecycle::MachineDef;
using lifecycle::opens;
using lifecycle::Transition;

constexpr const char* kStates[] = {"closed", "open", "half-open"};
constexpr const char* kEvents[] = {"remote-op", "success", "failure",
                                   "cooldown"};
constexpr const char* kActions[] = {
    "verify-remote-ident", "relay-unverified", "reset-failures",
    "count-failure",       "trip-breaker",     "fail-closed-fast",
    "arm-probe",           "close-breaker",    "reopen-breaker",
};

bool ubf_on(const lifecycle::PolicyView& p) { return p.ubf; }

constexpr Guard kGuards[] = {
    {"ubf-governs", GuardKind::policy, obs::knob::ubf, ubf_on},
    {"trip-threshold", GuardKind::env, nullptr, nullptr},
};

constexpr auto S = [](BreakerState s) {
  return static_cast<lifecycle::StateId>(s);
};
constexpr auto E = [](BreakerEvent e) {
  return static_cast<lifecycle::EventId>(e);
};
constexpr auto G = [](BreakerGuard g) {
  return static_cast<lifecycle::GuardId>(g);
};
constexpr auto A = [](BreakerAction a) {
  return static_cast<lifecycle::ActionId>(a);
};

const Transition kTransitions[] = {
    // Closed: an operation verifies through the peer when the UBF
    // governs cross-cluster admission; with the UBF off the federation
    // relays a hop no enforcement point ever sees — annotated as
    // opening the same channels the analyzer already holds open under
    // those policies.
    {S(BreakerState::closed), E(BreakerEvent::remote_op),
     G(BreakerGuard::ubf_governs), true, S(BreakerState::closed),
     A(BreakerAction::verify_remote_ident)},
    {S(BreakerState::closed), E(BreakerEvent::remote_op),
     G(BreakerGuard::ubf_governs), false, S(BreakerState::closed),
     A(BreakerAction::relay_unverified),
     opens(obs::ChannelKind::tcp_cross_user,
           obs::ChannelKind::portal_foreign_app)},
    {S(BreakerState::closed), E(BreakerEvent::success), kNoGuard, true,
     S(BreakerState::closed), A(BreakerAction::reset_failures)},
    {S(BreakerState::closed), E(BreakerEvent::failure),
     G(BreakerGuard::trip_threshold), false, S(BreakerState::closed),
     A(BreakerAction::count_failure)},
    {S(BreakerState::closed), E(BreakerEvent::failure),
     G(BreakerGuard::trip_threshold), true, S(BreakerState::open),
     A(BreakerAction::trip_breaker)},
    // Open: fail closed, fast, unconditionally — the row the seeded
    // mutation tests replace with an admitting one to prove the checker
    // catches a breaker that leaks.
    {S(BreakerState::open), E(BreakerEvent::remote_op), kNoGuard, true,
     S(BreakerState::open), A(BreakerAction::fail_closed_fast)},
    {S(BreakerState::open), E(BreakerEvent::cooldown), kNoGuard, true,
     S(BreakerState::half_open), A(BreakerAction::arm_probe)},
    // Half-open probation: one probe traverses the same verification
    // rows as closed; its outcome decides recovery or re-trip.
    {S(BreakerState::half_open), E(BreakerEvent::remote_op),
     G(BreakerGuard::ubf_governs), true, S(BreakerState::half_open),
     A(BreakerAction::verify_remote_ident)},
    {S(BreakerState::half_open), E(BreakerEvent::remote_op),
     G(BreakerGuard::ubf_governs), false, S(BreakerState::half_open),
     A(BreakerAction::relay_unverified),
     opens(obs::ChannelKind::tcp_cross_user,
           obs::ChannelKind::portal_foreign_app)},
    {S(BreakerState::half_open), E(BreakerEvent::success), kNoGuard, true,
     S(BreakerState::closed), A(BreakerAction::close_breaker)},
    {S(BreakerState::half_open), E(BreakerEvent::failure), kNoGuard, true,
     S(BreakerState::open), A(BreakerAction::reopen_breaker)},
};

}  // namespace

const lifecycle::MachineDef& breaker_machine() {
  static const MachineDef def{
      "fed-breaker",
      kStates,
      S(BreakerState::closed),
      0u,  // no terminal state: a peer link lives as long as the federation
      kEvents,
      kGuards,
      kActions,
      kTransitions,
  };
  return def;
}

}  // namespace heus::fed
