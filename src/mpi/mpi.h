// A miniature MPI-flavoured message-passing layer over the simulated
// fabric.
//
// Why it exists in this reproduction: the paper's §II frames the entire
// problem around MPI jobs ("MPI frameworks do not encrypt data or
// authenticate peer ranks"), and §IV-D's coverage argument rests on how
// such frameworks actually start up — a TCP rendezvous that the UBF
// inspects. This layer reproduces that startup shape, so experiments can
// show (a) cross-user rank joins are impossible under the UBF, (b) the
// steady-state message path is untouched by it, and (c) what the
// rejected "Option 1" (encrypting all MPI traffic, [33] in the paper)
// would have cost instead.
//
// The API follows the MPI model (ranks, tags, collectives) without
// pretending to be the MPI standard; it is deliberately small.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "net/network.h"

namespace heus::mpi {

/// One participating process.
struct RankSpec {
  HostId host{};
  simos::Credentials cred;
  Pid pid{};
};

/// Latency/throughput model for "Option 1" style payload encryption, used
/// only by the ablation experiment: AES-NI-class ~2.5 GB/s per core plus
/// a per-message setup cost. (The paper's Option 2 adds nothing here.)
struct EncryptionModel {
  bool enabled = false;
  double bytes_per_ns = 2.5;          ///< ~2.5 GB/s
  std::int64_t per_message_ns = 800;  ///< IV/auth-tag handling
};

struct WorldStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::int64_t transport_ns = 0;   ///< simulated fabric time
  std::int64_t encryption_ns = 0;  ///< simulated crypto time (Option 1)
};

/// An established communicator: a fully-connected mesh of flows between
/// `size()` ranks. Created by `launch()`; all ranks share one World
/// object (the simulation is single-threaded, so "rank code" is ordinary
/// code passing explicit rank indices).
class World {
 public:
  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] const WorldStats& stats() const { return stats_; }
  [[nodiscard]] Uid rank_uid(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank)).cred.uid;
  }

  /// Point-to-point, tag-matched, FIFO-per-(src,dst,tag).
  Result<void> send(int src, int dst, int tag, std::string data);
  Result<std::string> recv(int dst, int src, int tag);

  /// Collectives, implemented over point-to-point exactly as a simple MPI
  /// would (fan-in/fan-out through `root`).
  Result<void> barrier();
  Result<std::string> bcast(int root, std::string data);
  /// Every rank contributes one double; all ranks receive the sum.
  Result<double> allreduce_sum(const std::vector<double>& contributions);
  /// Rank `root` receives all contributions, in rank order.
  Result<std::vector<std::string>> gather(int root,
                                          const std::vector<std::string>&
                                              contributions);

  /// Tear down all flows.
  void finalize(net::Network& network);

 private:
  friend class Launcher;

  struct PairKey {
    int src;
    int dst;
    friend auto operator<=>(const PairKey&, const PairKey&) = default;
  };

  std::vector<RankSpec> ranks_;
  std::map<PairKey, FlowId> flows_;  ///< key normalised to src<dst
  std::map<std::tuple<int, int, int>, std::vector<std::string>> pending_;
  net::Network* network_ = nullptr;
  EncryptionModel crypto_;
  WorldStats stats_;
};

/// How the ranks exchange queue-pair/endpoint info at startup (§IV-D).
enum class SetupPath {
  tcp_rendezvous,  ///< TCP mesh — inspected by the UBF
};

class Launcher {
 public:
  explicit Launcher(net::Network* network) : network_(network) {}

  /// Bring up a world: each rank listens on base_port+rank, then the mesh
  /// is connected (every pair once). Any connection the firewall drops
  /// aborts the launch — which is exactly how a cross-user rank infiltration
  /// fails on the paper's systems. Ports must be >= 1024.
  Result<World> launch(const std::vector<RankSpec>& ranks,
                       std::uint16_t base_port,
                       EncryptionModel crypto = {});

 private:
  net::Network* network_;
};

}  // namespace heus::mpi
