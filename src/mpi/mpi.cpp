#include "mpi/mpi.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace heus::mpi {

namespace {

/// Wire format: "<tag>:<payload>". Tags are small ints; payload is
/// opaque bytes (no ':' restriction — we split on the first one).
std::string frame(int tag, const std::string& data) {
  return std::to_string(tag) + ":" + data;
}

std::pair<int, std::string> unframe(const std::string& wire) {
  const std::size_t colon = wire.find(':');
  assert(colon != std::string::npos);
  return {std::stoi(wire.substr(0, colon)), wire.substr(colon + 1)};
}

}  // namespace

Result<World> Launcher::launch(const std::vector<RankSpec>& ranks,
                               std::uint16_t base_port,
                               EncryptionModel crypto) {
  if (ranks.size() < 2) return Errno::einval;
  if (base_port < 1024) return Errno::eacces;

  World world;
  world.ranks_ = ranks;
  world.network_ = network_;
  world.crypto_ = crypto;

  // Every rank opens its rendezvous listener...
  std::vector<std::uint16_t> ports(ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    ports[r] = static_cast<std::uint16_t>(base_port + r);
    auto listen = network_->listen(ranks[r].host, ranks[r].cred,
                                   ranks[r].pid, net::Proto::tcp,
                                   ports[r]);
    if (!listen) {
      world.finalize(*network_);
      return listen.error();
    }
  }
  // ...then the mesh connects: rank i dials every rank j > i. Each of
  // these is a *new connection* the firewall hook inspects.
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (std::size_t j = i + 1; j < ranks.size(); ++j) {
      auto flow =
          network_->connect(ranks[i].host, ranks[i].cred, ranks[i].pid,
                            ranks[j].host, net::Proto::tcp, ports[j]);
      if (!flow) {
        // One refused rendezvous kills the whole launch — a foreign rank
        // cannot join, and a world containing one cannot form.
        world.finalize(*network_);
        for (std::size_t r = 0; r < ranks.size(); ++r) {
          (void)network_->close_listener(ranks[r].host, net::Proto::tcp,
                                         ports[r]);
        }
        return flow.error();
      }
      world.flows_[{static_cast<int>(i), static_cast<int>(j)}] = *flow;
    }
  }
  // Rendezvous complete; the listeners' job is done.
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    (void)network_->close_listener(ranks[r].host, net::Proto::tcp,
                                   ports[r]);
  }
  return world;
}

Result<void> World::send(int src, int dst, int tag, std::string data) {
  if (src == dst || src < 0 || dst < 0 || src >= size() || dst >= size()) {
    return Errno::einval;
  }
  const bool forward = src < dst;
  auto it = flows_.find(forward ? PairKey{src, dst} : PairKey{dst, src});
  if (it == flows_.end()) return Errno::enotconn;

  if (crypto_.enabled) {
    // Option 1 strawman: every payload byte is encrypted+MAC'ed.
    const auto cost =
        crypto_.per_message_ns +
        static_cast<std::int64_t>(static_cast<double>(data.size()) /
                                  crypto_.bytes_per_ns);
    stats_.encryption_ns += cost;
  }

  stats_.bytes += data.size();
  ++stats_.messages;
  auto sent = network_->send(
      it->second, forward ? net::FlowEnd::client : net::FlowEnd::server,
      frame(tag, data));
  if (!sent) return sent;
  stats_.transport_ns += network_->last_send_cost_ns();
  return ok_result();
}

Result<std::string> World::recv(int dst, int src, int tag) {
  if (src == dst || src < 0 || dst < 0 || src >= size() || dst >= size()) {
    return Errno::einval;
  }
  // Tag-matched delivery: anything already set aside for this (src,dst,
  // tag) goes first.
  const auto key = std::make_tuple(src, dst, tag);
  if (auto it = pending_.find(key);
      it != pending_.end() && !it->second.empty()) {
    std::string out = std::move(it->second.front());
    it->second.erase(it->second.begin());
    return out;
  }
  const bool forward = src < dst;
  auto flow_it =
      flows_.find(forward ? PairKey{src, dst} : PairKey{dst, src});
  if (flow_it == flows_.end()) return Errno::enotconn;

  // Drain the wire until the wanted tag appears; stash mismatches.
  while (true) {
    auto wire = network_->recv(
        flow_it->second,
        forward ? net::FlowEnd::server : net::FlowEnd::client);
    if (!wire) return wire.error();  // EAGAIN: nothing outstanding
    auto [got_tag, payload] = unframe(*wire);
    if (got_tag == tag) return payload;
    pending_[std::make_tuple(src, dst, got_tag)].push_back(
        std::move(payload));
  }
}

Result<void> World::barrier() {
  // Linear fan-in to rank 0, then fan-out. (Tags 9990/9991 reserved.)
  for (int r = 1; r < size(); ++r) {
    if (auto s = send(r, 0, 9990, ""); !s) return s;
    if (auto got = recv(0, r, 9990); !got) return got.error();
  }
  for (int r = 1; r < size(); ++r) {
    if (auto s = send(0, r, 9991, ""); !s) return s;
    if (auto got = recv(r, 0, 9991); !got) return got.error();
  }
  return ok_result();
}

Result<std::string> World::bcast(int root, std::string data) {
  if (root < 0 || root >= size()) return Errno::einval;
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    if (auto s = send(root, r, 9992, data); !s) return s.error();
    if (auto got = recv(r, root, 9992); !got) return got.error();
  }
  return data;
}

Result<double> World::allreduce_sum(
    const std::vector<double>& contributions) {
  if (static_cast<int>(contributions.size()) != size()) {
    return Errno::einval;
  }
  double total = contributions[0];
  for (int r = 1; r < size(); ++r) {
    if (auto s = send(r, 0, 9993,
                      common::strformat("%.17g", contributions
                                                     [static_cast<
                                                         std::size_t>(r)]));
        !s) {
      return s.error();
    }
    auto got = recv(0, r, 9993);
    if (!got) return got.error();
    total += std::stod(*got);
  }
  auto result = bcast(0, common::strformat("%.17g", total));
  if (!result) return result.error();
  return std::stod(*result);
}

Result<std::vector<std::string>> World::gather(
    int root, const std::vector<std::string>& contributions) {
  if (root < 0 || root >= size()) return Errno::einval;
  if (static_cast<int>(contributions.size()) != size()) {
    return Errno::einval;
  }
  std::vector<std::string> out(contributions.size());
  out[static_cast<std::size_t>(root)] =
      contributions[static_cast<std::size_t>(root)];
  for (int r = 0; r < size(); ++r) {
    if (r == root) continue;
    if (auto s = send(r, root, 9994,
                      contributions[static_cast<std::size_t>(r)]);
        !s) {
      return s.error();
    }
    auto got = recv(root, r, 9994);
    if (!got) return got.error();
    out[static_cast<std::size_t>(r)] = std::move(*got);
  }
  return out;
}

void World::finalize(net::Network& network) {
  for (const auto& [key, flow] : flows_) {
    (void)network.close(flow);
  }
  flows_.clear();
  pending_.clear();
}

}  // namespace heus::mpi
