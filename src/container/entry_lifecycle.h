// Declarative lifecycle table for container entries.
//
// An "apptainer exec" request is *requested* until the runtime's entry
// gate decides: authorized (runtime enabled, and the user is root or
// explicitly granted) spawns the passthrough process, otherwise the
// request terminates denied. A running instance ends stopped when its
// process is reaped.
//
// Both guards here are environment guards: whether containers are
// enabled and who is granted are deployment facts, not
// SeparationPolicy knobs — the paper's §IV-G point is precisely that
// HPC containers add no policy surface, because credentials and every
// host separation mechanism pass through unchanged. Accordingly no
// transition in this table opens a channel: entry grants nothing the
// user did not already have, and the reachability checker verifies
// that claim stays true as the table evolves.
#pragma once

#include "lifecycle/machine.h"

namespace heus::container {

enum class EntryState : lifecycle::StateId {
  requested,  ///< exec() called, gate verdict pending
  running,    ///< passthrough process spawned
  denied,     ///< entry gate refused (terminal)
  stopped,    ///< process reaped (terminal)
};

enum class EntryEvent : lifecycle::EventId {
  exec,  ///< the entry gate renders its verdict
  stop,  ///< stop() reaps the instance
};

enum class EntryGuard : lifecycle::GuardId {
  entry_authorized,  ///< env: enabled && (root || granted)
};

enum class EntryAction : lifecycle::ActionId {
  spawn_passthrough,  ///< spawn with the caller's unmodified credentials
  record_denial,      ///< typed EPERM + container_entry deny decision
  reap,               ///< exit the pid, drop the instance
};

/// The shared container-entry table. One static instance; Runtime
/// drives it.
[[nodiscard]] const lifecycle::MachineDef& entry_machine();

}  // namespace heus::container
