#include "container/entry_lifecycle.h"

namespace heus::container {
namespace {

using lifecycle::Guard;
using lifecycle::GuardKind;
using lifecycle::kNoGuard;
using lifecycle::MachineDef;
using lifecycle::Transition;

constexpr const char* kStates[] = {
    "requested", "running", "denied", "stopped",
};
constexpr const char* kEvents[] = {"exec", "stop"};
constexpr const char* kActions[] = {
    "spawn-passthrough", "record-denial", "reap",
};

constexpr Guard kGuards[] = {
    {"entry-authorized", GuardKind::env, nullptr, nullptr},
};

constexpr auto S = [](EntryState s) {
  return static_cast<lifecycle::StateId>(s);
};
constexpr auto E = [](EntryEvent e) {
  return static_cast<lifecycle::EventId>(e);
};
constexpr auto G = [](EntryGuard g) {
  return static_cast<lifecycle::GuardId>(g);
};
constexpr auto A = [](EntryAction a) {
  return static_cast<lifecycle::ActionId>(a);
};

const Transition kTransitions[] = {
    {S(EntryState::requested), E(EntryEvent::exec),
     G(EntryGuard::entry_authorized), true, S(EntryState::running),
     A(EntryAction::spawn_passthrough)},
    {S(EntryState::requested), E(EntryEvent::exec),
     G(EntryGuard::entry_authorized), false, S(EntryState::denied),
     A(EntryAction::record_denial)},
    {S(EntryState::running), E(EntryEvent::stop), kNoGuard, true,
     S(EntryState::stopped), A(EntryAction::reap)},
};

}  // namespace

const lifecycle::MachineDef& entry_machine() {
  static const MachineDef def{
      "container-entry",
      kStates,
      S(EntryState::requested),
      (1u << S(EntryState::denied)) | (1u << S(EntryState::stopped)),
      kEvents,
      kGuards,
      kActions,
      kTransitions,
  };
  return def;
}

}  // namespace heus::container
