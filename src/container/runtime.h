// HPC container runtime (paper §IV-G), Apptainer/Singularity-style.
//
// HPC ("software encapsulation") containers differ from enterprise service
// containers in exactly the ways this model captures:
//  - No privilege escalation: the containerised process runs with the
//    invoking user's unmodified credentials. There is no root-inside-
//    container concept at all.
//  - Images are immutable and built OFF the cluster (users need admin
//    rights to build, which they do not have here); on-cluster they are
//    read-only files.
//  - Host passthrough: the host filesystems and network stack are passed
//    straight through, so every separation mechanism in this library
//    (smask, DAC, hidepid, UBF) applies unchanged inside the container.
//  - No USB/port/storage virtualisation — those features simply do not
//    exist, eliminating their configuration-dependent security surface.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

#include "common/ids.h"
#include "common/result.h"
#include "container/entry_lifecycle.h"
#include "obs/decision.h"
#include "simos/process.h"
#include "vfs/filesystem.h"

namespace heus::container {

struct ContainerIdTag {};
using ContainerId = StrongId<ContainerIdTag, std::uint64_t>;

/// An immutable software image: path -> content. Built off-cluster.
class Image {
 public:
  Image(std::string name, std::map<std::string, std::string> files)
      : name_(std::move(name)), files_(std::move(files)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool contains(const std::string& path) const {
    return files_.contains(path);
  }
  [[nodiscard]] const std::string* find(const std::string& path) const {
    auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::string> files_;
};

/// The filesystem a containerised process sees: image paths are read-only;
/// everything else passes through to the host mounts *with the caller's
/// own credentials*, so host DAC/smask decisions are identical inside and
/// outside the container.
class ContainerFsView {
 public:
  ContainerFsView(const Image* image, vfs::MountTable* host_mounts)
      : image_(image), host_(host_mounts) {}

  Result<std::string> read_file(const simos::Credentials& cred,
                                const std::string& path) const;
  Result<void> write_file(const simos::Credentials& cred,
                          const std::string& path, std::string data) const;
  Result<vfs::Stat> stat(const simos::Credentials& cred,
                         const std::string& path) const;
  Result<void> chmod(const simos::Credentials& cred, const std::string& path,
                     unsigned mode) const;

 private:
  const Image* image_;
  vfs::MountTable* host_;
};

/// A running container instance: one process, one FS view.
struct Instance {
  ContainerId id{};
  const Image* image = nullptr;
  Pid pid{};
  simos::Credentials cred;  ///< identical to the invoking user's
  ContainerFsView fs;
  /// Driven through the entry lifecycle table; tracked instances are
  /// always `running` (denied requests never materialise an Instance).
  EntryState state = EntryState::running;
};

struct RuntimeOptions {
  /// Whether users are permitted to run containers at all. LLSC enables
  /// Singularity per-user/per-team; the default here is enabled.
  bool enabled = true;
};

/// Tracks container images stored on the shared filesystem, to quantify
/// the §IV-G operational observation: "After a few years, there are just
/// a lot of old, unused containers littering the home directories and
/// shared group areas … Users do not remember why they are still keeping
/// them." Every registered image records who stored it, where, when it
/// was created, and when it was last executed.
class ImageRegistry {
 public:
  struct Entry {
    std::string path;          ///< where the .sif lives
    Uid owner{};
    common::SimTime created{};
    common::SimTime last_used{};
    std::uint64_t run_count = 0;
    bool clone_of_other = false;  ///< shared→copied→modified lineage
  };

  explicit ImageRegistry(const common::SimClock* clock) : clock_(clock) {}

  /// Record an image dropped onto the filesystem.
  void register_image(const std::string& path, Uid owner,
                      bool clone_of_other = false);
  /// Record an execution (updates last_used).
  void touch(const std::string& path);
  bool remove(const std::string& path);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Entry* find(const std::string& path) const;

  /// The sprawl census: images unused for longer than `max_idle_ns`.
  [[nodiscard]] std::vector<Entry> stale(std::int64_t max_idle_ns) const;
  /// Clone lineage count — the sharing/cloning proliferation §IV-G notes.
  [[nodiscard]] std::size_t clone_count() const;

 private:
  const common::SimClock* clock_;
  std::map<std::string, Entry> entries_;
};

/// The on-cluster runtime ("apptainer exec").
class Runtime {
 public:
  explicit Runtime(RuntimeOptions opts = {}) : opts_(opts) {}

  /// Route container-entry verdicts through the cluster decision trace.
  /// Null (the default) disables recording.
  void set_trace(obs::DecisionTrace* trace) { trace_ = trace; }

  /// Grant/revoke container privileges for a user (LLSC enables this
  /// selectively for teams that need it).
  void grant(Uid uid) { granted_.insert(uid); }
  void revoke(Uid uid) { granted_.erase(uid); }
  [[nodiscard]] bool is_granted(Uid uid) const {
    return granted_.contains(uid);
  }

  /// Launch `command` from `image` on a node. The process is spawned in
  /// the node's process table with the caller's own credentials — never
  /// elevated. EPERM when the user lacks container privileges.
  Result<ContainerId> exec(const simos::Credentials& cred, const Image* image,
                           const std::string& command,
                           simos::ProcessTable* procs,
                           vfs::MountTable* host_mounts);

  Result<void> stop(ContainerId id, simos::ProcessTable* procs);
  [[nodiscard]] const Instance* find(ContainerId id) const;
  [[nodiscard]] std::size_t running_count() const {
    return instances_.size();
  }

  /// The table driver behind every entry state change: per-transition
  /// fire counts and illegal-event tally, for tests and diagnostics.
  [[nodiscard]] const lifecycle::Driver& entry_lifecycle() const {
    return entry_lc_;
  }

 private:
  RuntimeOptions opts_;
  obs::DecisionTrace* trace_ = nullptr;
  lifecycle::Driver entry_lc_{&entry_machine()};
  std::set<Uid> granted_;
  std::map<ContainerId, Instance> instances_;
  std::uint64_t next_id_ = 1;
};

}  // namespace heus::container
