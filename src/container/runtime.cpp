#include "container/runtime.h"

namespace heus::container {

Result<std::string> ContainerFsView::read_file(
    const simos::Credentials& cred, const std::string& path) const {
  if (const std::string* content = image_->find(path)) return *content;
  vfs::FileSystem* fs = host_->lookup(path);
  if (fs == nullptr) return Errno::enoent;
  return fs->read_file(cred, path);
}

Result<void> ContainerFsView::write_file(const simos::Credentials& cred,
                                         const std::string& path,
                                         std::string data) const {
  if (image_->contains(path)) return Errno::erofs;  // immutable image
  vfs::FileSystem* fs = host_->lookup(path);
  if (fs == nullptr) return Errno::enoent;
  return fs->write_file(cred, path, std::move(data));
}

Result<vfs::Stat> ContainerFsView::stat(const simos::Credentials& cred,
                                        const std::string& path) const {
  if (const std::string* content = image_->find(path)) {
    vfs::Stat st;
    st.kind = vfs::FileKind::regular;
    st.mode = 0555;  // image content: world-readable, immutable
    st.size = content->size();
    return st;
  }
  vfs::FileSystem* fs = host_->lookup(path);
  if (fs == nullptr) return Errno::enoent;
  return fs->stat(cred, path);
}

Result<void> ContainerFsView::chmod(const simos::Credentials& cred,
                                    const std::string& path,
                                    unsigned mode) const {
  if (image_->contains(path)) return Errno::erofs;
  vfs::FileSystem* fs = host_->lookup(path);
  if (fs == nullptr) return Errno::enoent;
  // Passthrough: host smask semantics apply unchanged inside containers.
  return fs->chmod(cred, path, mode);
}

void ImageRegistry::register_image(const std::string& path, Uid owner,
                                   bool clone_of_other) {
  Entry entry;
  entry.path = path;
  entry.owner = owner;
  entry.created = clock_->now();
  entry.last_used = clock_->now();
  entry.clone_of_other = clone_of_other;
  entries_[path] = std::move(entry);
}

void ImageRegistry::touch(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return;
  it->second.last_used = clock_->now();
  ++it->second.run_count;
}

bool ImageRegistry::remove(const std::string& path) {
  return entries_.erase(path) > 0;
}

const ImageRegistry::Entry* ImageRegistry::find(
    const std::string& path) const {
  auto it = entries_.find(path);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<ImageRegistry::Entry> ImageRegistry::stale(
    std::int64_t max_idle_ns) const {
  std::vector<Entry> out;
  const auto now = clock_->now();
  for (const auto& [path, entry] : entries_) {
    if (now.ns - entry.last_used.ns > max_idle_ns) out.push_back(entry);
  }
  return out;
}

std::size_t ImageRegistry::clone_count() const {
  std::size_t count = 0;
  for (const auto& [path, entry] : entries_) {
    if (entry.clone_of_other) ++count;
  }
  return count;
}

Result<ContainerId> Runtime::exec(const simos::Credentials& cred,
                                  const Image* image,
                                  const std::string& command,
                                  simos::ProcessTable* procs,
                                  vfs::MountTable* host_mounts) {
  const bool allowed =
      opts_.enabled && (cred.is_root() || granted_.contains(cred.uid));
  // The entry gate's verdict through the table: requested -> running on
  // an authorized exec, requested -> denied otherwise (terminal; denied
  // requests never materialise an Instance).
  lifecycle::StateId entry_state =
      static_cast<lifecycle::StateId>(EntryState::requested);
  entry_lc_.fire(entry_state,
                 static_cast<lifecycle::EventId>(EntryEvent::exec),
                 [allowed](const lifecycle::Guard&) { return allowed; },
                 cred.uid, cred.egid, kRootUid);
  if (trace_ != nullptr && !cred.is_root()) {
    trace_->record(obs::DecisionPoint::container_entry,
                   allowed ? obs::Outcome::allow : obs::Outcome::deny,
                   cred.uid, cred.egid, kRootUid, std::nullopt, nullptr,
                   [&] {
                     return image != nullptr ? image->name()
                                             : std::string{"<no image>"};
                   });
  }
  if (!allowed) return Errno::eperm;
  if (image == nullptr || procs == nullptr || host_mounts == nullptr) {
    return Errno::einval;
  }

  simos::SpawnOptions spawn;
  spawn.in_container = true;
  // The decisive line: credentials pass through unmodified. A container
  // never grants what the user did not already have.
  const Pid pid = procs->spawn(
      cred, "apptainer exec " + image->name() + " " + command, spawn);

  const ContainerId id{next_id_++};
  instances_.emplace(
      id, Instance{id, image, pid, cred, ContainerFsView{image, host_mounts},
                   static_cast<EntryState>(entry_state)});
  return id;
}

Result<void> Runtime::stop(ContainerId id, simos::ProcessTable* procs) {
  auto it = instances_.find(id);
  if (it == instances_.end()) return Errno::enoent;
  Instance& instance = it->second;
  lifecycle::StateId s = static_cast<lifecycle::StateId>(instance.state);
  entry_lc_.fire(s, static_cast<lifecycle::EventId>(EntryEvent::stop),
                 [](const lifecycle::Guard&) { return false; },
                 instance.cred.uid, instance.cred.egid, instance.cred.uid);
  instance.state = static_cast<EntryState>(s);
  (void)procs->exit(instance.pid);
  instances_.erase(it);
  return ok_result();
}

const Instance* Runtime::find(ContainerId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

}  // namespace heus::container
