// Data-transfer-node (DTN) staging service.
//
// The paper lists data transfer nodes among the multi-user machines that
// keep needing hidepid even under whole-node scheduling (§IV-B). This
// module models the service those nodes exist for: staging datasets
// between external storage and the cluster filesystems. The separation
// property that matters is that a transfer executes *as the requesting
// user* — the landed file is written through the VFS with the user's own
// credentials, so every §IV-C control (DAC, smask, quotas) applies to
// staged data exactly as to locally-created data, and one user cannot
// stage into (or out of) another user's directories.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "simos/credentials.h"
#include "vfs/filesystem.h"
#include "xfer/transfer_lifecycle.h"

namespace heus::xfer {

struct TransferIdTag {};
using TransferId = StrongId<TransferIdTag, std::uint64_t>;

enum class Direction { stage_in, stage_out };

struct Transfer {
  TransferId id{};
  Uid user{};
  Direction direction = Direction::stage_in;
  std::string remote_path;
  std::string local_path;
  std::uint64_t bytes = 0;
  TransferState state = TransferState::queued;
  Errno error = Errno::ok;
  unsigned attempts = 0;  ///< filesystem attempts made (1 = first try)
  common::SimTime submitted{};
  common::SimTime finished{};
};

/// A simulated external endpoint (campus storage, archive, …): a flat
/// remote namespace owned per user — remote credentials are out of scope,
/// only the *cluster-side* write/read rights are under test here.
class ExternalStore {
 public:
  void put(const std::string& path, std::string data) {
    objects_[path] = std::move(data);
  }
  [[nodiscard]] const std::string* get(const std::string& path) const {
    auto it = objects_.find(path);
    return it == objects_.end() ? nullptr : &it->second;
  }
  /// Remove an object. Staging buffers (the federation's WAN link uses
  /// one) must drain after a completed transfer, so a later transfer
  /// with a guessable key can never read another tenant's bytes.
  bool erase(const std::string& path) { return objects_.erase(path) > 0; }
  [[nodiscard]] std::size_t size() const { return objects_.size(); }

 private:
  std::map<std::string, std::string> objects_;
};

struct StagingStats {
  std::uint64_t transfers_done = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t bytes_moved = 0;
  std::uint64_t retries = 0;          ///< transient-error retries attempted
  std::uint64_t retry_successes = 0;  ///< retries whose FS op succeeded
};

/// The DTN daemon: a FIFO of transfers drained at WAN bandwidth, each
/// executed with the submitting user's credentials against the cluster
/// filesystem.
class StagingService {
 public:
  /// `wan_bytes_per_ns`: ~1.25 bytes/ns = 10 Gb/s, a typical DTN uplink.
  StagingService(vfs::FileSystem* fs, ExternalStore* store,
                 common::SimClock* clock, double wan_bytes_per_ns = 1.25)
      : fs_(fs), store_(store), clock_(clock),
        wan_bytes_per_ns_(wan_bytes_per_ns) {}

  /// Enqueue a transfer. Access rights are checked at *execution* time
  /// (like a real unattended transfer), so a queued stage-in into a
  /// foreign directory fails rather than leaking.
  Result<TransferId> submit(const simos::Credentials& cred,
                            Direction direction,
                            const std::string& remote_path,
                            const std::string& local_path);

  /// Drain the queue, charging simulated WAN time per byte. Returns the
  /// number of transfers processed.
  std::size_t process_all();

  [[nodiscard]] const Transfer* find(TransferId id) const;
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] const StagingStats& stats() const { return stats_; }

  /// Bounded retry with exponential backoff around the filesystem side of
  /// a transfer, for transient faults (a flapping shared-FS mount: EIO,
  /// EAGAIN, ETIMEDOUT). Permission/namespace errors are deterministic
  /// and never retried. Backoff is charged to the simulated clock.
  void set_retry(common::BackoffPolicy policy) { retry_ = policy; }

  /// The table driver behind every Transfer::state change: per-transition
  /// fire counts and illegal-event tally, for tests and diagnostics.
  [[nodiscard]] const lifecycle::Driver& transfer_lifecycle() const {
    return xfer_lc_;
  }

 private:
  void execute(Transfer& transfer);
  /// Route one lifecycle event through the transfer table. `retries_left`
  /// answers the only guard (consulted on transient faults). Returns the
  /// fired transition (nullptr = illegal event; state untouched).
  const lifecycle::Transition* fire(Transfer& transfer, TransferEvent event,
                                    bool retries_left);

  [[nodiscard]] static bool transient(Errno e) {
    return e == Errno::eio || e == Errno::eagain || e == Errno::etimedout;
  }

  vfs::FileSystem* fs_;
  ExternalStore* store_;
  common::SimClock* clock_;
  double wan_bytes_per_ns_;
  common::BackoffPolicy retry_ = common::BackoffPolicy::none();
  lifecycle::Driver xfer_lc_{&transfer_machine()};
  std::deque<TransferId> queue_;
  std::map<TransferId, Transfer> transfers_;
  std::map<TransferId, simos::Credentials> creds_;
  StagingStats stats_;
  std::uint64_t next_id_ = 1;
};

}  // namespace heus::xfer
