#include "xfer/staging.h"

namespace heus::xfer {

Result<TransferId> StagingService::submit(const simos::Credentials& cred,
                                          Direction direction,
                                          const std::string& remote_path,
                                          const std::string& local_path) {
  if (remote_path.empty() || local_path.empty() ||
      local_path.front() != '/') {
    return Errno::einval;
  }
  const TransferId id{next_id_++};
  Transfer transfer;
  transfer.id = id;
  transfer.user = cred.uid;
  transfer.direction = direction;
  transfer.remote_path = remote_path;
  transfer.local_path = local_path;
  transfer.submitted = clock_->now();
  transfers_.emplace(id, std::move(transfer));
  creds_.emplace(id, cred);
  queue_.push_back(id);
  return id;
}

const lifecycle::Transition* StagingService::fire(Transfer& transfer,
                                                  TransferEvent event,
                                                  bool retries_left) {
  lifecycle::StateId s = static_cast<lifecycle::StateId>(transfer.state);
  const lifecycle::Transition* t = xfer_lc_.fire(
      s, static_cast<lifecycle::EventId>(event),
      [retries_left](const lifecycle::Guard&) { return retries_left; },
      transfer.user, Gid{}, transfer.user);
  transfer.state = static_cast<TransferState>(s);
  return t;
}

void StagingService::execute(Transfer& transfer) {
  const simos::Credentials& cred = creds_.at(transfer.id);
  fire(transfer, TransferEvent::dequeue, /*retries_left=*/false);
  auto fail = [&](Errno e) {
    // The table picks failed via the exhausted-transient or the
    // permanent-error row; both carry the surface-error action.
    fire(transfer,
         transient(e) ? TransferEvent::fs_error_transient
                      : TransferEvent::fs_error_permanent,
         /*retries_left=*/false);
    transfer.error = e;
    ++stats_.transfers_failed;
  };

  // Retry only transient FS faults (flapping mount), with backoff charged
  // to simulated time. EACCES/ENOENT and friends are deterministic — the
  // transfer surfaces them immediately as a typed error. Each transient
  // fault with retry budget left parks the transfer in retry-wait until
  // the backoff delay has been charged to the clock.
  auto with_retry = [&](auto op) {
    auto r = op();
    ++transfer.attempts;
    for (unsigned attempt = 0;
         !r && transient(r.error()) && attempt < retry_.max_retries;
         ++attempt) {
      fire(transfer, TransferEvent::fs_error_transient,
           /*retries_left=*/true);
      clock_->advance(retry_.delay_ns(attempt));
      ++stats_.retries;
      ++transfer.attempts;
      fire(transfer, TransferEvent::backoff_elapsed,
           /*retries_left=*/false);
      r = op();
      if (r) ++stats_.retry_successes;
    }
    return r;
  };

  if (transfer.direction == Direction::stage_in) {
    const std::string* object = store_->get(transfer.remote_path);
    if (object == nullptr) {
      fail(Errno::enoent);
      return;
    }
    // The write runs with the USER's credentials: landing the file in a
    // foreign directory fails on ordinary DAC, and the landed file obeys
    // smask/quota like any other file the user creates.
    auto written = with_retry(
        [&] { return fs_->write_file(cred, transfer.local_path, *object); });
    if (!written) {
      fail(written.error());
      return;
    }
    transfer.bytes = object->size();
  } else {
    auto content = with_retry(
        [&] { return fs_->read_file(cred, transfer.local_path); });
    if (!content) {
      fail(content.error());
      return;
    }
    store_->put(transfer.remote_path, *content);
    transfer.bytes = content->size();
  }

  fire(transfer, TransferEvent::fs_ok, /*retries_left=*/false);
  clock_->advance(static_cast<std::int64_t>(
      static_cast<double>(transfer.bytes) / wan_bytes_per_ns_));
  transfer.finished = clock_->now();
  ++stats_.transfers_done;
  stats_.bytes_moved += transfer.bytes;
}

std::size_t StagingService::process_all() {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    const TransferId id = queue_.front();
    queue_.pop_front();
    execute(transfers_.at(id));
    ++processed;
  }
  return processed;
}

const Transfer* StagingService::find(TransferId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? nullptr : &it->second;
}

}  // namespace heus::xfer
