// Declarative lifecycle table for DTN transfers.
//
// Makes the staging retry loop explicit: a transfer is *executing*
// while its filesystem half runs, parks in *retry-wait* while backoff
// for a transient fault (flapping mount) is charged to the simulated
// clock, and ends done or failed. Permission/namespace errors are
// deterministic and go straight to failed — retrying them would just
// re-ask DAC. The state ids extend the original TransferState enum
// in place (queued/done/failed keep their values; the digest test
// tests/xfer/xfer_digest_test.cpp pins that encoding), so the two new
// states are appended after the terminals.
//
// No policy guard: separation for staged data is enforced by the VFS
// at execution time (the transfer runs with the submitting user's own
// credentials), not by a transfer-level knob. Both guards here are
// environment guards and the reachability checker explores both
// outcomes of each.
#pragma once

#include "lifecycle/machine.h"

namespace heus::xfer {

/// Transfer lifecycle states. `executing` and `retry_wait` are appended
/// after the original trio so the raw values folded by the transfer
/// digest (queued=0, done=1, failed=2) stay stable.
enum class TransferState : lifecycle::StateId {
  queued = 0,
  done = 1,
  failed = 2,
  executing = 3,
  retry_wait = 4,
};

enum class TransferEvent : lifecycle::EventId {
  dequeue,             ///< FIFO head reached the DTN daemon
  fs_ok,               ///< filesystem half succeeded
  fs_error_transient,  ///< EIO/EAGAIN/ETIMEDOUT (flapping mount)
  fs_error_permanent,  ///< deterministic error (EACCES, ENOENT, quota)
  backoff_elapsed,     ///< retry delay fully charged to the clock
};

enum class TransferGuard : lifecycle::GuardId {
  retries_left,  ///< env: attempts below the BackoffPolicy bound
};

enum class TransferAction : lifecycle::ActionId {
  run_as_user,    ///< execute the FS half with the submitter's creds
  charge_wan,     ///< bill WAN seconds per byte, stamp finished
  backoff,        ///< charge the exponential delay to the clock
  surface_error,  ///< record the typed errno, stamp failed
};

/// The shared transfer table. One static instance; StagingService
/// drives it. State ids are TransferState values.
[[nodiscard]] const lifecycle::MachineDef& transfer_machine();

}  // namespace heus::xfer
