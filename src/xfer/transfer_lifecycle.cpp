#include "xfer/transfer_lifecycle.h"

namespace heus::xfer {
namespace {

using lifecycle::Guard;
using lifecycle::GuardKind;
using lifecycle::kNoGuard;
using lifecycle::MachineDef;
using lifecycle::Transition;

constexpr const char* kStates[] = {
    "queued", "done", "failed", "executing", "retry-wait",
};
constexpr const char* kEvents[] = {
    "dequeue", "fs-ok", "fs-error-transient", "fs-error-permanent",
    "backoff-elapsed",
};
constexpr const char* kActions[] = {
    "run-as-user", "charge-wan", "backoff", "surface-error",
};

constexpr Guard kGuards[] = {
    {"retries-left", GuardKind::env, nullptr, nullptr},
};

constexpr auto S = [](TransferState s) {
  return static_cast<lifecycle::StateId>(s);
};
constexpr auto E = [](TransferEvent e) {
  return static_cast<lifecycle::EventId>(e);
};
constexpr auto G = [](TransferGuard g) {
  return static_cast<lifecycle::GuardId>(g);
};
constexpr auto A = [](TransferAction a) {
  return static_cast<lifecycle::ActionId>(a);
};

const Transition kTransitions[] = {
    {S(TransferState::queued), E(TransferEvent::dequeue), kNoGuard, true,
     S(TransferState::executing), A(TransferAction::run_as_user)},
    {S(TransferState::executing), E(TransferEvent::fs_ok), kNoGuard, true,
     S(TransferState::done), A(TransferAction::charge_wan)},
    {S(TransferState::executing), E(TransferEvent::fs_error_permanent),
     kNoGuard, true, S(TransferState::failed),
     A(TransferAction::surface_error)},
    {S(TransferState::executing), E(TransferEvent::fs_error_transient),
     G(TransferGuard::retries_left), true, S(TransferState::retry_wait),
     A(TransferAction::backoff)},
    {S(TransferState::executing), E(TransferEvent::fs_error_transient),
     G(TransferGuard::retries_left), false, S(TransferState::failed),
     A(TransferAction::surface_error)},
    {S(TransferState::retry_wait), E(TransferEvent::backoff_elapsed),
     kNoGuard, true, S(TransferState::executing),
     A(TransferAction::run_as_user)},
};

}  // namespace

const lifecycle::MachineDef& transfer_machine() {
  static const MachineDef def{
      "transfer",
      kStates,
      S(TransferState::queued),
      (1u << S(TransferState::done)) | (1u << S(TransferState::failed)),
      kEvents,
      kGuards,
      kActions,
      kTransitions,
  };
  return def;
}

}  // namespace heus::xfer
