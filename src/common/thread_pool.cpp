#include "common/thread_pool.h"

namespace heus::common {

WorkerPool::WorkerPool(unsigned workers) {
  const unsigned n = workers == 0 ? 1 : workers;
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  queue_.shutdown();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
  }
  if (!queue_.push(std::move(task))) {
    // Shut down: the task will never run; undo the in-flight claim so
    // wait_idle() cannot deadlock.
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    ++failed_;
  }
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::uint64_t WorkerPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

std::uint64_t WorkerPool::failed_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void WorkerPool::worker_loop() {
  while (auto task = queue_.pop_blocking()) {
    bool ok = true;
    try {
      (*task)();
    } catch (...) {
      ok = false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++executed_;
    if (!ok) ++failed_;
    if (--in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace heus::common
