// Minimal leveled logger.
//
// The simulation itself is silent by default; logging exists for example
// programs and for debugging experiment harnesses. Output goes to stderr.
#pragma once

#include <sstream>
#include <string>

namespace heus::common {

enum class LogLevel { debug = 0, info, warn, error, off };

/// Process-wide log threshold. Defaults to `warn` so tests/benches stay
/// quiet; examples raise it to `info`.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: HEUS_LOG(info) << "job " << id << " started";
#define HEUS_LOG(level_)                                               \
  if (::heus::common::log_level() <=                                   \
      ::heus::common::LogLevel::level_)                                \
  ::heus::common::detail::LogLine(::heus::common::LogLevel::level_)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace heus::common
