// Cache-friendly replacements for the node-based standard containers on
// the per-decision hot path (DESIGN.md §8):
//
//  - FlatMap / FlatSet: open-addressing hash index over a dense entry
//    vector.  Deletion is tombstone-free (Knuth 6.4R backward shift in the
//    index, swap-with-last in the dense array), so lookup cost never
//    degrades with churn and iteration touches one contiguous array.
//    Iteration order is a pure deterministic function of the operation
//    sequence (insertions and erasures), never of hash-table internals —
//    the property any container feeding a digest must have.
//  - OrderedSet / OrderedMap: sorted dense vectors for small keyed sets
//    that must iterate in key order (scheduler candidate sets, per-node
//    task tables).  A placement scan becomes a linear sweep instead of
//    red-black-tree pointer hops.
//
// None of these synchronise; each instance belongs to one shard.
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

namespace heus::common {

// Deterministic 64-bit mixer (splitmix64 finalizer).  Used instead of
// std::hash for integer keys so sequential ids spread over the table and
// behaviour is identical across standard libraries.
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t fnv1a_bytes(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Transparent default hasher: integers, strong ids (anything exposing
// .value()), and string-ish keys, all without materialising temporaries.
struct FlatHash {
  using is_transparent = void;

  template <std::integral T>
  std::uint64_t operator()(T v) const {
    return hash_mix(static_cast<std::uint64_t>(v));
  }
  template <typename T>
    requires requires(const T& t) {
      { t.value() } -> std::integral;
    }
  std::uint64_t operator()(const T& t) const {
    return hash_mix(static_cast<std::uint64_t>(t.value()));
  }
  std::uint64_t operator()(std::string_view s) const { return fnv1a_bytes(s); }
};

template <typename K, typename V, typename Hash = FlatHash,
          typename Eq = std::equal_to<>>
class FlatMap {
 public:
  struct Entry {
    K key;
    V value;
  };
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  FlatMap() = default;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  void clear() {
    entries_.clear();
    slots_.clear();
    mask_ = 0;
  }

  void reserve(std::size_t n) {
    entries_.reserve(n);
    if (slot_count_for(n) > mask_ + 1) rehash(slot_count_for(n));
  }

  template <typename Q>
  V* find(const Q& key) {
    const std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &entries_[slots_[i].pos()].value;
  }
  template <typename Q>
  const V* find(const Q& key) const {
    const std::size_t i = find_slot(key);
    return i == kNoSlot ? nullptr : &entries_[slots_[i].pos()].value;
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return find_slot(key) != kNoSlot;
  }
  template <typename Q>
  std::size_t count(const Q& key) const {
    return contains(key) ? 1 : 0;
  }

  V& operator[](const K& key) {
    if (V* v = find(key)) return *v;
    return emplace_new(key, V{});
  }

  // Returns {pointer to value, inserted?}.
  template <typename VV>
  std::pair<V*, bool> insert_or_assign(const K& key, VV&& value) {
    if (V* v = find(key)) {
      *v = std::forward<VV>(value);
      return {v, false};
    }
    return {&emplace_new(key, V(std::forward<VV>(value))), true};
  }

  template <typename VV>
  std::pair<V*, bool> emplace(const K& key, VV&& value) {
    if (V* v = find(key)) return {v, false};
    return {&emplace_new(key, V(std::forward<VV>(value))), true};
  }

  template <typename Q>
  std::size_t erase(const Q& key) {
    const std::size_t i = find_slot(key);
    if (i == kNoSlot) return 0;
    erase_at_slot(i);
    return 1;
  }

 private:
  // Index slot: dense position + 1 (0 = empty) and a 32-bit hash cache
  // used both to skip key comparisons and to recover the home slot during
  // backward-shift deletion.
  struct Slot {
    std::uint32_t pos_plus_one = 0;
    std::uint32_t hash32 = 0;
    bool occupied() const { return pos_plus_one != 0; }
    std::size_t pos() const { return pos_plus_one - 1; }
  };
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  static std::size_t slot_count_for(std::size_t n) {
    std::size_t slots = 8;
    while (slots * 3 < n * 4 + 4) slots <<= 1;  // load factor <= 0.75
    return slots;
  }

  template <typename Q>
  std::size_t find_slot(const Q& key) const {
    if (slots_.empty()) return kNoSlot;
    const std::uint64_t h = Hash{}(key);
    const auto h32 = static_cast<std::uint32_t>(h);
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (!s.occupied()) return kNoSlot;
      if (s.hash32 == h32 && Eq{}(entries_[s.pos()].key, key)) return i;
      i = (i + 1) & mask_;
    }
  }

  V& emplace_new(const K& key, V value) {
    if (slots_.empty() || slot_count_for(entries_.size() + 1) > mask_ + 1) {
      rehash(slot_count_for(entries_.size() + 1));
    }
    entries_.push_back(Entry{key, std::move(value)});
    place(Hash{}(key), static_cast<std::uint32_t>(entries_.size() - 1));
    return entries_.back().value;
  }

  void place(std::uint64_t h, std::uint32_t pos) {
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (slots_[i].occupied()) i = (i + 1) & mask_;
    slots_[i].pos_plus_one = pos + 1;
    slots_[i].hash32 = static_cast<std::uint32_t>(h);
  }

  void erase_at_slot(std::size_t slot) {
    const std::size_t dead_pos = slots_[slot].pos();
    backward_shift(slot);
    const std::size_t last = entries_.size() - 1;
    if (dead_pos != last) {
      entries_[dead_pos] = std::move(entries_[last]);
      // Repoint the moved entry's index slot at its new dense position.
      const std::uint64_t h = Hash{}(entries_[dead_pos].key);
      std::size_t i = static_cast<std::size_t>(h) & mask_;
      while (slots_[i].pos_plus_one != last + 1 ||
             slots_[i].hash32 != static_cast<std::uint32_t>(h)) {
        assert(slots_[i].occupied());
        i = (i + 1) & mask_;
      }
      slots_[i].pos_plus_one = static_cast<std::uint32_t>(dead_pos) + 1;
    }
    entries_.pop_back();
  }

  // Knuth 6.4 Algorithm R: close the hole without tombstones by walking
  // the cluster and pulling back any entry whose home slot lies at or
  // before the hole.
  void backward_shift(std::size_t hole) {
    std::size_t j = hole;
    while (true) {
      j = (j + 1) & mask_;
      if (!slots_[j].occupied()) break;
      const std::size_t home = slots_[j].hash32 & mask_;
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
  }

  void rehash(std::size_t slot_count) {
    slots_.assign(slot_count, Slot{});
    mask_ = slot_count - 1;
    for (std::size_t pos = 0; pos < entries_.size(); ++pos) {
      place(Hash{}(entries_[pos].key), static_cast<std::uint32_t>(pos));
    }
  }

  std::vector<Entry> entries_;  // dense, deterministic order
  std::vector<Slot> slots_;     // open-addressing index, size = mask_+1
  std::size_t mask_ = 0;
};

template <typename K, typename Hash = FlatHash, typename Eq = std::equal_to<>>
class FlatSet {
 public:
  using const_iterator = typename std::vector<K>::const_iterator;

  bool empty() const { return keys_.empty(); }
  std::size_t size() const { return keys_.size(); }
  const_iterator begin() const { return keys_.begin(); }
  const_iterator end() const { return keys_.end(); }
  void clear() { index_.clear(); keys_.clear(); }
  void reserve(std::size_t n) { index_.reserve(n); keys_.reserve(n); }

  template <typename Q>
  bool contains(const Q& key) const {
    return index_.contains(key);
  }
  template <typename Q>
  std::size_t count(const Q& key) const {
    return index_.count(key);
  }

  bool insert(const K& key) {
    auto [pos, inserted] =
        index_.emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (inserted) keys_.push_back(key);
    return inserted;
  }

  template <typename Q>
  std::size_t erase(const Q& key) {
    const std::uint32_t* pos = index_.find(key);
    if (pos == nullptr) return 0;
    const std::uint32_t dead = *pos;
    const std::uint32_t last = static_cast<std::uint32_t>(keys_.size()) - 1;
    index_.erase(key);
    if (dead != last) {
      keys_[dead] = std::move(keys_[last]);
      *index_.find(keys_[dead]) = dead;
    }
    keys_.pop_back();
    return 1;
  }

 private:
  FlatMap<K, std::uint32_t, Hash, Eq> index_;
  std::vector<K> keys_;  // dense, deterministic order
};

// Sorted dense vector behaving like std::set for small hot sets that are
// iterated in key order (candidate-node scans).  Insert/erase are O(n)
// memmove over contiguous memory — far cheaper than a node allocation at
// the sizes involved — and iteration is a linear sweep.
template <typename T, typename Compare = std::less<>>
class OrderedSet {
 public:
  using const_iterator = typename std::vector<T>::const_iterator;

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }
  void clear() { v_.clear(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  template <typename Q>
  const_iterator lower_bound(const Q& key) const {
    return std::lower_bound(v_.begin(), v_.end(), key, Compare{});
  }
  template <typename Q>
  const_iterator find(const Q& key) const {
    auto it = lower_bound(key);
    if (it != v_.end() && !Compare{}(key, *it)) return it;
    return v_.end();
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return find(key) != v_.end();
  }
  template <typename Q>
  std::size_t count(const Q& key) const {
    return contains(key) ? 1 : 0;
  }

  bool insert(const T& value) {
    auto it = std::lower_bound(v_.begin(), v_.end(), value, Compare{});
    if (it != v_.end() && !Compare{}(value, *it)) return false;
    v_.insert(it, value);
    return true;
  }

  template <typename Q>
  std::size_t erase(const Q& key) {
    auto it = find(key);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  std::vector<T> v_;
};

// Sorted dense vector of (key, value) pairs; iterates in key order.
template <typename K, typename V, typename Compare = std::less<>>
class OrderedMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = typename std::vector<value_type>::iterator;

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }
  void clear() { v_.clear(); }

  template <typename Q>
  iterator find(const Q& key) {
    auto it = lower_bound(key);
    if (it != v_.end() && !Compare{}(key, it->first)) return it;
    return v_.end();
  }
  template <typename Q>
  const_iterator find(const Q& key) const {
    auto it = lower_bound(key);
    if (it != v_.end() && !Compare{}(key, it->first)) return it;
    return v_.end();
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return find(key) != v_.end();
  }
  template <typename Q>
  std::size_t count(const Q& key) const {
    return contains(key) ? 1 : 0;
  }

  V& operator[](const K& key) {
    auto it = lower_bound(key);
    if (it != v_.end() && !Compare{}(key, it->first)) return it->second;
    return v_.insert(it, value_type{key, V{}})->second;
  }

  template <typename Q>
  std::size_t erase(const Q& key) {
    auto it = find(key);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  template <typename Q>
  iterator lower_bound(const Q& key) {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& e, const Q& k) { return Compare{}(e.first, k); });
  }
  template <typename Q>
  const_iterator lower_bound(const Q& key) const {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& e, const Q& k) { return Compare{}(e.first, k); });
  }

  std::vector<value_type> v_;
};

}  // namespace heus::common
