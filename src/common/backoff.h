// Deadline and bounded-retry/backoff helpers for degraded-mode paths.
//
// Several consumers (the UBF's ident query, portal forwarding, DTN
// staging) share the same recovery shape when a dependency misbehaves:
// retry a bounded number of times with exponential backoff, charging the
// waiting time to the simulated clock, then fail closed. This header is
// that policy, expressed once so the per-subsystem knobs stay comparable
// and the experiment sweeps (E18) can vary them uniformly.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/clock.h"

namespace heus::common {

/// Bounded exponential backoff: attempt k (0-based) waits
/// min(base_ns * factor^k, max_ns) before the next try. `max_retries`
/// counts *re*-tries, so an operation runs at most 1 + max_retries times.
struct BackoffPolicy {
  unsigned max_retries = 3;
  std::int64_t base_ns = 1 * kMillisecond;
  double factor = 2.0;
  std::int64_t max_ns = 100 * kMillisecond;

  /// Saturating: once base_ns * factor^attempt would pass max_ns the
  /// result is exactly max_ns, for every larger attempt — no double→int64
  /// overflow, no O(attempt) multiply loop. The exponent at which the
  /// delay saturates is computed in closed form and attempts past it
  /// never touch pow() at all, so attempt counts in the millions cost
  /// the same as attempt 0.
  [[nodiscard]] std::int64_t delay_ns(unsigned attempt) const {
    if (base_ns <= 0) return max_ns < 0 ? max_ns : 0;
    if (base_ns >= max_ns) return max_ns;
    if (factor <= 1.0) {
      if (factor == 1.0 || attempt == 0) return base_ns;
      // Shrinking schedule: pow underflows toward zero, never overflows.
      return static_cast<std::int64_t>(static_cast<double>(base_ns) *
                                       std::pow(factor, attempt));
    }
    // Saturation exponent: the smallest k with base * factor^k >= max.
    // Attempts at or past it answer max_ns without exponentiating, so
    // the double→int64 cast below is only reached for values provably
    // inside [base_ns, max_ns) — no overflow for any attempt count.
    const double saturation = std::log(static_cast<double>(max_ns) /
                                       static_cast<double>(base_ns)) /
                              std::log(factor);
    if (static_cast<double>(attempt) >= saturation) return max_ns;
    const double d =
        static_cast<double>(base_ns) * std::pow(factor, attempt);
    if (d >= static_cast<double>(max_ns)) return max_ns;
    return static_cast<std::int64_t>(d);
  }

  /// No retries at all (the strict fail-closed-immediately policy).
  [[nodiscard]] static BackoffPolicy none() { return {0, 0, 1.0, 0}; }
};

/// A point in simulated time after which an operation must give up.
struct Deadline {
  SimTime at{};

  [[nodiscard]] static Deadline in(const SimClock& clock,
                                   std::int64_t budget_ns) {
    return Deadline{clock.now() + budget_ns};
  }
  [[nodiscard]] bool expired(const SimClock& clock) const {
    return clock.now() >= at;
  }
  [[nodiscard]] std::int64_t remaining_ns(const SimClock& clock) const {
    const std::int64_t left = at.ns - clock.now().ns;
    return left > 0 ? left : 0;
  }
};

}  // namespace heus::common
