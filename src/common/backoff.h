// Deadline and bounded-retry/backoff helpers for degraded-mode paths.
//
// Several consumers (the UBF's ident query, portal forwarding, DTN
// staging) share the same recovery shape when a dependency misbehaves:
// retry a bounded number of times with exponential backoff, charging the
// waiting time to the simulated clock, then fail closed. This header is
// that policy, expressed once so the per-subsystem knobs stay comparable
// and the experiment sweeps (E18) can vary them uniformly.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace heus::common {

/// Bounded exponential backoff: attempt k (0-based) waits
/// min(base_ns * factor^k, max_ns) before the next try. `max_retries`
/// counts *re*-tries, so an operation runs at most 1 + max_retries times.
struct BackoffPolicy {
  unsigned max_retries = 3;
  std::int64_t base_ns = 1 * kMillisecond;
  double factor = 2.0;
  std::int64_t max_ns = 100 * kMillisecond;

  [[nodiscard]] std::int64_t delay_ns(unsigned attempt) const {
    double d = static_cast<double>(base_ns);
    for (unsigned i = 0; i < attempt; ++i) d *= factor;
    const auto capped = static_cast<std::int64_t>(d);
    return capped > max_ns ? max_ns : capped;
  }

  /// No retries at all (the strict fail-closed-immediately policy).
  [[nodiscard]] static BackoffPolicy none() { return {0, 0, 1.0, 0}; }
};

/// A point in simulated time after which an operation must give up.
struct Deadline {
  SimTime at{};

  [[nodiscard]] static Deadline in(const SimClock& clock,
                                   std::int64_t budget_ns) {
    return Deadline{clock.now() + budget_ns};
  }
  [[nodiscard]] bool expired(const SimClock& clock) const {
    return clock.now() >= at;
  }
  [[nodiscard]] std::int64_t remaining_ns(const SimClock& clock) const {
    const std::int64_t left = at.ns - clock.now().ns;
    return left > 0 ? left : 0;
  }
};

}  // namespace heus::common
