#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace heus::common {

void Histogram::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  assert(!empty());
  ensure_sorted();
  return sorted_.front();
}

double Histogram::max() const {
  assert(!empty());
  ensure_sorted();
  return sorted_.back();
}

double Histogram::mean() const {
  assert(!empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  assert(!empty());
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Histogram::quantile(double q) const {
  assert(!empty());
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  // Nearest-rank with linear interpolation between adjacent order stats.
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Histogram::summary(const std::string& unit) const {
  if (empty()) return "n=0";
  const char* u = unit.c_str();
  return strformat(
      "n=%zu min=%.3f%s mean=%.3f%s p50=%.3f%s p95=%.3f%s p99=%.3f%s "
      "max=%.3f%s",
      count(), min(), u, mean(), u, quantile(0.5), u, quantile(0.95), u,
      quantile(0.99), u, max(), u);
}

}  // namespace heus::common
