#include "common/clock.h"

#include <cassert>

namespace heus::common {

SimTime SimClock::advance(std::int64_t delta_ns) noexcept {
  assert(delta_ns >= 0);
  now_.ns += delta_ns;
  return now_;
}

void SimClock::advance_to(SimTime t) noexcept {
  if (t.ns > now_.ns) now_ = t;
}

}  // namespace heus::common
