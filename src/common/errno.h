// POSIX-flavoured error codes for the simulated syscall surface.
//
// The simulation mirrors the kernel interfaces the paper's mechanisms live
// behind (VFS, procfs, sockets, scheduler RPCs), so errors are reported the
// way those interfaces report them: as errno values. Using the real names
// keeps tests readable ("chmod under smask yields EPERM on the world bits"
// reads like the kernel patch's own test plan).
#pragma once

#include <string_view>

namespace heus {

/// Simulated errno. Values are our own (the numeric values of the host's
/// errno are irrelevant to the simulation); names follow POSIX.
enum class Errno {
  ok = 0,
  eperm,         ///< Operation not permitted
  enoent,        ///< No such file or directory
  esrch,         ///< No such process
  eio,           ///< I/O error
  ebadf,         ///< Bad file descriptor
  eacces,        ///< Permission denied
  eexist,        ///< File exists
  enotdir,       ///< Not a directory
  eisdir,        ///< Is a directory
  einval,        ///< Invalid argument
  enfile,        ///< Too many open files in system
  enospc,        ///< No space left on device
  erofs,         ///< Read-only file system
  enametoolong,  ///< File name too long
  enotempty,     ///< Directory not empty
  eloop,         ///< Too many levels of symbolic links
  eaddrinuse,    ///< Address already in use
  eaddrnotavail, ///< Cannot assign requested address
  enetunreach,   ///< Network unreachable
  econnrefused,  ///< Connection refused
  econnreset,    ///< Connection reset by peer
  enotconn,      ///< Socket is not connected
  etimedout,     ///< Connection timed out
  ehostunreach,  ///< No route to host
  ealready,      ///< Operation already in progress
  eagain,        ///< Resource temporarily unavailable
  enodev,        ///< No such device
  ebusy,         ///< Device or resource busy
  enomem,        ///< Out of memory
  eoverflow,     ///< Value too large
  enosys,        ///< Function not implemented
  edquot,        ///< Disk quota exceeded
};

/// Symbolic name ("EACCES") for diagnostics and test failure messages.
[[nodiscard]] std::string_view errno_name(Errno e) noexcept;

/// Human-readable description ("Permission denied").
[[nodiscard]] std::string_view errno_message(Errno e) noexcept;

}  // namespace heus
