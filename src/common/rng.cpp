#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace heus::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  // Guard the log(0) edge; uniform01 can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace heus::common
