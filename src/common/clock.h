// Deterministic simulated clock.
//
// Every timestamp in the simulation (job submit times, connection setup
// latencies, scrub durations) comes from a SimClock that only moves when
// the simulation advances it. This keeps every experiment bit-reproducible
// across runs and machines.
#pragma once

#include <cstdint>

namespace heus::common {

/// Simulated time point, in nanoseconds since simulation start.
struct SimTime {
  std::int64_t ns = 0;

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  constexpr SimTime operator+(std::int64_t delta_ns) const {
    return SimTime{ns + delta_ns};
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns) * 1e-9;
  }
};

/// Simulated duration helpers.
constexpr std::int64_t kMicrosecond = 1'000;
constexpr std::int64_t kMillisecond = 1'000'000;
constexpr std::int64_t kSecond = 1'000'000'000;

/// Monotonic simulated clock. Not thread-safe by design: the simulation is
/// single-threaded and deterministic (DESIGN.md §6).
class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Advance by `delta_ns` (>= 0). Returns the new now.
  SimTime advance(std::int64_t delta_ns) noexcept;

  /// Jump forward to `t` if it is later than now; no-op otherwise.
  void advance_to(SimTime t) noexcept;

 private:
  SimTime now_{};
};

}  // namespace heus::common
