// Strongly-typed identifiers for the simulated cluster.
//
// Uids, gids, pids, job ids, node ids and port numbers are all "just
// integers" in the real system, and mixing them up is exactly the kind of
// bug a separation-enforcement codebase cannot afford. Each gets its own
// non-convertible type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace heus {

/// CRTP-free strong integer id. `Tag` makes each instantiation a distinct
/// type; ids of different kinds do not compare or convert.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : v_(v) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return v_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep v_ = 0;
};

struct UidTag {};
struct GidTag {};
struct PidTag {};
struct JobIdTag {};
struct NodeIdTag {};
struct HostIdTag {};
struct GpuIdTag {};
struct InodeIdTag {};
struct FlowIdTag {};
struct SessionIdTag {};

using Uid = StrongId<UidTag>;
using Gid = StrongId<GidTag>;
using Pid = StrongId<PidTag>;
using JobId = StrongId<JobIdTag, std::uint64_t>;
using NodeId = StrongId<NodeIdTag>;
using HostId = StrongId<HostIdTag>;
using GpuId = StrongId<GpuIdTag>;
using InodeId = StrongId<InodeIdTag, std::uint64_t>;
using FlowId = StrongId<FlowIdTag, std::uint64_t>;
using SessionId = StrongId<SessionIdTag, std::uint64_t>;

/// uid 0 / gid 0: the superuser, exempt from DAC checks (but, faithfully to
/// the paper, *not* handed out to HPC users or support staff).
inline constexpr Uid kRootUid{0};
inline constexpr Gid kRootGid{0};

}  // namespace heus

// Hash support so ids can key unordered containers.
namespace std {
template <typename Tag, typename Rep>
struct hash<heus::StrongId<Tag, Rep>> {
  size_t operator()(heus::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
