// Bump-pointer arena with power-of-two size-class recycling, plus a
// growable ring buffer that parks its storage inside an arena.
//
// Ownership rule (DESIGN.md §8): every Arena belongs to exactly one shard
// (a network bucket, a per-trace ring, a per-worker scratch).  All
// allocation and recycling must happen on the thread that owns the shard;
// the arena itself performs no synchronisation.  Chunks are stable in
// memory for the lifetime of the arena (moving an Arena moves ownership of
// the chunks, not the chunks themselves), so pointers handed out stay
// valid until reset() or destruction.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace heus::common {

class Arena {
 public:
  static constexpr std::size_t kMinBlockBytes = 64;   // smallest size class
  static constexpr std::size_t kAlignment = 16;

  explicit Arena(std::size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(round_up_pow2(
            first_chunk_bytes < kMinBlockBytes ? kMinBlockBytes
                                               : first_chunk_bytes)) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw bump allocation (never recycled individually; freed by reset()).
  void* allocate(std::size_t bytes) {
    bytes = align_up(bytes == 0 ? 1 : bytes);
    if (chunks_.empty() || used_ + bytes > chunks_.back().size) {
      grow(bytes);
    }
    Chunk& c = chunks_.back();
    void* p = c.data.get() + used_;
    used_ += bytes;
    bytes_used_ += bytes;
    return p;
  }

  // A recyclable block: capacity is always a power of two >= kMinBlockBytes.
  struct Block {
    void* data = nullptr;
    std::size_t capacity = 0;  // bytes, power of two
  };

  // Allocate a block whose capacity is the smallest size class holding
  // `min_bytes`.  Prefers a previously recycled block of that class, so
  // steady-state churn (ring grow/shrink, flow teardown) stops hitting the
  // bump pointer entirely.
  Block allocate_block(std::size_t min_bytes) {
    const std::size_t cap = round_up_pow2(
        min_bytes < kMinBlockBytes ? kMinBlockBytes : min_bytes);
    const unsigned cls = size_class(cap);
    if (cls < kClasses && free_lists_[cls] != nullptr) {
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      ++recycle_hits_;
      return Block{node, cap};
    }
    return Block{allocate(cap), cap};
  }

  // Return a block obtained from allocate_block().  The capacity must be
  // the one reported in the Block.  The memory stays owned by the arena;
  // recycling just makes it available to the next allocate_block() of the
  // same class.
  void recycle(Block b) {
    if (b.data == nullptr) return;
    assert(b.capacity >= kMinBlockBytes &&
           (b.capacity & (b.capacity - 1)) == 0);
    const unsigned cls = size_class(b.capacity);
    if (cls >= kClasses) return;  // oversized: let reset() reclaim it
    auto* node = static_cast<FreeNode*>(b.data);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  // Drop every allocation at once: keep the first chunk, release the rest,
  // clear the size-class freelists.  O(chunks), no per-object work, so
  // callers are responsible for having destroyed any non-trivial objects.
  void reset() {
    if (chunks_.size() > 1) chunks_.resize(1);
    used_ = 0;
    bytes_used_ = 0;
    free_lists_.fill(nullptr);
  }

  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::uint64_t recycle_hits() const { return recycle_hits_; }

  static constexpr std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr unsigned kClasses = 32;  // 64B .. 2^37B, plenty

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static constexpr std::size_t align_up(std::size_t n) {
    return (n + (kAlignment - 1)) & ~(kAlignment - 1);
  }

  static unsigned size_class(std::size_t pow2_cap) {
    unsigned cls = 0;
    std::size_t c = kMinBlockBytes;
    while (c < pow2_cap && cls < kClasses) {
      c <<= 1;
      ++cls;
    }
    return cls;
  }

  void grow(std::size_t need) {
    std::size_t size = chunks_.empty() ? first_chunk_bytes_
                                       : chunks_.back().size * 2;
    if (size < need) size = round_up_pow2(need);
    Chunk c;
    // operator new[] guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ (>= 16 on
    // every platform we target), which satisfies kAlignment.
    c.data = std::make_unique<std::byte[]>(size);
    c.size = size;
    chunks_.push_back(std::move(c));
    used_ = 0;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;        // offset into the last chunk
  std::size_t bytes_used_ = 0;  // total live bump bytes (approx, aligned)
  std::uint64_t recycle_hits_ = 0;
  std::array<FreeNode*, kClasses> free_lists_{};
};

// Growable power-of-two FIFO ring whose element storage lives in an
// Arena.  Replaces std::deque for small hot queues (flow message queues,
// freed ephemeral ports): pushing never allocates from the global heap,
// and growing recycles the old storage back into the arena's size-class
// freelist, so steady-state churn is allocation-free.
//
// The ring does not store the arena pointer; the owning shard passes its
// arena to the mutating calls.  The destructor destroys elements but
// leaves the storage to the arena (which owns the memory anyway).
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  RingBuffer(RingBuffer&& other) noexcept { steal(other); }
  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      destroy_elements();
      steal(other);
    }
    return *this;
  }
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;
  ~RingBuffer() { destroy_elements(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T& front() {
    assert(size_ > 0);
    return data_[head_];
  }
  const T& front() const {
    assert(size_ > 0);
    return data_[head_];
  }
  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[(head_ + i) & (cap_ - 1)];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(Arena& arena, T value) {
    if (size_ == cap_) grow(arena);
    const std::size_t tail = (head_ + size_) & (cap_ - 1);
    new (data_ + tail) T(std::move(value));
    ++size_;
  }

  T pop_front() {
    assert(size_ > 0);
    T out = std::move(data_[head_]);
    data_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return out;
  }

  // Destroy all elements and hand the storage back to the arena.
  void clear(Arena& arena) {
    destroy_elements();
    if (data_ != nullptr) {
      arena.recycle(Arena::Block{data_, cap_bytes_});
      data_ = nullptr;
      cap_ = 0;
      cap_bytes_ = 0;
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow(Arena& arena) {
    const std::size_t want = cap_ == 0 ? 4 : cap_ * 2;
    Arena::Block b = arena.allocate_block(want * sizeof(T));
    T* fresh = static_cast<T*>(b.data);
    // The element capacity must stay a power of two for the index mask;
    // the block's byte capacity may round up past want*sizeof(T) when
    // sizeof(T) is not itself a power of two, so keep the requested count.
    std::size_t new_cap = want;
    while (new_cap * 2 * sizeof(T) <= b.capacity) new_cap *= 2;
    for (std::size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move((*this)[i]));
      (*this)[i].~T();
    }
    if (data_ != nullptr) {
      arena.recycle(Arena::Block{data_, cap_bytes_});
    }
    data_ = fresh;
    cap_ = new_cap;
    cap_bytes_ = b.capacity;
    head_ = 0;
  }

  void destroy_elements() {
    for (std::size_t i = 0; i < size_; ++i) (*this)[i].~T();
    size_ = 0;
    head_ = 0;
  }

  void steal(RingBuffer& other) {
    data_ = other.data_;
    cap_ = other.cap_;
    cap_bytes_ = other.cap_bytes_;
    head_ = other.head_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.cap_ = 0;
    other.cap_bytes_ = 0;
    other.head_ = 0;
    other.size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t cap_ = 0;        // element capacity, power of two (or 0)
  std::size_t cap_bytes_ = 0;  // byte capacity of the arena block
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace heus::common
