// Seeded deterministic random number generator (xoshiro256**).
//
// All stochastic workload generation routes through this; the standard
// library engines are avoided because their distributions are not
// reproducible across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace heus::common {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64 so that any 64-bit seed produces a well-mixed
/// state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Pareto-distributed value with scale xm and shape alpha — used for
  /// heavy-tailed job-duration workloads.
  double pareto(double xm, double alpha);

 private:
  std::uint64_t s_[4];
};

}  // namespace heus::common
