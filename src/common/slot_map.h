// Generation-checked dense slot map (DESIGN.md §8).  Values live in one
// contiguous dense array (ideal for SoA sweeps: GC scans, cross-user flow
// scans); handles are {slot, generation} pairs that survive swap-remove
// compaction and detect stale reuse.  erase() reports the swap it performs
// so parallel arrays (the cold half of a hot/cold split) can mirror it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace heus::common {

struct SlotHandle {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;
  friend bool operator==(const SlotHandle&, const SlotHandle&) = default;
};

template <typename T>
class SlotMap {
 public:
  bool empty() const { return dense_.empty(); }
  std::size_t size() const { return dense_.size(); }

  // Dense access for linear sweeps.
  T& dense(std::size_t i) { return dense_[i]; }
  const T& dense(std::size_t i) const { return dense_[i]; }
  SlotHandle handle_at(std::size_t i) const {
    const std::uint32_t slot = dense_to_slot_[i];
    return SlotHandle{slot, slots_[slot].generation};
  }
  /// Dense index behind a handle, or npos for a stale/invalid handle.
  /// Lets parallel arrays (the cold half of a hot/cold split) be addressed
  /// by the same handle that addresses the hot half.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t dense_index(SlotHandle h) const {
    return valid(h) ? slots_[h.slot].index : npos;
  }

  SlotHandle insert(T value) {
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].index;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(SlotEntry{});
    }
    slots_[slot].index = static_cast<std::uint32_t>(dense_.size());
    dense_.push_back(std::move(value));
    dense_to_slot_.push_back(slot);
    return SlotHandle{slot, slots_[slot].generation};
  }

  T* get(SlotHandle h) {
    return valid(h) ? &dense_[slots_[h.slot].index] : nullptr;
  }
  const T* get(SlotHandle h) const {
    return valid(h) ? &dense_[slots_[h.slot].index] : nullptr;
  }
  bool valid(SlotHandle h) const {
    return h.slot < slots_.size() && slots_[h.slot].generation == h.generation &&
           slots_[h.slot].index != kNoSlot;
  }

  // Erase via swap-with-last.  on_move(from, to) fires when the dense
  // element at index `from` moves to index `to`, so parallel arrays can
  // mirror the compaction; it does not fire when erasing the last element.
  template <typename OnMove>
  bool erase(SlotHandle h, OnMove&& on_move) {
    if (!valid(h)) return false;
    const std::uint32_t dead = slots_[h.slot].index;
    const auto last = static_cast<std::uint32_t>(dense_.size()) - 1;
    if (dead != last) {
      dense_[dead] = std::move(dense_[last]);
      dense_to_slot_[dead] = dense_to_slot_[last];
      slots_[dense_to_slot_[dead]].index = dead;
      on_move(last, dead);
    }
    dense_.pop_back();
    dense_to_slot_.pop_back();
    // Retire the slot: bump the generation so stale handles miss, and
    // thread it onto the free list through the index field.
    ++slots_[h.slot].generation;
    slots_[h.slot].index = free_head_;
    free_head_ = h.slot;
    return true;
  }
  bool erase(SlotHandle h) {
    return erase(h, [](std::uint32_t, std::uint32_t) {});
  }

  void clear() {
    dense_.clear();
    dense_to_slot_.clear();
    slots_.clear();
    free_head_ = kNoSlot;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct SlotEntry {
    std::uint32_t index = kNoSlot;  // dense index, or next free slot
    std::uint32_t generation = 0;
  };

  std::vector<T> dense_;
  std::vector<std::uint32_t> dense_to_slot_;  // dense index -> slot
  std::vector<SlotEntry> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace heus::common
