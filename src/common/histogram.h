// Latency/size statistics accumulator for the experiment harnesses.
//
// Experiments report min / mean / p50 / p95 / p99 / max the way the
// systems-measurement literature does; this is the shared accumulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace heus::common {

/// Streaming-ish statistics over double-valued samples. Samples are stored
/// (experiments are small enough), so exact quantiles are available.
class Histogram {
 public:
  void add(double v);
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Exact quantile, q in [0, 1]. Sorts lazily.
  [[nodiscard]] double quantile(double q) const;

  /// "n=100 min=1.0 mean=2.5 p50=2.0 p95=4.0 p99=4.9 max=5.0"
  [[nodiscard]] std::string summary(const std::string& unit = "") const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

}  // namespace heus::common
