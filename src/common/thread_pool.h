// Fixed-size worker pool over the thread-safe blocking queue — the only
// sanctioned thread-creation site in the simulation (DESIGN.md §7).
//
// The pool exists for one pattern: the sharded engine's fork/join tick.
// The coordinator submits one task per shard, calls wait_idle() as the
// deterministic barrier, then runs the ordered cross-shard phase on its
// own thread. Determinism is a property of what the tasks touch (disjoint
// shard state), not of the pool: the pool makes no ordering promises
// beyond "every submitted task runs exactly once before wait_idle()
// returns".
//
// Tasks must not throw; an escaping exception is swallowed and counted in
// failed_tasks() so a worker thread never takes the process down, and
// callers that care (the engine does) can turn a nonzero count into a
// loud failure.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/task_queue.h"

namespace heus::common {

class WorkerPool {
 public:
  /// Spawns exactly `workers` (>= 1 enforced) long-lived threads.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();  ///< shutdown() + join; pending tasks are drained first

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue one task. Never blocks. Must not be called after shutdown.
  void submit(std::function<void()> task);

  /// Barrier: block until every task submitted so far has finished
  /// executing (not merely been dequeued).
  void wait_idle();

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }
  /// Tasks fully executed since construction.
  [[nodiscard]] std::uint64_t tasks_executed() const;
  /// Tasks whose callable escaped with an exception (always a bug in the
  /// caller; the engine asserts this stays zero).
  [[nodiscard]] std::uint64_t failed_tasks() const;

 private:
  void worker_loop();

  ThreadSafeBlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  ///< submitted, not yet finished
  std::uint64_t executed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace heus::common
