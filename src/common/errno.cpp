#include "common/errno.h"

namespace heus {

std::string_view errno_name(Errno e) noexcept {
  switch (e) {
    case Errno::ok: return "OK";
    case Errno::eperm: return "EPERM";
    case Errno::enoent: return "ENOENT";
    case Errno::esrch: return "ESRCH";
    case Errno::eio: return "EIO";
    case Errno::ebadf: return "EBADF";
    case Errno::eacces: return "EACCES";
    case Errno::eexist: return "EEXIST";
    case Errno::enotdir: return "ENOTDIR";
    case Errno::eisdir: return "EISDIR";
    case Errno::einval: return "EINVAL";
    case Errno::enfile: return "ENFILE";
    case Errno::enospc: return "ENOSPC";
    case Errno::erofs: return "EROFS";
    case Errno::enametoolong: return "ENAMETOOLONG";
    case Errno::enotempty: return "ENOTEMPTY";
    case Errno::eloop: return "ELOOP";
    case Errno::eaddrinuse: return "EADDRINUSE";
    case Errno::eaddrnotavail: return "EADDRNOTAVAIL";
    case Errno::enetunreach: return "ENETUNREACH";
    case Errno::econnrefused: return "ECONNREFUSED";
    case Errno::econnreset: return "ECONNRESET";
    case Errno::enotconn: return "ENOTCONN";
    case Errno::etimedout: return "ETIMEDOUT";
    case Errno::ehostunreach: return "EHOSTUNREACH";
    case Errno::ealready: return "EALREADY";
    case Errno::eagain: return "EAGAIN";
    case Errno::enodev: return "ENODEV";
    case Errno::ebusy: return "EBUSY";
    case Errno::enomem: return "ENOMEM";
    case Errno::eoverflow: return "EOVERFLOW";
    case Errno::enosys: return "ENOSYS";
    case Errno::edquot: return "EDQUOT";
  }
  return "E???";
}

std::string_view errno_message(Errno e) noexcept {
  switch (e) {
    case Errno::ok: return "Success";
    case Errno::eperm: return "Operation not permitted";
    case Errno::enoent: return "No such file or directory";
    case Errno::esrch: return "No such process";
    case Errno::eio: return "I/O error";
    case Errno::ebadf: return "Bad file descriptor";
    case Errno::eacces: return "Permission denied";
    case Errno::eexist: return "File exists";
    case Errno::enotdir: return "Not a directory";
    case Errno::eisdir: return "Is a directory";
    case Errno::einval: return "Invalid argument";
    case Errno::enfile: return "Too many open files in system";
    case Errno::enospc: return "No space left on device";
    case Errno::erofs: return "Read-only file system";
    case Errno::enametoolong: return "File name too long";
    case Errno::enotempty: return "Directory not empty";
    case Errno::eloop: return "Too many levels of symbolic links";
    case Errno::eaddrinuse: return "Address already in use";
    case Errno::eaddrnotavail: return "Cannot assign requested address";
    case Errno::enetunreach: return "Network is unreachable";
    case Errno::econnrefused: return "Connection refused";
    case Errno::econnreset: return "Connection reset by peer";
    case Errno::enotconn: return "Socket is not connected";
    case Errno::etimedout: return "Connection timed out";
    case Errno::ehostunreach: return "No route to host";
    case Errno::ealready: return "Operation already in progress";
    case Errno::eagain: return "Resource temporarily unavailable";
    case Errno::enodev: return "No such device";
    case Errno::ebusy: return "Device or resource busy";
    case Errno::enomem: return "Out of memory";
    case Errno::eoverflow: return "Value too large for defined data type";
    case Errno::enosys: return "Function not implemented";
    case Errno::edquot: return "Disk quota exceeded";
  }
  return "Unknown error";
}

}  // namespace heus
