// Result<T>: the return type of every simulated syscall.
//
// The library does not throw across its API boundary (per the project
// conventions in DESIGN.md §6); a simulated syscall either produces a value
// or an Errno, exactly like the kernel interfaces being modelled.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "common/errno.h"

namespace heus {

/// Value-or-errno. `Result<void>` is supported for calls that only report
/// success/failure (chmod, unlink, setuid, ...).
///
/// Usage:
///   auto r = fs.open(cred, "/home/alice/x");
///   if (!r) return r.error();
///   Fd fd = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an Errno keeps call sites terse:
  //   return Errno::eacces;        // error path
  //   return some_value;           // success path
  Result(T value) : value_(std::move(value)), err_(Errno::ok) {}  // NOLINT
  Result(Errno err) : err_(err) { assert(err != Errno::ok); }     // NOLINT

  [[nodiscard]] bool ok() const noexcept { return err_ == Errno::ok; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] Errno error() const noexcept { return err_; }

  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  /// `*r` / `r->member` access, mirroring std::optional.
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Errno err_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : err_(Errno::ok) {}
  Result(Errno err) : err_(err) {}  // NOLINT: implicit by design

  [[nodiscard]] bool ok() const noexcept { return err_ == Errno::ok; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] Errno error() const noexcept { return err_; }

 private:
  Errno err_;
};

/// Convenience spelling for success on Result<void> paths.
inline Result<void> ok_result() { return {}; }

}  // namespace heus
