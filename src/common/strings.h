// Small string utilities shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace heus::common {

/// Split `s` on `sep`, dropping empty fields iff `keep_empty` is false.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep,
                                             bool keep_empty = false);

/// Join `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Render a mode like 0750 as "rwxr-x---".
[[nodiscard]] std::string mode_string(unsigned mode);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace heus::common
