#include "common/log.h"

#include <cstdio>

namespace heus::common {

namespace {
LogLevel g_level = LogLevel::warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[heus %-5s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace heus::common
