// Thread-safe blocking task queue — the only sanctioned cross-thread
// hand-off primitive in the simulation (DESIGN.md §7: everything else in
// src/ outside src/common/ must stay free of raw threading constructs;
// tools/check_determinism.sh enforces it).
//
// Semantics mirror the classic bounded-consumer pattern (exemplar:
// ThreadSafeBlockingQueue in the Kinesis WebRTC SDK): producers push,
// consumers block on pop, and shutdown() wakes every blocked consumer.
// Items already queued at shutdown are still drained — a task handed to
// the queue is never lost — and pop_blocking() returns nullopt only once
// the queue is both shut down and empty, so consumers can use it as their
// exit condition. The 64-seed stress suite in
// tests/common/task_queue_test.cpp pins the no-loss/no-duplication
// property under concurrent producers and consumers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace heus::common {

template <typename T>
class ThreadSafeBlockingQueue {
 public:
  ThreadSafeBlockingQueue() = default;
  ThreadSafeBlockingQueue(const ThreadSafeBlockingQueue&) = delete;
  ThreadSafeBlockingQueue& operator=(const ThreadSafeBlockingQueue&) = delete;

  /// Enqueue one item and wake one blocked consumer. Returns false (and
  /// drops the item) if the queue has been shut down — producers racing a
  /// shutdown get a definitive answer instead of a silent enqueue that no
  /// consumer will ever see.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is shut down *and*
  /// drained. nullopt means "no more work will ever arrive": the consumer
  /// loop should exit.
  std::optional<T> pop_blocking() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // shutdown_ && drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking variant: false when nothing is queued right now.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Reject further pushes and wake every blocked consumer. Already-queued
  /// items remain poppable until drained. Idempotent.
  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool is_shutdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace heus::common
