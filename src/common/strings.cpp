#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace heus::common {

std::vector<std::string> split(std::string_view s, char sep,
                               bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(sep, start);
    const std::size_t end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start || keep_empty) {
      out.emplace_back(s.substr(start, end - start));
    }
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string mode_string(unsigned mode) {
  std::string out(9, '-');
  static constexpr char kBits[] = "rwxrwxrwx";
  for (int i = 0; i < 9; ++i) {
    if (mode & (1u << (8 - i))) out[static_cast<std::size_t>(i)] = kBits[i];
  }
  // setuid/setgid/sticky annotations, matching ls -l.
  if (mode & 04000) out[2] = (out[2] == 'x') ? 's' : 'S';
  if (mode & 02000) out[5] = (out[5] == 'x') ? 's' : 'S';
  if (mode & 01000) out[8] = (out[8] == 'x') ? 't' : 'T';
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace heus::common
