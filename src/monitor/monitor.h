// Cluster load monitoring with per-user attribution (paper §IV-A).
//
// The paper's justification for `seepid` is operational: support staff
// who are not full administrators "need … to view overall system load and
// attribute hotspots to specific users to help troubleshoot an execution
// script or a failed job execution". This module is that telemetry
// pipeline, with the same information-flow rules as everything else:
//
//  - aggregate, non-attributable load (cluster utilization over time) is
//    visible to everyone — it leaks nothing about individuals;
//  - per-user attribution ("who is the hotspot") is visible only to the
//    caller about themselves, unless the caller holds the staff privilege
//    (root, or membership in the seepid-exempt group).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "sched/scheduler.h"
#include "simos/credentials.h"

namespace heus::monitor {

/// One sampled snapshot of a node.
struct NodeSample {
  NodeId node{};
  common::SimTime time{};
  unsigned cpus_total = 0;
  unsigned cpus_used = 0;
  bool down = false;
  std::map<Uid, unsigned> cpus_by_user;
};

/// Aggregate cluster load at one instant (derived, unattributed).
struct LoadPoint {
  common::SimTime time{};
  unsigned cpus_total = 0;
  unsigned cpus_used = 0;
  unsigned nodes_down = 0;

  [[nodiscard]] double utilization() const {
    return cpus_total ? static_cast<double>(cpus_used) / cpus_total : 0.0;
  }
};

/// A hotspot row: one user's current footprint.
struct Hotspot {
  Uid user{};
  unsigned cpus = 0;
  unsigned nodes = 0;  ///< nodes the user occupies
};

class Monitor {
 public:
  /// `is_staff` decides who may see cross-user attribution (wired by the
  /// cluster to root-or-seepid-group membership).
  using StaffCheck = std::function<bool(const simos::Credentials&)>;

  Monitor(const sched::Scheduler* scheduler, const common::SimClock* clock,
          StaffCheck is_staff)
      : scheduler_(scheduler),
        clock_(clock),
        is_staff_(std::move(is_staff)) {}

  /// Record a snapshot of every node right now. Returns the number of
  /// nodes sampled. Call this from the simulation driver at whatever
  /// cadence the experiment wants.
  std::size_t sample();

  /// Unattributed load history — open to every credential.
  [[nodiscard]] std::vector<LoadPoint> load_series() const;

  /// Current per-user hotspots, sorted by cpus descending. Ordinary users
  /// receive only their own row; staff and root receive everyone's.
  [[nodiscard]] std::vector<Hotspot> hotspots(
      const simos::Credentials& cred) const;

  /// Per-node occupancy of the *latest* sample, with per-user detail only
  /// for staff (others see counts, not identities): the sinfo-style view.
  struct NodeView {
    NodeId node{};
    unsigned cpus_total = 0;
    unsigned cpus_used = 0;
    bool down = false;
    /// Present only for staff (or the caller's own usage otherwise).
    std::map<Uid, unsigned> attributed;
  };
  [[nodiscard]] std::vector<NodeView> node_views(
      const simos::Credentials& cred) const;

  [[nodiscard]] std::size_t sample_count() const { return history_.size(); }
  void clear() { history_.clear(); }

 private:
  const sched::Scheduler* scheduler_;
  const common::SimClock* clock_;
  StaffCheck is_staff_;
  /// history_[i] is the vector of node samples for snapshot i.
  std::vector<std::vector<NodeSample>> history_;
};

}  // namespace heus::monitor
