#include "monitor/monitor.h"

#include <algorithm>

namespace heus::monitor {

std::size_t Monitor::sample() {
  std::vector<NodeSample> snapshot;
  snapshot.reserve(scheduler_->node_count());
  for (std::size_t i = 0; i < scheduler_->node_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    const sched::NodeInfo* info = scheduler_->node_info(node);
    NodeSample sample;
    sample.node = node;
    sample.time = clock_->now();
    sample.cpus_total = info->cpus;
    sample.cpus_used = info->cpus - scheduler_->node_free_cpus(node);
    sample.down = scheduler_->node_is_down(node);
    for (JobId job_id : scheduler_->jobs_on(node)) {
      const sched::Job* job = scheduler_->find_job(job_id);
      if (job == nullptr) continue;
      for (const auto& alloc : job->allocations) {
        if (alloc.node != node) continue;
        sample.cpus_by_user[job->user] +=
            alloc.tasks * job->spec.cpus_per_task;
      }
    }
    snapshot.push_back(std::move(sample));
  }
  history_.push_back(std::move(snapshot));
  return scheduler_->node_count();
}

std::vector<LoadPoint> Monitor::load_series() const {
  std::vector<LoadPoint> out;
  out.reserve(history_.size());
  for (const auto& snapshot : history_) {
    LoadPoint point;
    for (const auto& sample : snapshot) {
      point.time = sample.time;
      point.cpus_total += sample.cpus_total;
      point.cpus_used += sample.cpus_used;
      if (sample.down) ++point.nodes_down;
    }
    out.push_back(point);
  }
  return out;
}

std::vector<Hotspot> Monitor::hotspots(
    const simos::Credentials& cred) const {
  std::vector<Hotspot> out;
  if (history_.empty()) return out;
  const bool staff = cred.is_root() || (is_staff_ && is_staff_(cred));

  std::map<Uid, Hotspot> by_user;
  for (const auto& sample : history_.back()) {
    for (const auto& [uid, cpus] : sample.cpus_by_user) {
      if (!staff && uid != cred.uid) continue;  // attribution filtered
      Hotspot& h = by_user[uid];
      h.user = uid;
      h.cpus += cpus;
      ++h.nodes;
    }
  }
  out.reserve(by_user.size());
  for (auto& [uid, h] : by_user) out.push_back(h);
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    if (a.cpus != b.cpus) return a.cpus > b.cpus;
    return a.user < b.user;
  });
  return out;
}

std::vector<Monitor::NodeView> Monitor::node_views(
    const simos::Credentials& cred) const {
  std::vector<NodeView> out;
  if (history_.empty()) return out;
  const bool staff = cred.is_root() || (is_staff_ && is_staff_(cred));
  for (const auto& sample : history_.back()) {
    NodeView view;
    view.node = sample.node;
    view.cpus_total = sample.cpus_total;
    view.cpus_used = sample.cpus_used;
    view.down = sample.down;
    for (const auto& [uid, cpus] : sample.cpus_by_user) {
      if (staff || uid == cred.uid) view.attributed[uid] = cpus;
    }
    out.push_back(std::move(view));
  }
  return out;
}

}  // namespace heus::monitor
