#include "obs/taxonomy.h"

namespace heus::obs {

const char* to_string(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::procfs_process_list: return "procfs-process-list";
    case ChannelKind::procfs_cmdline: return "procfs-cmdline";
    case ChannelKind::scheduler_queue: return "scheduler-queue";
    case ChannelKind::scheduler_accounting: return "scheduler-accounting";
    case ChannelKind::scheduler_usage: return "scheduler-usage";
    case ChannelKind::ssh_foreign_node: return "ssh-foreign-node";
    case ChannelKind::fs_home_read: return "fs-home-read";
    case ChannelKind::fs_tmp_content: return "fs-tmp-content";
    case ChannelKind::fs_tmp_names: return "fs-tmp-names";
    case ChannelKind::fs_devshm_content: return "fs-devshm-content";
    case ChannelKind::fs_acl_user_grant: return "fs-acl-user-grant";
    case ChannelKind::tcp_cross_user: return "tcp-cross-user";
    case ChannelKind::udp_cross_user: return "udp-cross-user";
    case ChannelKind::abstract_uds: return "abstract-uds";
    case ChannelKind::rdma_tcp_setup: return "rdma-tcp-setup";
    case ChannelKind::rdma_native_cm: return "rdma-native-cm";
    case ChannelKind::portal_foreign_app: return "portal-foreign-app";
    case ChannelKind::gpu_residue: return "gpu-residue";
  }
  return "?";
}

const char* channel_section(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::procfs_process_list:
    case ChannelKind::procfs_cmdline:
      return "IV-A";
    case ChannelKind::scheduler_queue:
    case ChannelKind::scheduler_accounting:
    case ChannelKind::scheduler_usage:
    case ChannelKind::ssh_foreign_node:
      return "IV-B";
    case ChannelKind::fs_home_read:
    case ChannelKind::fs_tmp_content:
    case ChannelKind::fs_tmp_names:
    case ChannelKind::fs_devshm_content:
    case ChannelKind::fs_acl_user_grant:
      return "IV-C";
    case ChannelKind::tcp_cross_user:
    case ChannelKind::udp_cross_user:
    case ChannelKind::abstract_uds:
    case ChannelKind::rdma_tcp_setup:
    case ChannelKind::rdma_native_cm:
      return "IV-D";
    case ChannelKind::portal_foreign_app:
      return "IV-E";
    case ChannelKind::gpu_residue:
      return "IV-F";
  }
  return "?";
}

bool is_documented_residual(ChannelKind kind) {
  // §V: "There remain a few paths that still exist, including file names
  // in world-writable directories (/tmp, /dev/shm), abstract namespace
  // unix domain sockets, and direct IB verbs network communication."
  return kind == ChannelKind::fs_tmp_names ||
         kind == ChannelKind::abstract_uds ||
         kind == ChannelKind::rdma_native_cm;
}

std::span<const char* const> all_knob_names() {
  static constexpr const char* kNames[] = {
      knob::hidepid,          knob::hidepid_gid_exemption,
      knob::private_data_jobs, knob::private_data_accounting,
      knob::private_data_usage, knob::sharing,
      knob::pam_slurm,        knob::fs_enforce_smask,
      knob::fs_honor_smask,   knob::fs_restrict_acl,
      knob::root_owned_homes, knob::ubf,
      knob::ubf_group_peers,  knob::gpu_dev_binding,
      knob::gpu_epilog_scrub, knob::fed_fail_closed,
      knob::fed_breaker,
  };
  return kNames;
}

}  // namespace heus::obs
