// Shared separation vocabulary: channels and policy-knob names.
//
// Exactly one copy of the channel taxonomy (paper §IV-A–F) and of the
// policy-knob name strings lives here, so the LeakageAuditor (core), the
// static analyzer (analyze) and the runtime decision spine (obs) all
// speak the same language. Before this header existed the channel string
// tables were duplicated between core/audit.cpp and src/analyze, and the
// knob names were spelled as ad-hoc literals per subsystem — drift
// between those copies is exactly the "silent non-enforcement" failure
// the differential oracle exists to catch.
#pragma once

#include <array>
#include <span>

namespace heus::obs {

/// A cross-user information channel from the paper's census (§IV-A–F).
enum class ChannelKind {
  // §IV-A processes
  procfs_process_list,     ///< observer sees victim's pids
  procfs_cmdline,          ///< observer reads victim's command lines
  // §IV-B scheduler
  scheduler_queue,         ///< observer sees victim's queued/running jobs
  scheduler_accounting,    ///< observer reads victim's sacct records
  scheduler_usage,         ///< observer reads victim's usage report
  ssh_foreign_node,        ///< observer ssh-es into victim's compute node
  // §IV-C filesystems
  fs_home_read,            ///< observer reads a world-chmod'ed home file
  fs_tmp_content,          ///< observer reads victim's /tmp file content
  fs_tmp_names,            ///< observer lists victim's /tmp file names
  fs_devshm_content,       ///< same for /dev/shm
  fs_acl_user_grant,       ///< victim grants observer access via setfacl
  // §IV-D network
  tcp_cross_user,          ///< observer connects to victim's TCP service
  udp_cross_user,          ///< observer reaches victim's UDP service
  abstract_uds,            ///< observer connects to victim's abstract socket
  rdma_tcp_setup,          ///< QP brought up over a TCP control channel
  rdma_native_cm,          ///< QP brought up via native IB CM
  // §IV-E portal
  portal_foreign_app,      ///< observer fetches victim's web app via portal
  // §IV-F accelerators
  gpu_residue,             ///< observer reads victim's stale GPU memory
};

[[nodiscard]] const char* to_string(ChannelKind kind);

/// Every channel, in the order audit_pair probes them (paper-section
/// order). The canonical iteration order for reports and for the static
/// analyzer's differential cross-check.
inline constexpr std::array<ChannelKind, 18> kAllChannels = {
    ChannelKind::procfs_process_list, ChannelKind::procfs_cmdline,
    ChannelKind::scheduler_queue,     ChannelKind::scheduler_accounting,
    ChannelKind::scheduler_usage,     ChannelKind::ssh_foreign_node,
    ChannelKind::fs_home_read,        ChannelKind::fs_tmp_content,
    ChannelKind::fs_tmp_names,        ChannelKind::fs_devshm_content,
    ChannelKind::fs_acl_user_grant,   ChannelKind::tcp_cross_user,
    ChannelKind::udp_cross_user,      ChannelKind::abstract_uds,
    ChannelKind::rdma_tcp_setup,      ChannelKind::rdma_native_cm,
    ChannelKind::portal_foreign_app,  ChannelKind::gpu_residue,
};

/// Paper section that discusses a channel ("IV-A" … "IV-F").
[[nodiscard]] const char* channel_section(ChannelKind kind);

/// Channels the paper itself lists as remaining open even under the full
/// configuration (§V, first paragraph).
[[nodiscard]] bool is_documented_residual(ChannelKind kind);

/// Canonical knob names of SeparationPolicy, as the static analyzer's
/// policy space spells them. A runtime Decision that attributes a deny
/// to a knob uses these exact pointers, so attribution agreement with
/// `heus::analyze` is a string comparison with no translation table.
namespace knob {
inline constexpr const char* hidepid = "hidepid";
inline constexpr const char* hidepid_gid_exemption = "hidepid_gid_exemption";
inline constexpr const char* private_data_jobs = "private_data.jobs";
inline constexpr const char* private_data_accounting =
    "private_data.accounting";
inline constexpr const char* private_data_usage = "private_data.usage";
inline constexpr const char* sharing = "sharing";
inline constexpr const char* pam_slurm = "pam_slurm";
inline constexpr const char* fs_enforce_smask = "fs.enforce_smask";
inline constexpr const char* fs_honor_smask = "fs.honor_smask";
inline constexpr const char* fs_restrict_acl = "fs.restrict_acl";
inline constexpr const char* root_owned_homes = "root_owned_homes";
inline constexpr const char* ubf = "ubf";
inline constexpr const char* ubf_group_peers = "ubf_group_peers";
inline constexpr const char* gpu_dev_binding = "gpu_dev_binding";
inline constexpr const char* gpu_epilog_scrub = "gpu_epilog_scrub";
// Federation knobs (src/fed). These are *deployment* knobs of the
// federation layer, not SeparationPolicy lattice knobs: they attribute
// partition-induced fail-closed denials (fed.fail_closed) and
// circuit-breaker fast-fail denials (fed.breaker) in the decision
// trace, so an availability casualty is never mistaken for a policy
// verdict. Lifecycle policy guards keep naming registry knobs (`ubf`):
// the federated path is the UBF's cross-cluster generalization.
inline constexpr const char* fed_fail_closed = "fed.fail_closed";
inline constexpr const char* fed_breaker = "fed.breaker";
}  // namespace knob

/// Every knob name declared above, declaration order (registry knobs
/// first, then the federation deployment knobs). The dead-knob lint
/// iterates this span to prove each name is still wired to both the
/// static analyzer and at least one Decision-recording enforcement
/// site — a knob string that exists only here is drift.
[[nodiscard]] std::span<const char* const> all_knob_names();

}  // namespace heus::obs
