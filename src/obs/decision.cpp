#include "obs/decision.h"

namespace heus::obs {

const char* to_string(DecisionPoint point) {
  switch (point) {
    case DecisionPoint::procfs_visibility: return "procfs-visibility";
    case DecisionPoint::pam_ssh: return "pam-ssh";
    case DecisionPoint::sched_query: return "sched-query";
    case DecisionPoint::sched_placement: return "sched-placement";
    case DecisionPoint::fs_access: return "fs-access";
    case DecisionPoint::fs_chmod: return "fs-chmod";
    case DecisionPoint::fs_acl: return "fs-acl";
    case DecisionPoint::ubf_admission: return "ubf-admission";
    case DecisionPoint::net_uninspected: return "net-uninspected";
    case DecisionPoint::rdma_setup: return "rdma-setup";
    case DecisionPoint::portal_forward: return "portal-forward";
    case DecisionPoint::gpu_dev_access: return "gpu-dev-access";
    case DecisionPoint::gpu_scrub: return "gpu-scrub";
    case DecisionPoint::container_entry: return "container-entry";
    case DecisionPoint::lifecycle_transition: return "lifecycle-transition";
    case DecisionPoint::fed_admission: return "fed-admission";
  }
  return "?";
}

const char* to_string(Outcome outcome) {
  return outcome == Outcome::allow ? "allow" : "deny";
}

void DecisionTrace::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
}

void DecisionTrace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
  seq_ = 0;
  overwritten_ = 0;
  counters_.fill(PointCounters{});
}

void DecisionTrace::push(Decision&& d) {
  if (size_ < capacity_) {
    ring_.push_back(std::move(d));
    ++size_;
    return;
  }
  ring_[head_] = std::move(d);
  head_ = (head_ + 1) % capacity_;
  ++overwritten_;
}

std::vector<Decision> DecisionTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Decision> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % size_]);
  }
  return out;
}

}  // namespace heus::obs
