#include "obs/decision.h"

#include <cassert>
#include <cstring>

namespace heus::obs {

const char* to_string(DecisionPoint point) {
  switch (point) {
    case DecisionPoint::procfs_visibility: return "procfs-visibility";
    case DecisionPoint::pam_ssh: return "pam-ssh";
    case DecisionPoint::sched_query: return "sched-query";
    case DecisionPoint::sched_placement: return "sched-placement";
    case DecisionPoint::fs_access: return "fs-access";
    case DecisionPoint::fs_chmod: return "fs-chmod";
    case DecisionPoint::fs_acl: return "fs-acl";
    case DecisionPoint::ubf_admission: return "ubf-admission";
    case DecisionPoint::net_uninspected: return "net-uninspected";
    case DecisionPoint::rdma_setup: return "rdma-setup";
    case DecisionPoint::portal_forward: return "portal-forward";
    case DecisionPoint::gpu_dev_access: return "gpu-dev-access";
    case DecisionPoint::gpu_scrub: return "gpu-scrub";
    case DecisionPoint::container_entry: return "container-entry";
    case DecisionPoint::lifecycle_transition: return "lifecycle-transition";
    case DecisionPoint::fed_admission: return "fed-admission";
  }
  return "?";
}

const char* to_string(Outcome outcome) {
  return outcome == Outcome::allow ? "allow" : "deny";
}

std::uint32_t DecisionTrace::LabelRing::append(common::Arena& arena,
                                               std::string_view s) {
  if (s.size() > cap_ - used_ || cap_ == 0) {
    // Grow to the next class fitting live bytes + the new label, then
    // unwrap the live region into the fresh block (oldest byte first) so
    // offsets stay simple ring offsets.
    std::size_t want = cap_ == 0 ? 256 : cap_;
    while (want < used_ + s.size()) want *= 2;
    want *= 2;  // headroom: halve the number of future unwrap copies
    common::Arena::Block b = arena.allocate_block(want);
    char* fresh = static_cast<char*>(b.data);
    const std::size_t tail = (head_ + cap_ - used_) & (cap_ - 1);
    for (std::size_t i = 0; i < used_; ++i) {
      fresh[i] = buf_[(tail + i) & (cap_ - 1)];
    }
    if (buf_ != nullptr) {
      arena.recycle(common::Arena::Block{buf_, cap_bytes_});
    }
    buf_ = fresh;
    cap_ = b.capacity;  // block capacities are powers of two
    cap_bytes_ = b.capacity;
    head_ = used_;
  }
  const auto offset = static_cast<std::uint32_t>(head_);
  for (std::size_t i = 0; i < s.size(); ++i) {
    buf_[(head_ + i) & (cap_ - 1)] = s[i];
  }
  head_ = (head_ + s.size()) & (cap_ - 1);
  used_ += s.size();
  return offset;
}

void DecisionTrace::LabelRing::read(std::uint32_t offset, std::uint32_t len,
                                    std::string& out) const {
  out.clear();
  for (std::uint32_t i = 0; i < len; ++i) {
    out.push_back(buf_[(offset + i) & (cap_ - 1)]);
  }
}

void DecisionTrace::LabelRing::clear(common::Arena& arena) {
  if (buf_ != nullptr) {
    arena.recycle(common::Arena::Block{buf_, cap_bytes_});
  }
  buf_ = nullptr;
  cap_ = 0;
  cap_bytes_ = 0;
  head_ = 0;
  used_ = 0;
}

void DecisionTrace::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  drop_rows();
}

void DecisionTrace::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  drop_rows();
  seq_ = 0;
  overwritten_ = 0;
  counters_.fill(PointCounters{});
}

void DecisionTrace::drop_rows() {
  rows_ = Rows{};
  labels_.clear(arena_);
  arena_.reset();
  head_ = 0;
  size_ = 0;
}

void DecisionTrace::append_record(DecisionPoint point, Outcome outcome,
                                  Uid subject, Gid subject_gid,
                                  Uid object_owner,
                                  std::optional<ChannelKind> channel,
                                  const char* knob, bool from_cache,
                                  std::string_view label) {
  std::size_t slot;
  if (size_ < capacity_) {
    slot = size_++;
    rows_.seq.push_back(0);
    rows_.time.push_back(common::SimTime{});
    rows_.point.push_back(point);
    rows_.outcome.push_back(outcome);
    rows_.subject.push_back(Uid{});
    rows_.subject_gid.push_back(Gid{});
    rows_.object_owner.push_back(Uid{});
    rows_.channel.push_back(-1);
    rows_.knob.push_back(nullptr);
    rows_.from_cache.push_back(0);
    rows_.label_off.push_back(0);
    rows_.label_len.push_back(0);
  } else {
    // Overwrite the oldest slot; its label bytes are the oldest live
    // bytes in the ring, so releasing them is a tail advance.
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    ++overwritten_;
    labels_.release_oldest(rows_.label_len[slot]);
  }
  rows_.seq[slot] = seq_++;
  rows_.time[slot] = clock_ ? clock_->now() : common::SimTime{};
  rows_.point[slot] = point;
  rows_.outcome[slot] = outcome;
  rows_.subject[slot] = subject;
  rows_.subject_gid[slot] = subject_gid;
  rows_.object_owner[slot] = object_owner;
  rows_.channel[slot] =
      channel ? static_cast<std::int16_t>(*channel) : std::int16_t{-1};
  rows_.knob[slot] = knob;
  rows_.from_cache[slot] = from_cache ? 1 : 0;
  rows_.label_off[slot] = labels_.append(arena_, label);
  rows_.label_len[slot] = static_cast<std::uint32_t>(label.size());
}

Decision DecisionTrace::materialise(std::size_t pos) const {
  Decision d;
  d.seq = rows_.seq[pos];
  d.time = rows_.time[pos];
  d.point = rows_.point[pos];
  d.outcome = rows_.outcome[pos];
  d.subject = rows_.subject[pos];
  d.subject_gid = rows_.subject_gid[pos];
  d.object_owner = rows_.object_owner[pos];
  if (rows_.channel[pos] >= 0) {
    d.channel = static_cast<ChannelKind>(rows_.channel[pos]);
  }
  d.knob = rows_.knob[pos];
  d.from_cache = rows_.from_cache[pos] != 0;
  labels_.read(rows_.label_off[pos], rows_.label_len[pos], d.object);
  return d;
}

std::vector<Decision> DecisionTrace::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Decision> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(materialise((head_ + i) % size_));
  }
  return out;
}

}  // namespace heus::obs
