// The decision spine: one typed, attributable record per enforcement
// verdict, cluster-wide.
//
// Every enforcement point in the simulation — hidepid filtering, pam_slurm
// gating, PrivateData query filtering, smask/ACL/home-ownership checks,
// UBF admission, portal forwarding, GPU /dev gating and epilog scrub,
// container entry — answers allow/deny somewhere inline. Before this
// module each subsystem kept its own ad-hoc stats, so there was no
// cluster-wide answer to "who was denied what, and which policy knob was
// responsible". A Decision captures exactly that: subject credentials,
// object, verdict, the channel from the shared taxonomy, and the
// responsible `analyze` knob name — the same attribution vocabulary the
// static analyzer emits, so runtime traces and static verdicts can be
// differentially cross-checked (tests/obs/decision_oracle_test.cpp).
//
// Cost model: the trace is owned by Cluster and is DISABLED by default.
// Disabled, record() bumps two integers and returns — the object-label
// callback is never invoked, so no allocation happens per decision
// (bench_decision_trace, E21, pins this at exactly zero). Enabled, the
// ring is stored struct-of-arrays (one dense array per field) with the
// object labels interned into an arena-backed FIFO byte ring, so a
// steady-state record() through the append-form callback allocates
// nothing either (bench_layout, E26); old records are overwritten, never
// reallocated past the configured capacity.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/clock.h"
#include "common/ids.h"
#include "obs/taxonomy.h"

namespace heus::obs {

/// Where in the stack a verdict was rendered. One value per enforcement
/// site class, not per call site: the (point, channel, knob) triple is
/// what gives a record its meaning.
enum class DecisionPoint {
  procfs_visibility,  ///< hidepid entry/content filtering (simos)
  pam_ssh,            ///< pam_slurm node-access gate (simos)
  sched_query,        ///< PrivateData filtering of queue/sacct/usage
  sched_placement,    ///< whole-node / exclusive-user placement refusal
  fs_access,          ///< DAC/ACL verdict on read/readdir/access
  fs_chmod,           ///< chmod, including the smask clamp
  fs_acl,             ///< setfacl restriction (restrict_acl, ownership)
  ubf_admission,      ///< user-based-firewall connection admission
  net_uninspected,    ///< flow established with no UBF inspection
  rdma_setup,         ///< QP bring-up (TCP-assisted or native CM)
  portal_forward,     ///< portal request forwarding
  gpu_dev_access,     ///< /dev/nvidiaN open under cgroup dev binding
  gpu_scrub,          ///< epilog residue scrub verification
  container_entry,    ///< container runtime exec gate
  lifecycle_transition,  ///< table-driven lifecycle state change (src/lifecycle)
  fed_admission,      ///< federated cross-cluster operation gate (src/fed)
};

inline constexpr std::array<DecisionPoint, 16> kAllDecisionPoints = {
    DecisionPoint::procfs_visibility, DecisionPoint::pam_ssh,
    DecisionPoint::sched_query,       DecisionPoint::sched_placement,
    DecisionPoint::fs_access,         DecisionPoint::fs_chmod,
    DecisionPoint::fs_acl,            DecisionPoint::ubf_admission,
    DecisionPoint::net_uninspected,   DecisionPoint::rdma_setup,
    DecisionPoint::portal_forward,    DecisionPoint::gpu_dev_access,
    DecisionPoint::gpu_scrub,         DecisionPoint::container_entry,
    DecisionPoint::lifecycle_transition, DecisionPoint::fed_admission,
};

[[nodiscard]] const char* to_string(DecisionPoint point);

enum class Outcome { allow, deny };

[[nodiscard]] const char* to_string(Outcome outcome);

/// Append the decimal digits of `v` to `out` without materialising a
/// temporary std::string (std::to_string allocates). For append-form
/// record() callbacks: the scratch buffer reaches steady-state capacity
/// and label building stops allocating entirely.
inline void append_uint(std::string& out, std::uint64_t v) {
  char buf[20];
  std::size_t n = 0;
  do {
    buf[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) out.push_back(buf[--n]);
}

/// Dense index of a point into kAllDecisionPoints-sized arrays.
[[nodiscard]] inline constexpr std::size_t point_index(DecisionPoint point) {
  return static_cast<std::size_t>(point);
}

/// One enforcement verdict. `knob` is the canonical name (obs::knob::*)
/// of the single policy knob responsible for this outcome, or nullptr
/// when no single knob is (structural denials, documented residuals).
struct Decision {
  std::uint64_t seq = 0;        ///< monotone, survives ring overwrite
  common::SimTime time;         ///< sim-clock stamp at the verdict
  DecisionPoint point = DecisionPoint::procfs_visibility;
  Outcome outcome = Outcome::deny;
  Uid subject;                  ///< who asked
  Gid subject_gid;              ///< their egid at the time
  Uid object_owner;             ///< whose data/resource was at stake
  std::optional<ChannelKind> channel;  ///< taxonomy channel, if any
  const char* knob = nullptr;   ///< responsible knob (obs::knob::*)
  bool from_cache = false;      ///< verdict replayed from a decision cache
  std::string object;           ///< human label: path, port, job id, …
};

/// Per-point allow/deny tallies. Maintained even when the trace is
/// disabled, so coarse accounting is always exact.
struct PointCounters {
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;
};

class DecisionTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  using CountersArray =
      std::array<PointCounters, kAllDecisionPoints.size()>;

  /// The clock the records are stamped with. Must outlive the trace.
  void set_clock(const common::SimClock* clock) { clock_ = clock; }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Resize the ring. Drops buffered records (counters are kept).
  void set_capacity(std::size_t capacity);

  /// Drop buffered records and reset counters and sequence numbers.
  void clear();

  /// Record one verdict. `make_object` is only invoked (and the record
  /// only materialised) when the trace is enabled; disabled-mode cost is
  /// two counter increments.
  ///
  /// Two callback forms are accepted:
  ///  - value form: `[&] { return std::string{...}; }` — one temporary
  ///    string per enabled record (the pre-SoA cost, kept for
  ///    compatibility and cold call sites);
  ///  - append form: `[&](std::string& out) { out += ...; }` — writes
  ///    into the trace's reusable scratch buffer, so the enabled
  ///    steady-state path performs zero heap allocations. Hot call sites
  ///    (UBF admission, placement, query filtering) use this form.
  /// Either way the label bytes are interned into the trace's arena-backed
  /// byte ring, never stored as a per-record std::string.
  template <typename MakeObject>
  void record(DecisionPoint point, Outcome outcome, Uid subject,
              Gid subject_gid, Uid object_owner,
              std::optional<ChannelKind> channel, const char* knob,
              MakeObject&& make_object, bool from_cache = false) {
    // Thread-safe: the sharded engine records from worker threads. The
    // lock_guard itself never allocates, so the disabled-mode cost stays
    // two counter increments and zero allocations (E21's pinned gate).
    std::lock_guard<std::mutex> lock(mu_);
    PointCounters& c = counters_[point_index(point)];
    if (outcome == Outcome::allow) {
      ++c.allowed;
    } else {
      ++c.denied;
    }
    if (!enabled_) {
      ++seq_;
      return;
    }
    if constexpr (std::is_invocable_v<MakeObject&, std::string&>) {
      scratch_.clear();
      std::forward<MakeObject>(make_object)(scratch_);
    } else {
      scratch_ = std::forward<MakeObject>(make_object)();
    }
    append_record(point, outcome, subject, subject_gid, object_owner,
                  channel, knob, from_cache, scratch_);
  }

  /// Buffered records, oldest first (seq order).
  [[nodiscard]] std::vector<Decision> snapshot() const;

  [[nodiscard]] const PointCounters& counters(DecisionPoint point) const {
    return counters_[point_index(point)];
  }
  /// Total verdicts observed (allow + deny, all points), including ones
  /// rendered while disabled or already overwritten in the ring.
  [[nodiscard]] std::uint64_t total() const { return seq_; }
  /// Records currently buffered.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records pushed out of the ring by newer ones.
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

 private:
  /// FIFO byte ring for the interned object labels, storage owned by the
  /// trace's arena. Ring slots are overwritten oldest-first, and labels
  /// are appended in record order, so a slot's bytes are always the
  /// oldest live bytes when the slot is reclaimed — freeing is a tail
  /// advance, appending a head advance, and steady state allocates
  /// nothing. Labels may wrap; read() reassembles the two segments.
  class LabelRing {
   public:
    std::uint32_t append(common::Arena& arena, std::string_view s);
    void release_oldest(std::uint32_t len) { used_ -= len; }
    void read(std::uint32_t offset, std::uint32_t len,
              std::string& out) const;
    void clear(common::Arena& arena);

   private:
    char* buf_ = nullptr;
    std::size_t cap_ = 0;       // power of two (or 0)
    std::size_t cap_bytes_ = 0; // arena block byte capacity
    std::size_t head_ = 0;      // next write offset
    std::size_t used_ = 0;      // live bytes
  };

  /// Caller holds mu_. Interns `label` and writes one SoA row.
  void append_record(DecisionPoint point, Outcome outcome, Uid subject,
                     Gid subject_gid, Uid object_owner,
                     std::optional<ChannelKind> channel, const char* knob,
                     bool from_cache, std::string_view label);
  /// Caller holds mu_.
  void drop_rows();
  /// Caller holds mu_. Materialises the row at ring position `pos`.
  [[nodiscard]] Decision materialise(std::size_t pos) const;

  /// Guards the ring, counters and sequence number. Accessors that return
  /// references (counters()) are safe to use once worker threads have been
  /// joined or a barrier has been crossed — the engine only reads between
  /// ticks.
  mutable std::mutex mu_;
  const common::SimClock* clock_ = nullptr;
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;

  /// SoA ring storage: one dense array per Decision field (plus the
  /// interned label's offset/length), each at most capacity_ long. A
  /// sweep that inspects one field (the digest fold, the census) touches
  /// only that field's array instead of 96-byte Decision records.
  struct Rows {
    std::vector<std::uint64_t> seq;
    std::vector<common::SimTime> time;
    std::vector<DecisionPoint> point;
    std::vector<Outcome> outcome;
    std::vector<Uid> subject;
    std::vector<Gid> subject_gid;
    std::vector<Uid> object_owner;
    std::vector<std::int16_t> channel;  ///< -1 = none, else ChannelKind
    std::vector<const char*> knob;
    std::vector<std::uint8_t> from_cache;
    std::vector<std::uint32_t> label_off;
    std::vector<std::uint32_t> label_len;
  };
  Rows rows_;
  common::Arena arena_;    ///< owns the label ring's storage
  LabelRing labels_;
  std::string scratch_;    ///< reusable label build buffer
  std::size_t head_ = 0;  ///< next slot to write once the ring is full
  std::size_t size_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t overwritten_ = 0;
  CountersArray counters_{};
};

}  // namespace heus::obs
